"""Every number the paper's evaluation section reports, as data.

The benchmark harness prints these next to our measured/modeled values and
EXPERIMENTS.md records the comparison, so the paper-vs-reproduction gap is
explicit and machine-checkable.
"""

from __future__ import annotations

#: Table 3 — seconds to select interpolation points on Si_64, one core of a
#: Xeon E5-2695: {n_mu: (qrcp_seconds, kmeans_seconds)}.
PAPER_TABLE3: dict[int, tuple[float, float]] = {
    512: (10.12, 1.61),
    1024: (42.16, 2.85),
    2048: (147.27, 5.57),
}

#: Table 5 — H2O (Ecut = 100 Ha, Nv = 20, Nc = 4): three lowest excitation
#: energies in Hartree for (QE, naive LR-TDDFT, ISDF-LOBPCG) and the two
#: relative errors in percent.
PAPER_TABLE5_H2O: tuple[tuple[float, float, float, float, float], ...] = (
    (0.398312, 0.397830, 0.397829, 0.121, 0.121),
    (0.550416, 0.546664, 0.546664, 0.682, 0.682),
    (0.729568, 0.732786, 0.732785, -0.441, -0.441),
)

#: Table 5 — Si_64 (Ecut = 50 Ha, Nv = 128, Nc = 50), same columns.
PAPER_TABLE5_SI64: tuple[tuple[float, float, float, float, float], ...] = (
    (0.044350, 0.043942, 0.0439429, 0.920, 0.918),
    (0.044350, 0.043942, 0.0439429, 0.920, 0.918),
    (0.044350, 0.043942, 0.0439429, 0.920, 0.918),
)

#: Table 6 — wall-clock seconds (naive, ISDF-LOBPCG) and speedup per system.
PAPER_SPEEDUP_TABLE6: dict[str, tuple[float, float, float]] = {
    "Si64": (3.19, 0.24, 13.06),
    "Si216": (6.95, 0.70, 9.89),
    "Si512": (14.74, 1.89, 7.79),
    "Si1000": (32.15, 5.13, 6.26),
}

#: Section 6.4 — weak scaling at 1,024 cores (one core per MPI process):
#: {system: seconds} for the optimized code.
PAPER_WEAK_SCALING: dict[str, float] = {
    "Si512": 3.58,
    "Si1000": 10.23,
    "Si1728": 26.95,
    "Si2744": 35.58,
    "Si4096": 41.89,
}

#: Section 6.3 — Si_4096 with 16 OpenMP threads per MPI process:
#: {cores: seconds}; 8,192 -> 12,288 cores shows 87.34% parallel efficiency.
PAPER_SI4096_STRONG: dict[int, float] = {
    8192: 14.02,
    12288: 10.70,
}

#: Section 6.5 — average speedups the paper quotes.
PAPER_AVG_SPEEDUP_LOW_RESOURCE: float = 9.254
PAPER_AVG_SPEEDUP_LARGE_RESOURCE: float = 12.58

#: Section 6.3 — the naive version keeps >= 50% parallel efficiency up to
#: 2,048 cores (baseline 128 cores) on Si_1000.
PAPER_NAIVE_EFFICIENCY_FLOOR: float = 0.50
PAPER_STRONG_SCALING_CORES: tuple[int, ...] = (128, 256, 512, 1024, 2048)

#: Section 6.3 — GEMM+Allreduce share of H-construction time in the
#: implicit method ("only cost 12.87% of the total time").
PAPER_GEMM_ALLREDUCE_SHARE: float = 0.1287
