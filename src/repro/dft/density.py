"""Electron densities: from orbitals, and the atomic-superposition SCF guess."""

from __future__ import annotations

import numpy as np

from repro.atoms.elements import get_element, valence_electron_count
from repro.pw.basis import PlaneWaveBasis
from repro.utils.validation import require


def density_from_orbitals(
    orbitals_real: np.ndarray, occupations: np.ndarray, dv: float | None = None
) -> np.ndarray:
    """``n(r) = sum_i f_i |psi_i(r)|^2`` from real-space orbitals.

    Parameters
    ----------
    orbitals_real:
        ``(n_bands, N_r)`` complex or real orbitals normalized to
        ``int |psi|^2 dr = 1``.
    occupations:
        ``(n_bands,)`` occupation numbers ``f_i`` (2 for filled bands).
    dv:
        If given, the result is validated to integrate to ``sum(f_i)``
        within 1e-6 relative (cheap insurance against normalization bugs).
    """
    occupations = np.asarray(occupations, dtype=float)
    require(
        orbitals_real.shape[0] == occupations.shape[0],
        f"{orbitals_real.shape[0]} orbitals but {occupations.shape[0]} occupations",
    )
    n = np.einsum("b,br->r", occupations, np.abs(orbitals_real) ** 2).real
    if dv is not None:
        total = n.sum() * dv
        expected = occupations.sum()
        if expected > 0:
            require(
                abs(total - expected) <= 1e-6 * max(expected, 1.0),
                f"density integrates to {total:.8f}, expected {expected:.8f} "
                "(orbital normalization broken?)",
            )
    return n


def atomic_guess_density(basis: PlaneWaveBasis) -> np.ndarray:
    """Superposition of atomic valence Gaussians, normalized to N_electrons.

    Each atom contributes ``Z_val`` electrons as a Gaussian of width set by
    its covalent radius; assembled in G-space with structure factors so the
    cost is one FFT regardless of atom count.
    """
    cell = basis.cell
    require(cell.n_atoms > 0, "cannot build a density guess for an empty cell")
    g2 = basis.gvectors.g2
    n_g = np.zeros(basis.n_r, dtype=complex)
    for index, symbol in enumerate(cell.species):
        element = get_element(symbol)
        width = 0.6 * element.covalent_radius
        phase = basis.gvectors.structure_factor(cell.fractional_positions[index])
        n_g += (
            (element.valence / cell.volume)
            * np.exp(-0.25 * g2 * width * width)
            * phase
        )
    n_r = basis.fft.backward_real(n_g)
    # Gaussian tails can overlap into slightly negative interference regions
    # on coarse grids; clip and renormalize to the exact electron count.
    n_r = np.maximum(n_r, 0.0)
    n_electrons = valence_electron_count(cell.species)
    total = n_r.sum() * basis.grid.dv
    require(total > 0.0, "density guess vanished (grid too coarse?)")
    return n_r * (n_electrons / total)
