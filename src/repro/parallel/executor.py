"""The SPMD executor: run one function on N virtual ranks.

Two interchangeable backends (``backend=`` or ``REPRO_SPMD_BACKEND``):

* ``"thread"`` (default) — thread-per-rank in this process; numpy releases
  the GIL inside BLAS/FFT, so virtual ranks even overlap for real.
* ``"process"`` — one forked OS process per rank with shared-memory
  collectives (:mod:`repro.parallel.process_backend`): pure-Python rank
  code runs genuinely in parallel and bulk arrays move zero-copy.

Both produce bit-identical results for the same rank program (same
deterministic rank-ordered combine trees) and the same logical traffic
totals.  A rank that raises aborts the shared barrier; every surviving
rank unwinds with :class:`~repro.parallel.comm.SpmdAbort` and the
*original* exception is re-raised to the caller.

Fault tolerance: :func:`spmd_run` accepts a
:class:`~repro.resilience.faults.FaultInjector` that can kill a rank,
drop/delay a message, or corrupt a reduce buffer at a configured step, and
:func:`spmd_run_resilient` wraps the whole run in retry-with-backoff — the
restart-after-node-loss model of the paper's production context (one-shot
fault specs are consumed by the failing attempt, so the retried run
completes cleanly).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

from repro.parallel.comm import CommTraffic, Communicator, SpmdAbort, _SharedState
from repro.parallel.sanitizer import SpmdSanitizer, env_enabled
from repro.utils.validation import require

_ENV_BACKEND = "REPRO_SPMD_BACKEND"
SPMD_BACKENDS = ("thread", "process")


def resolve_backend(backend: str | None) -> str:
    """``backend`` argument > ``REPRO_SPMD_BACKEND`` > ``"thread"``."""
    if backend is None:
        backend = os.environ.get(_ENV_BACKEND, "").strip() or "thread"
    if backend not in SPMD_BACKENDS:
        raise ValueError(
            f"unknown SPMD backend {backend!r}; choose from {SPMD_BACKENDS}"
        )
    return backend


def spmd_run(
    n_ranks: int,
    fn: Callable[..., object],
    *args,
    return_traffic: bool = False,
    fault_injector=None,
    sanitize: bool | None = None,
    sanitize_timeout: float | None = None,
    backend: str | None = None,
):
    """Execute ``fn(comm, *args)`` on ``n_ranks`` virtual ranks.

    Parameters
    ----------
    fn:
        The rank program; receives its :class:`Communicator` first.
    return_traffic:
        Also return the :class:`CommTraffic` accumulated by the run.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` consulted
        by every collective, reduce contribution, and p2p send.
    sanitize:
        Run under the SPMD sanitizer — the in-process
        :class:`~repro.parallel.sanitizer.SpmdSanitizer` on the thread
        backend, the shared-memory-board
        :class:`~repro.parallel.process_sanitizer.ProcessSpmdSanitizer`
        on the process backend.  Mismatched collectives, unsynchronized
        shared-array/slab writes and deadlocks become diagnosed
        :class:`~repro.parallel.sanitizer.SanitizerError` instead of
        silent corruption or hangs.  ``None`` (default) consults the
        ``REPRO_SANITIZE`` environment variable.
    sanitize_timeout:
        Seconds after which a collective that never completes is declared
        a deadlock (default: ``REPRO_SANITIZE_TIMEOUT`` or 10).
    backend:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring; ``None`` consults ``REPRO_SPMD_BACKEND``.

    Returns
    -------
    ``results`` — list of per-rank return values (rank order) — or
    ``(results, traffic)`` when ``return_traffic`` is set.
    """
    require(n_ranks >= 1, f"need at least one rank, got {n_ranks}")
    backend = resolve_backend(backend)
    if sanitize is None:
        sanitize = env_enabled()
    if backend == "process":
        from repro.parallel.process_backend import process_spmd_run

        return process_spmd_run(
            n_ranks,
            fn,
            *args,
            return_traffic=return_traffic,
            fault_injector=fault_injector,
            sanitize=sanitize,
            sanitize_timeout=sanitize_timeout,
        )
    sanitizer = (
        SpmdSanitizer(n_ranks, barrier_timeout=sanitize_timeout)
        if sanitize
        else None
    )
    shared = _SharedState(n_ranks, fault_injector=fault_injector, sanitizer=sanitizer)
    results: list = [None] * n_ranks

    def worker(rank: int) -> None:
        comm = Communicator(rank, shared)
        try:
            results[rank] = fn(comm, *args)
            if sanitizer is not None:
                sanitizer.rank_done(rank)
        except SpmdAbort:
            pass  # secondary failure; the original error is in shared.error
        except BaseException as exc:  # repro-lint: disable=no-blind-except -- the worker must capture every failure to abort peers; spmd_run re-raises shared.error
            shared.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if shared.error is not None:
        raise shared.error
    if return_traffic:
        return results, shared.traffic
    return results


def spmd_run_resilient(
    n_ranks: int,
    fn: Callable[..., object],
    *args,
    policy=None,
    fault_injector=None,
    return_traffic: bool = False,
    sleep: Callable[[float], None] = time.sleep,
    backend: str | None = None,
):
    """:func:`spmd_run` with whole-run retry on transient rank faults.

    When any rank dies with an exception matching ``policy.retry_on`` the
    entire SPMD program is re-launched after the policy's backoff, up to
    ``policy.max_retries`` times.  Rank programs must therefore be
    restartable from their arguments — which is exactly what the
    checkpoint/restart machinery provides for the long loops.
    """
    from repro.resilience.policies import RetryPolicy

    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        try:
            return spmd_run(
                n_ranks,
                fn,
                *args,
                return_traffic=return_traffic,
                fault_injector=fault_injector,
                backend=backend,
            )
        except policy.retry_on:
            if attempt >= policy.max_retries:
                raise
            sleep(policy.delay(attempt))
            attempt += 1


def spmd_traffic(n_ranks: int, fn: Callable[..., object], *args) -> CommTraffic:
    """Convenience: run and return only the traffic trace."""
    _, traffic = spmd_run(n_ranks, fn, *args, return_traffic=True)
    return traffic
