"""Measured warm vs cold trajectory benchmark (the batch engine).

Runs the same perturbed silicon trajectory twice through
``repro.batch.run_batch`` — cold (every frame standalone) and warm
(cross-frame reuse: extrapolated densities + orbital seeds for SCF,
K-Means centroid warm starts, ISDF interpolation-point carry-over under a
drift threshold, Casida eigenvector seeds) — and writes a machine-readable
report (default ``BENCH_batch.json`` at the repo root) with per-frame wall
times, SCF/K-Means/LOBPCG iteration counts, ISDF reselection events, the
end-to-end speedup, and warm-vs-cold equivalence checks.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py [--smoke] [--frames N] [--repeats R] [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    from repro.perf.batch_bench import (
        format_summary,
        run_batch_bench,
        write_report,
    )

    default_out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--frames", type=int, default=None,
                        help="trajectory length (default: 4 smoke / 10 full)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="cold+warm pairs to run; minimum is reported "
                             "(default: 1 smoke / 3 full)")
    parser.add_argument("--amplitude", type=float, default=0.012,
                        help="displacement scale in Bohr")
    parser.add_argument("--out", default=str(default_out),
                        help=f"JSON report path (default: {default_out})")
    args = parser.parse_args(argv)

    report = run_batch_bench(
        smoke=args.smoke,
        n_frames=args.frames,
        repeats=args.repeats,
        amplitude=args.amplitude,
    )
    print(format_summary(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
