"""Paper Table 1: the excited-state software survey.

A static literature table; the bench renders it (with the paper's own row
as "This work") and asserts the facts the narrative relies on — this work
reaches the largest LR-TDDFT system and the only plane-wave implicit one.
"""

from repro.data import SOFTWARE_SURVEY
from repro.data.software_survey import format_survey_table


def test_table1_survey(benchmark, save_table):
    text = benchmark(format_survey_table)
    assert text
    save_table("table1_survey", text)

    this_work = SOFTWARE_SURVEY[-1]
    assert this_work.reference == "This work"
    lrtddft_rows = [r for r in SOFTWARE_SURVEY if r.theory == "LR-TDDFT"]
    assert this_work.n_atoms == max(r.n_atoms for r in lrtddft_rows)
    pw_implicit = [
        r for r in SOFTWARE_SURVEY
        if r.basis_set == "PW" and r.method == "Implicit" and r.theory == "LR-TDDFT"
    ]
    assert pw_implicit == [this_work]
