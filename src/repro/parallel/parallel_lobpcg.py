"""Distributed LOBPCG: the eigensolver itself over distributed vectors.

The paper's optimized path iteratively diagonalizes the implicit LR-TDDFT
Hamiltonian in parallel: the Ritz block ``X`` is distributed over the pair
index, every inner product becomes a local GEMM + ``MPI_Allreduce`` of a
small Gram matrix, and the ``3k x 3k`` projected eigenproblem is solved
redundantly on every rank (standard practice — it is tiny).

Determinism: all ranks reduce identical Gram matrices in rank order, so
every rank applies the same rotation and the distributed iterate equals
the serial one to floating-point summation order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.isdf import ISDFDecomposition
from repro.core.pair_products import pair_energies
from repro.eigen.results import EigenResult
from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockDistribution1D
from repro.utils.linalg import stable_generalized_eigh, symmetrize
from repro.utils.validation import require

ApplyLocalFn = Callable[[np.ndarray], np.ndarray]


def _dot(comm: Communicator, a_local: np.ndarray, b_local: np.ndarray) -> np.ndarray:
    """Global ``A^H B`` from row-distributed blocks (one Allreduce)."""
    return comm.allreduce(a_local.conj().T @ b_local)


def _orthonormalize_distributed(
    comm: Communicator, x_local: np.ndarray
) -> np.ndarray:
    """Cholesky-QR on distributed columns, eigh fallback on rank deficiency."""
    gram = symmetrize(_dot(comm, x_local, x_local))
    try:
        chol = np.linalg.cholesky(gram)  # lower triangular, gram = L L^H
        return np.linalg.solve(chol.conj(), x_local.T).T  # x @ L^{-H}
    except np.linalg.LinAlgError:
        evals, evecs = np.linalg.eigh(gram)
        floor = max(evals[-1], 1.0) * np.finfo(float).eps * gram.shape[0]
        evals = np.maximum(evals, floor)
        return x_local @ (evecs / np.sqrt(evals))


def distributed_lobpcg(
    comm: Communicator,
    apply_h_local: ApplyLocalFn,
    x0_local: np.ndarray,
    *,
    preconditioner_local: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    checkpoint=None,
) -> EigenResult:
    """LOBPCG over row-distributed vectors.

    Parameters
    ----------
    apply_h_local:
        ``(my_rows, m) -> (my_rows, m)`` block application of the global
        Hermitian operator restricted to this rank's rows (the callable
        owns whatever communication its operator needs).
    x0_local:
        ``(my_rows, k)`` local slab of the start block.
    preconditioner_local:
        Optional ``(R_local, theta) -> W_local`` — must be row-local
        (diagonal preconditioners are).
    checkpoint:
        Optional per-rank :class:`~repro.resilience.checkpoint.LoopCheckpointer`
        (each rank snapshots its *local* rows, so callers must hand every
        rank a distinct tag, e.g. ``lobpcg-r{rank}``).  On restart the
        ranks agree (one Allreduce) on the newest step *every* rank holds
        and resume from that common snapshot bit-identically — a crash mid
        iteration can leave one rank's snapshot set a step behind its
        peers', and resuming from per-rank ``latest()`` would deadlock.

    Returns
    -------
    :class:`~repro.eigen.results.EigenResult` whose ``eigenvectors`` are
    this rank's local rows; eigenvalues are replicated.
    """
    x = np.array(x0_local, copy=True, dtype=complex if np.iscomplexobj(x0_local) else float)
    k = x.shape[1]
    require(k >= 1, "x0 must contain at least one column")

    x = _orthonormalize_distributed(comm, x)
    p = None
    hp = None
    history: list[float] = []
    best_residual = np.inf
    start_iteration = 0

    resumed = checkpoint.resume() if checkpoint is not None else None
    if checkpoint is not None and checkpoint.restart:
        # Consistent recovery line.  A crash can tear the per-rank snapshot
        # sets: the abort that unwinds the surviving ranks may reach a rank
        # after its last collective completed but *before* it wrote the
        # step its peers already have durably.  Resuming each rank from its
        # own latest() would then restart the loop at different iterations
        # on different ranks, the collective sequences diverge, and the run
        # deadlocks.  All ranks therefore agree on the newest step every
        # rank holds and roll back to it (possible because the manager
        # keeps earlier snapshots unless keep_last prunes them).
        local_step = resumed[0] if resumed is not None else -1
        common_step = int(comm.allreduce(local_step, op="min"))
        if common_step < 0:
            resumed = None  # some rank has no snapshot: everyone starts fresh
        elif resumed is None or resumed[0] != common_step:
            resumed = (common_step, checkpoint.manager.load(common_step))
    if resumed is not None:
        start_iteration, state = resumed
        x = np.array(state["x"])
        hx = np.array(state["hx"])
        p = np.array(state["p"]) if state.get("p") is not None else None
        hp = np.array(state["hp"]) if state.get("hp") is not None else None
        best_residual = float(state["best_residual"])
        history = [float(v) for v in state["history"]]
    else:
        hx = apply_h_local(x)

    theta = np.zeros(k)
    residual_norms = np.full(k, np.inf)
    iteration = start_iteration
    for iteration in range(start_iteration + 1, max_iter + 1):
        h_xx = symmetrize(_dot(comm, x, hx))
        theta, rot = np.linalg.eigh(h_xx)
        x = x @ rot
        hx = hx @ rot

        residual = hx - x * theta
        residual_norms = np.sqrt(
            np.abs(np.diag(_dot(comm, residual, residual)).real)
        )
        max_residual = float(residual_norms.max())
        history.append(max_residual)
        active = residual_norms > tol * np.maximum(1.0, np.abs(theta))
        if not active.any():
            return EigenResult(theta, x, iteration, residual_norms, True, tuple(history))

        if max_residual > 1e3 * best_residual and p is not None:
            p = None
            hp = None
            hx = apply_h_local(x)
            continue
        best_residual = min(best_residual, max_residual)

        w = residual[:, active]
        if preconditioner_local is not None:
            w = preconditioner_local(w, theta[active])
        # Orthogonalize W against X (distributed projections) + CholQR.
        w = w - x @ _dot(comm, x, w)
        w = w - x @ _dot(comm, x, w)
        w = _orthonormalize_distributed(comm, w)

        blocks = [x, w]
        h_blocks = [hx, apply_h_local(w)]
        if p is not None and p.shape[1] > 0:
            col_norms = np.sqrt(np.abs(np.diag(_dot(comm, p, p)).real))
            keep = col_norms > 1e-12
            if keep.any():
                scale = 1.0 / col_norms[keep]
                blocks.append(p[:, keep] * scale)
                h_blocks.append(hp[:, keep] * scale)

        subspace = np.hstack(blocks)
        h_subspace = np.hstack(h_blocks)
        h_proj = symmetrize(_dot(comm, subspace, h_subspace))
        s_proj = symmetrize(_dot(comm, subspace, subspace))
        evals, coeffs = stable_generalized_eigh(h_proj, s_proj)
        coeffs = coeffs[:, :k]

        c_x = coeffs[:k, :]
        c_rest = coeffs[k:, :]
        rest = subspace[:, k:]
        h_rest = h_subspace[:, k:]
        p = rest @ c_rest
        hp = h_rest @ c_rest
        x = blocks[0] @ c_x + p
        hx = h_blocks[0] @ c_x + hp

        if checkpoint is not None:
            checkpoint.save(
                iteration,
                {
                    "x": x,
                    "hx": hx,
                    "p": p,
                    "hp": hp,
                    "best_residual": np.float64(best_residual),
                    "history": np.asarray(history),
                },
            )

    h_xx = symmetrize(_dot(comm, x, hx))
    theta, rot = np.linalg.eigh(h_xx)
    x = x @ rot
    hx = hx @ rot
    residual = hx - x * theta
    residual_norms = np.sqrt(np.abs(np.diag(_dot(comm, residual, residual)).real))
    converged = bool((residual_norms <= tol * np.maximum(1.0, np.abs(theta))).all())
    return EigenResult(theta, x, iteration, residual_norms, converged, tuple(history))


def make_distributed_implicit_apply(
    comm: Communicator,
    isdf: ISDFDecomposition,
    eps_v: np.ndarray,
    eps_c: np.ndarray,
    vtilde: np.ndarray,
    pair_dist: BlockDistribution1D,
) -> tuple[ApplyLocalFn, Callable, np.ndarray]:
    """Row-distributed application of the implicit TDA Hamiltonian.

    ``H X = D ∘ X + 2 C^T (Vtilde (C X))`` with ``X`` distributed over
    pairs: each rank contracts its pair rows against its columns of ``C``
    (one local GEMM), the ``(N_mu, k)`` partial is Allreduced, and the
    back-projection is again local.  Returns
    ``(apply_local, preconditioner_local, d_local)``.
    """
    d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
    sl = pair_dist.local_slice(comm.rank)
    d_local = d[sl]
    c = isdf.coefficients()  # (N_mu, N_cv); each rank keeps only its columns
    c_local = np.ascontiguousarray(c[:, sl])

    def apply_local(x_local: np.ndarray) -> np.ndarray:
        cx = comm.allreduce(c_local @ x_local)  # (N_mu, k)
        return d_local[:, None] * x_local + 2.0 * (c_local.T @ (vtilde @ cx))

    def preconditioner_local(r_local: np.ndarray, theta: np.ndarray) -> np.ndarray:
        denom = np.maximum(np.abs(d_local[:, None] - theta[None, :]), 1e-2)
        return r_local / denom

    return apply_local, preconditioner_local, d_local
