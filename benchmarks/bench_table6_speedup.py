"""Paper Table 6: naive vs ISDF-LOBPCG wall-clock and speedup by size.

Two layers:

1. **Measured** — real serial runs of the naive and the implicit solvers on
   a ladder of synthetic silicon-like systems of growing size (sizes in
   EXPERIMENTS.md), asserting the paper's shape: the optimized version wins
   at every size.
2. **Modeled** — the calibrated cost model evaluated at the paper's exact
   systems/core count, printed against Table 6's reported numbers.
"""

import time

import numpy as np
import pytest

from repro.atoms import bulk_silicon, silicon_primitive_cell
from repro.core import LRTDDFTSolver
from repro.data import PAPER_SPEEDUP_TABLE6
from repro.data.calibration import CALIBRATED_SPEC, TABLE6_CORES, paper_workload
from repro.perf import predict_version_time
from repro.synthetic import synthetic_ground_state

#: Measured ladder: (label, cell builder args, bands, ecut).
LADDER = (
    ("S", 8, 12, 8, 5.0),
    ("M", 8, 20, 12, 6.0),
    ("L", 64, 28, 16, 5.0),
)


def _measured_pair(n_atoms, n_v, n_c, ecut, seed=0):
    gs = synthetic_ground_state(
        bulk_silicon(n_atoms), ecut=ecut, n_valence=n_v, n_conduction=n_c,
        seed=seed,
    )
    solver = LRTDDFTSolver(gs, seed=seed)
    n_mu = max(8, int(0.4 * solver.n_pairs))

    t0 = time.perf_counter()
    solver.solve("naive")
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    solver.solve(
        "implicit-kmeans-isdf-lobpcg", n_excitations=8, n_mu=n_mu, tol=1e-6,
        isdf_kwargs={"prune_threshold": 1e-2, "max_iter": 30},
    )
    t_impl = time.perf_counter() - t0
    return solver.n_pairs, t_naive, t_impl


def test_table6_measured_ladder(benchmark, save_table):
    rows = []
    for label, n_atoms, n_v, n_c, ecut in LADDER:
        n_pairs, t_naive, t_impl = _measured_pair(n_atoms, n_v, n_c, ecut)
        rows.append((label, n_pairs, t_naive, t_impl, t_naive / t_impl))
    benchmark.pedantic(
        lambda: _measured_pair(*LADDER[0][1:]), rounds=1, iterations=1
    )

    lines = [
        "Table 6 (measured, scaled ladder) — naive vs implicit-ISDF-LOBPCG",
        "",
        f"{'size':<5s} {'N_cv':>6s} {'naive (s)':>10s} {'ISDF-LOBPCG (s)':>16s} "
        f"{'speedup':>8s}",
    ]
    for label, n_pairs, t_naive, t_impl, speedup in rows:
        lines.append(
            f"{label:<5s} {n_pairs:6d} {t_naive:10.3f} {t_impl:16.3f} "
            f"{speedup:8.2f}"
        )
    save_table("table6_measured", "\n".join(lines))

    # The optimized path must win at the larger sizes (tiny problems are
    # dominated by fixed python overhead, as the paper's is by MPI setup).
    assert rows[-1][4] > 1.0

    # At the largest size the dense-diag naive cost must clearly dominate.
    assert rows[-1][2] > rows[-1][3]


def test_table6_modeled_paper_systems(benchmark, save_table):
    def run():
        out = []
        for label, (tn_ref, to_ref, sp_ref) in PAPER_SPEEDUP_TABLE6.items():
            w = paper_workload(int(label[2:]))
            tn = predict_version_time("naive", w, TABLE6_CORES, CALIBRATED_SPEC).total
            to = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", w, TABLE6_CORES, CALIBRATED_SPEC
            ).total
            out.append((label, tn, to, tn / to, tn_ref, to_ref, sp_ref))
        return out

    rows = benchmark(run)
    lines = [
        "Table 6 (modeled at the paper's systems, "
        f"{TABLE6_CORES} cores) vs paper",
        "",
        f"{'system':<8s} {'naive':>8s} {'opt':>8s} {'speedup':>8s} | "
        f"{'paper naive':>11s} {'paper opt':>10s} {'paper speedup':>13s}",
    ]
    for label, tn, to, sp, tn_ref, to_ref, sp_ref in rows:
        lines.append(
            f"{label:<8s} {tn:8.2f} {to:8.2f} {sp:8.2f} | "
            f"{tn_ref:11.2f} {to_ref:10.2f} {sp_ref:13.2f}"
        )
    speedups = [r[3] for r in rows]
    average = float(np.mean(speedups))
    lines += [
        "",
        f"average modeled speedup: {average:.2f}x "
        "(paper Section 6.5: 9.254x average, >10x overall)",
    ]
    save_table("table6_modeled", "\n".join(lines))

    # Paper shape: speedup decreases with system size...
    assert speedups == sorted(speedups, reverse=True)
    # ...and every absolute number is within 2x of the paper's.
    for _, tn, to, sp, tn_ref, to_ref, sp_ref in rows:
        assert 0.5 < tn / tn_ref < 2.0
        assert 0.4 < to / to_ref < 2.5
        assert 0.5 < sp / sp_ref < 2.0
