"""Dense diagonalization — the stand-in for ScaLAPACK's SYEVD.

The paper's naive version diagonalizes the explicit LR-TDDFT Hamiltonian
with ``ScaLAPACK::Syevd`` at ``O(N_v^3 N_c^3)`` cost; serially that role is
played by LAPACK's divide-and-conquer driver, which is what
``scipy.linalg.eigh(driver="evd")`` calls.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.utils.linalg import symmetrize
from repro.utils.validation import check_square


def dense_eigh(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full eigendecomposition of a Hermitian matrix (ascending).

    Symmetrizes first so tiny non-Hermitian round-off from the Hamiltonian
    assembly GEMMs cannot leak complex eigenvalues.
    """
    check_square(matrix, "matrix")
    return sla.eigh(symmetrize(matrix), driver="evd")


def dense_lowest(matrix: np.ndarray, nev: int) -> tuple[np.ndarray, np.ndarray]:
    """Lowest ``nev`` eigenpairs via the full dense solve.

    This is deliberately the full ``O(n^3)`` solve: it models the naive
    version's cost profile, where all eigenpairs are computed and the lowest
    few extracted afterwards.
    """
    check_square(matrix, "matrix")
    if not 0 < nev <= matrix.shape[0]:
        raise ValueError(f"nev must be in [1, {matrix.shape[0]}], got {nev}")
    evals, evecs = dense_eigh(matrix)
    return evals[:nev], evecs[:, :nev]
