"""Static data: the paper's survey table, reported numbers, calibration."""

from repro.data.software_survey import SOFTWARE_SURVEY, SurveyRow
from repro.data.paper_reference import (
    PAPER_SI4096_STRONG,
    PAPER_SPEEDUP_TABLE6,
    PAPER_TABLE3,
    PAPER_TABLE5_H2O,
    PAPER_TABLE5_SI64,
    PAPER_WEAK_SCALING,
)

__all__ = [
    "SurveyRow",
    "SOFTWARE_SURVEY",
    "PAPER_TABLE3",
    "PAPER_TABLE5_H2O",
    "PAPER_TABLE5_SI64",
    "PAPER_SPEEDUP_TABLE6",
    "PAPER_WEAK_SCALING",
    "PAPER_SI4096_STRONG",
]
