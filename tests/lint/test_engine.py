"""Engine mechanics: registry, suppression protocol, output formats."""

import json

import pytest

from repro.lint import (
    Finding,
    format_findings,
    get_rules,
    lint_paths,
    lint_source,
)

HOT_ALLOC = (
    "from repro.utils import hot_kernel\n"
    "import numpy as np\n"
    "@hot_kernel\n"
    "def kernel(x):\n"
    "    return np.zeros(3) + x\n"
)

pytestmark = pytest.mark.lint


class TestRegistry:
    def test_all_expected_rules_registered(self):
        names = {r.name for r in get_rules()}
        assert names >= {
            "no-alloc-in-hot",
            "collective-in-branch",
            "nondeterminism-in-replay",
            "mutated-recv-buffer",
            "no-blind-except",
        }

    def test_unknown_rule_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            get_rules(["no-such-rule"])

    def test_rule_selection_restricts_findings(self):
        assert lint_source(HOT_ALLOC, rules=["no-blind-except"]) == []
        assert lint_source(HOT_ALLOC, rules=["no-alloc-in-hot"])


class TestSuppression:
    def test_trailing_comment_suppresses_that_line_only(self):
        src = HOT_ALLOC.replace(
            "    return np.zeros(3) + x\n",
            "    a = np.zeros(3)  # repro-lint: disable=no-alloc-in-hot -- test fixture\n"
            "    return np.empty(3) + a\n",
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["no-alloc-in-hot"]
        assert "np.empty" in findings[0].message

    def test_own_line_comment_suppresses_whole_file(self):
        src = (
            "# repro-lint: disable=no-alloc-in-hot -- fixture-wide waiver\n"
            + HOT_ALLOC
        )
        assert lint_source(src) == []

    def test_disable_all_matches_every_rule(self):
        src = "# repro-lint: disable=all -- fixture\n" + HOT_ALLOC
        assert lint_source(src) == []

    def test_suppression_without_reason_is_itself_a_finding(self):
        src = HOT_ALLOC.replace(
            "    return np.zeros(3) + x\n",
            "    return np.zeros(3) + x  # repro-lint: disable=no-alloc-in-hot\n",
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["suppression-without-reason"]
        assert "reason" in findings[0].message

    def test_suppressing_one_rule_keeps_the_others(self):
        src = (
            "# repro-lint: disable=no-blind-except -- fixture\n" + HOT_ALLOC
        )
        assert [f.rule for f in lint_source(src)] == ["no-alloc-in-hot"]


class TestOutput:
    def test_syntax_error_becomes_a_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == ["syntax-error"]
        assert findings[0].path == "bad.py"

    def test_text_format_lists_locations_and_total(self):
        out = format_findings(lint_source(HOT_ALLOC, path="mod.py"))
        assert "mod.py:5:" in out
        assert "no-alloc-in-hot" in out
        assert "finding(s)" in out

    def test_text_format_clean(self):
        assert format_findings([]) == "repro-lint: no findings"

    def test_json_format_is_machine_readable(self):
        payload = json.loads(
            format_findings(lint_source(HOT_ALLOC, path="mod.py"), fmt="json")
        )
        assert payload["total"] == len(payload["findings"]) > 0
        assert payload["counts_by_rule"]["no-alloc-in-hot"] >= 1
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            format_findings([], fmt="xml")

    def test_render_is_path_line_col(self):
        f = Finding(rule="r", path="p.py", line=3, col=7, message="m")
        assert f.render() == "p.py:3:7: r: m"


class TestPathDiscovery:
    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(HOT_ALLOC)
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text(HOT_ALLOC)
        findings = lint_paths([tmp_path])
        assert len(findings) == 1
        assert findings[0].path.endswith("a.py")
        assert "__pycache__" not in findings[0].path
