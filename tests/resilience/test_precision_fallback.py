"""Precision degradation ladder inside a real SCF.

``fast32`` runs the SCF Hartree solve through fp32 FFT scratch with a
first-apply fp64 cross-check.  When that check fails, the convolution plan
degrades to fp64 *for the failing apply onward* — so the whole SCF must be
bit-identical to strict64 from the fallback point, and the event must land
in the process-wide resilience log.
"""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.dft import run_scf
from repro.precision import resolve_precision
from repro.pw.fft import default_plan_cache
from repro.resilience import resilience_log


@pytest.fixture()
def clean_plan_cache():
    # The default plan cache keys by dtype but (deliberately) not by
    # tolerance; isolate these tests so a zero-tolerance plan never leaks
    # into — or out of — the shared cache.
    default_plan_cache().clear()
    yield
    default_plan_cache().clear()


@pytest.fixture(scope="module")
def strict_gs():
    return run_scf(
        silicon_primitive_cell(), ecut=6.0, n_bands=8, tol=1e-7, seed=3
    )


def _run(precision):
    return run_scf(
        silicon_primitive_cell(), ecut=6.0, n_bands=8, tol=1e-7, seed=3,
        precision=precision,
    )


class TestMidScfFallback:
    def test_forced_fft_fallback_is_bit_identical_to_strict64(
        self, strict_gs, clean_plan_cache
    ):
        log = resilience_log()
        before = len(log)
        # fft_tol=0.0 makes the very first fp32 Hartree apply fail its
        # fp64 cross-check: the plan degrades immediately, so every
        # Hartree potential the SCF ever sees is the fp64 one.
        forced = resolve_precision("fast32").replace(fft_tol=0.0)
        gs = _run(forced)
        events = [
            e for e in log.events()[before:] if e.stage == "scf-hartree"
        ]
        assert [(e.stage, e.action) for e in events] == [
            ("scf-hartree", "fallback-fp64")
        ]
        np.testing.assert_array_equal(gs.density, strict_gs.density)
        np.testing.assert_array_equal(gs.energies, strict_gs.energies)
        assert gs.total_energy == strict_gs.total_energy

    def test_mixed_mode_leaves_the_scf_untouched(
        self, strict_gs, clean_plan_cache
    ):
        # mixed keeps scf_fft_fp32 off: SCF stays bit-identical with no
        # fallback machinery involved at all.
        log = resilience_log()
        before = len(log)
        gs = _run("mixed")
        np.testing.assert_array_equal(gs.density, strict_gs.density)
        assert gs.total_energy == strict_gs.total_energy
        assert not [
            e for e in log.events()[before:] if e.stage == "scf-hartree"
        ]

    def test_fast32_within_tolerance_runs_without_fallback(
        self, strict_gs, clean_plan_cache
    ):
        log = resilience_log()
        before = len(log)
        gs = _run("fast32")
        assert not [
            e for e in log.events()[before:] if e.stage == "scf-hartree"
        ]
        assert gs.converged
        # fp32 FFT scratch perturbs each Hartree apply by ~1e-7 relative;
        # the converged total energy stays well inside 1e-5 relative.
        rel = abs(gs.total_energy - strict_gs.total_energy) / abs(
            strict_gs.total_energy
        )
        assert rel <= 1e-5
