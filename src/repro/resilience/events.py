"""The resilience event log: a process-wide record of degradation events.

The PR 2 degradation ladders (scipy->numpy FFT, K-Means->QRCP selection,
iterative->dense eigensolver) each fall back *silently* from the caller's
point of view — the result is still correct, just produced by a slower or
stricter path.  The mixed-precision tiers add a fourth rung (fp32 stage ->
fp64 recompute) that can fire deep inside an SCF iteration, so operators
need a single place to see *that* a fallback happened, *where*, and *why*.

:func:`resilience_log` returns the process-wide :class:`ResilienceLog`;
stages record :class:`DegradationEvent` entries through it.  The log is
append-only and thread-safe; tests and the serve layer read it with
:meth:`ResilienceLog.events` and reset it with :meth:`ResilienceLog.clear`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["DegradationEvent", "ResilienceLog", "resilience_log"]


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback.

    Attributes
    ----------
    stage:
        The degrading stage (``"kmeans-classify"``, ``"isdf-fit"``,
        ``"fft-convolve"``, ``"wire-reduce"``, ``"scf-hartree"``,
        ``"fft-engine"``, ...).
    action:
        What the ladder did (``"fallback-fp64"``, ``"degrade-numpy"``, ...).
    reason:
        Human-readable cause, including the estimate and its bound where
        applicable.
    detail:
        Machine-readable extras (error estimates, tolerances, iteration
        numbers).
    timestamp:
        ``time.time()`` at record time.
    """

    stage: str
    action: str
    reason: str
    detail: dict = field(default_factory=dict)
    timestamp: float = 0.0


class ResilienceLog:
    """Append-only, thread-safe list of :class:`DegradationEvent`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[DegradationEvent] = []

    def record(
        self, stage: str, action: str, reason: str, **detail
    ) -> DegradationEvent:
        """Append one event; returns it (handy for exception chaining)."""
        event = DegradationEvent(
            stage=stage,
            action=action,
            reason=reason,
            detail=dict(detail),
            timestamp=time.time(),
        )
        with self._lock:
            self._events.append(event)
        return event

    def events(self, stage: str | None = None) -> tuple[DegradationEvent, ...]:
        """All recorded events, optionally filtered by ``stage``."""
        with self._lock:
            snapshot = tuple(self._events)
        if stage is None:
            return snapshot
        return tuple(e for e in snapshot if e.stage == stage)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_GLOBAL_LOG = ResilienceLog()


def resilience_log() -> ResilienceLog:
    """The process-wide log every degradation ladder records into."""
    return _GLOBAL_LOG
