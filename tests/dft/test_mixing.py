"""Tests for density mixers."""

import numpy as np
import pytest

from repro.dft import AndersonMixer, LinearMixer


class TestLinearMixer:
    def test_step_formula(self):
        mixer = LinearMixer(beta=0.25)
        n_in = np.array([1.0, 2.0])
        n_out = np.array([2.0, 4.0])
        np.testing.assert_allclose(mixer.mix(n_in, n_out), [1.25, 2.5])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LinearMixer(beta=0.0)

    def test_fixed_point_is_stationary(self, rng):
        n = rng.random(20)
        mixer = LinearMixer(0.5)
        np.testing.assert_allclose(mixer.mix(n, n), n)


class TestAndersonMixer:
    def test_first_step_is_linear(self, rng):
        n_in = rng.random(30)
        n_out = rng.random(30)
        anderson = AndersonMixer(beta=0.4).mix(n_in, n_out)
        linear = LinearMixer(beta=0.4).mix(n_in, n_out)
        np.testing.assert_allclose(anderson, np.maximum(linear, 0.0))

    def test_solves_linear_fixed_point_faster_than_linear(self, rng):
        """x* = A x* + b with spectral radius < 1: Anderson should beat
        plain damping by a wide margin in iteration count."""
        m = 40
        q, _ = np.linalg.qr(rng.standard_normal((m, m)))
        a = q @ np.diag(rng.uniform(-0.6, 0.9, m)) @ q.T
        b = rng.random(m)
        x_star = np.linalg.solve(np.eye(m) - a, b)
        x_star = np.abs(x_star)  # keep it positive so clipping is inert
        b = (np.eye(m) - a) @ x_star

        def iterate(mixer, iters):
            x = np.zeros(m)
            for _ in range(iters):
                x = mixer.mix(x, a @ x + b)
            return np.linalg.norm(x - x_star)

        err_anderson = iterate(AndersonMixer(beta=0.5, history=8), 25)
        err_linear = iterate(LinearMixer(beta=0.5), 25)
        assert err_anderson < 0.05 * err_linear

    def test_output_nonnegative(self, rng):
        mixer = AndersonMixer(beta=1.5, history=4)
        for _ in range(5):
            out = mixer.mix(rng.random(10), rng.random(10) - 0.5)
        assert (out >= 0.0).all()

    def test_reset_clears_history(self, rng):
        mixer = AndersonMixer(beta=0.4)
        n1, n2 = rng.random(10), rng.random(10)
        first = mixer.mix(n1, n2).copy()
        mixer.reset()
        np.testing.assert_allclose(mixer.mix(n1, n2), first)

    def test_history_is_bounded(self, rng):
        mixer = AndersonMixer(beta=0.4, history=3)
        for _ in range(10):
            mixer.mix(rng.random(8), rng.random(8))
        assert len(mixer._inputs) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AndersonMixer(beta=-0.1)
        with pytest.raises(ValueError):
            AndersonMixer(history=0)
