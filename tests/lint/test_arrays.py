"""The array-contract analyzer: dim unification, dtype joins, four rules.

Rule snippets run through the same single-module-project harness as the
other interprocedural rule tests; the repo-clean class at the bottom
pins the PR's invariant that ``src/`` has zero unsuppressed findings
from any of the four array rules.
"""

import ast
import pathlib

import pytest

from repro.lint import lint_paths
from repro.lint.arrays import (
    ARRAY_RULE_NAMES,
    Dim,
    join_dtypes,
    unify_dims,
)
from repro.lint.callgraph import build_project
from repro.lint.engine import SourceModule, all_project_rules

pytestmark = pytest.mark.lint

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def project_findings(files, rule_name):
    modules = [
        SourceModule(path=path, text=text, tree=ast.parse(text))
        for path, text in files.items()
    ]
    graph = build_project(modules)
    rule = next(r for r in all_project_rules() if r.name == rule_name)
    return list(rule.check(graph, modules))


def one_module(text, rule_name):
    return project_findings({"src/app/mod.py": text}, rule_name)


HEADER = (
    "import numpy as np\n"
    "from repro.utils.hot import array_contract, hot_kernel\n"
)


class TestDimUnification:
    @pytest.mark.parametrize(
        "a, b, conflict",
        [
            (Dim(value=3), Dim(value=3), False),
            (Dim(value=3), Dim(value=4), True),
            (Dim(name="n"), Dim(value=5), False),
            (Dim(name="n"), Dim(name="m"), False),  # symbols may coincide
            (Dim(), Dim(value=7), False),
            (Dim(), Dim(), False),
        ],
    )
    def test_conflict_table(self, a, b, conflict):
        _, got = unify_dims(a, b)
        assert got is conflict
        # Unification is symmetric in its conflict verdict.
        _, rev = unify_dims(b, a)
        assert rev is conflict

    def test_merge_keeps_name_and_value(self):
        merged, conflict = unify_dims(Dim(name="n"), Dim(value=5))
        assert not conflict
        assert merged.name == "n"
        assert merged.value == 5

    def test_rank_dependence_is_sticky(self):
        merged, _ = unify_dims(
            Dim(name="n", rank_dependent=True), Dim(value=5)
        )
        assert merged.rank_dependent
        merged, _ = unify_dims(
            Dim(value=5), Dim(name="n", rank_dependent=True)
        )
        assert merged.rank_dependent

    def test_unknown_dim_absorbs_either_side(self):
        merged, conflict = unify_dims(Dim(), Dim(name="k", value=2))
        assert not conflict
        assert (merged.name, merged.value) == ("k", 2)


class TestDtypeJoin:
    LATTICE = ("bool", "int64", "float32", "float64", "complex128")

    @pytest.mark.parametrize(
        "a, b, expect",
        [
            ("bool", "int64", "int64"),
            ("int64", "float32", "float32"),
            ("float32", "float64", "float64"),
            ("float64", "complex128", "complex128"),
            ("bool", "complex128", "complex128"),
            ("float64", "float64", "float64"),
        ],
    )
    def test_join_table(self, a, b, expect):
        assert join_dtypes(a, b) == expect

    def test_join_is_commutative_and_idempotent(self):
        for a in self.LATTICE:
            assert join_dtypes(a, a) == a
            for b in self.LATTICE:
                assert join_dtypes(a, b) == join_dtypes(b, a)

    def test_unknown_is_absorbing(self):
        assert join_dtypes(None, "float64") is None
        assert join_dtypes("float64", None) is None


class TestSilentUpcastInHot:
    def test_astype_complex_in_contracted_kernel(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    return x.astype(np.complex128)\n",
            "silent-upcast-in-hot",
        )
        assert len(findings) == 1
        assert "complex128" in findings[0].message

    def test_complex_literal_broadcast(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    return 1j * x\n",
            "silent-upcast-in-hot",
        )
        assert len(findings) == 1

    def test_weak_float_scalar_does_not_widen_float32(self):
        # NEP-50: a python float is a weak scalar, 3.0 * float32 stays
        # float32 — must NOT flag.
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float32'})\n"
            "def apply(x):\n"
            "    return 3.0 * x\n",
            "silent-upcast-in-hot",
        )
        assert findings == []

    def test_float64_array_operand_widens_float32(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float32'})\n"
            "def apply(x):\n"
            "    w = np.zeros(4)\n"
            "    return w * x\n",
            "silent-upcast-in-hot",
        )
        assert len(findings) == 1

    def test_cold_function_may_upcast_freely(self):
        findings = one_module(
            HEADER
            + "def reference(x):\n"
            "    y = np.zeros(3)\n"
            "    return y.astype(np.complex128)\n",
            "silent-upcast-in-hot",
        )
        assert findings == []

    def test_unknown_dtype_never_flags(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def apply(x):\n"
            "    return 1j * x\n",  # x dtype unknown: stay silent
            "silent-upcast-in-hot",
        )
        assert findings == []


class TestHiddenCopyIntoKernel:
    def test_strided_slice_into_contract_contiguous_param(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': ('n', 'm')}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller():\n"
            "    z0 = np.zeros((4, 6))\n"
            "    return kern(z0[:, ::2])\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) == 1
        assert "C-contiguity" in findings[0].message
        # The witness chain names the caller and the contracted callee.
        assert "caller -> kern" in findings[0].message

    def test_contiguous_argument_is_clean(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': ('n', 'm')}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller():\n"
            "    z0 = np.zeros((4, 6))\n"
            "    return kern(z0)\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []

    def test_transpose_into_fft_entry(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def spectrum(a):\n"
            "    g = np.zeros((8, 8, 8))\n"
            "    return np.fft.fftn(g.T)\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) == 1

    def test_transpose_into_gemm_is_allowed(self):
        # BLAS consumes F-contiguous (transposed) operands natively via
        # lda/trans flags: no hidden copy, no finding.
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def gram(a):\n"
            "    b = np.zeros((8, 8))\n"
            "    return b.T @ b\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []

    def test_strided_operand_into_gemm_flags(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def gram(a):\n"
            "    b = np.zeros((8, 8))\n"
            "    return b[:, ::2] @ b[::2]\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) >= 1

    def test_ascontiguousarray_launders_the_layout(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': ('n', 'm')}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller():\n"
            "    z0 = np.zeros((4, 6))\n"
            "    return kern(np.ascontiguousarray(z0[:, ::2]))\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []


class TestShapeMismatch:
    def test_matmul_inner_dim_conflict(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def bad():\n"
            "    a = np.zeros((3, 4))\n"
            "    b = np.zeros((5, 6))\n"
            "    return a @ b\n",
            "shape-mismatch",
        )
        assert len(findings) == 1

    def test_matmul_matching_inner_dim_is_clean(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def ok():\n"
            "    a = np.zeros((3, 4))\n"
            "    b = np.zeros((4, 6))\n"
            "    return a @ b\n",
            "shape-mismatch",
        )
        assert findings == []

    def test_rank_mismatch_against_contract(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'x': ('n', 'm')})\n"
            "def kern(x):\n"
            "    return x\n"
            "def caller():\n"
            "    return kern(np.zeros(3))\n",
            "shape-mismatch",
        )
        assert len(findings) == 1

    def test_symbolic_dim_conflict_across_parameters(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'a': ('n',), 'b': ('n',)})\n"
            "def kern(a, b):\n"
            "    return a\n"
            "def caller():\n"
            "    return kern(np.zeros(3), np.zeros(4))\n",
            "shape-mismatch",
        )
        assert len(findings) == 1

    def test_symbolic_dims_that_agree_are_clean(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'a': ('n',), 'b': ('n',)})\n"
            "def kern(a, b):\n"
            "    return a\n"
            "def caller():\n"
            "    return kern(np.zeros(3), np.zeros(3))\n",
            "shape-mismatch",
        )
        assert findings == []

    def test_malformed_contract_is_unconfirmable(self):
        findings = one_module(
            HEADER
            + "SHAPES = {'x': ('n',)}\n"
            "@array_contract(shapes=SHAPES)\n"  # not a literal
            "def kern(x):\n"
            "    return x\n",
            "shape-mismatch",
        )
        assert len(findings) == 1
        assert "unconfirmable" in findings[0].message

    def test_contract_naming_unknown_parameter(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'y': ('n',)})\n"
            "def kern(x):\n"
            "    return x\n",
            "shape-mismatch",
        )
        assert len(findings) == 1
        assert "unknown parameter" in findings[0].message


class TestCollectiveBufferContract:
    def test_rank_sized_buffer_into_allreduce(self):
        findings = one_module(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    buf = np.zeros(comm.rank + 1)\n"
            "    return comm.allreduce(buf)\n",
            "collective-buffer-contract",
        )
        assert len(findings) == 1
        assert "rank" in findings[0].message

    def test_rank_taint_flows_through_assignment(self):
        findings = one_module(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    n = comm.rank + 1\n"
            "    buf = np.zeros((n, 4))\n"
            "    return comm.reduce(buf, root=0)\n",
            "collective-buffer-contract",
        )
        assert len(findings) == 1

    def test_rank_invariant_buffer_is_clean(self):
        findings = one_module(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    buf = np.zeros(comm.size)\n"
            "    return comm.allreduce(buf)\n",
            "collective-buffer-contract",
        )
        assert findings == []

    def test_ragged_tolerant_collectives_accept_rank_shapes(self):
        # gather/allgather/alltoall take per-rank shapes by design.
        findings = one_module(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    buf = np.zeros(comm.rank + 1)\n"
            "    return comm.allgather(buf)\n",
            "collective-buffer-contract",
        )
        assert findings == []


class TestUndeclaredDowncastInHot:
    """Mixed-precision governance: a float64 -> float32 downcast inside a
    hot function must be statically sanctioned by a ``precision_policy``
    on its contract — otherwise it is an unreviewed precision loss."""

    def test_astype_downcast_flagged(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    return x.astype(np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert len(findings) == 1
        assert "float32" in findings[0].message

    def test_asarray_dtype_downcast_flagged(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    return np.asarray(x, dtype=np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert len(findings) == 1

    def test_ascontiguousarray_dtype_downcast_flagged(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    return np.ascontiguousarray(x, dtype=np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert len(findings) == 1

    def test_declared_policy_sanctions_the_downcast(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'},\n"
            "                precision_policy='fp32-compute')\n"
            "def apply(x):\n"
            "    return x.astype(np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert findings == []

    def test_cold_function_may_downcast_freely(self):
        findings = one_module(
            HEADER
            + "def reference(x):\n"
            "    y = np.zeros(3)\n"
            "    return y.astype(np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert findings == []

    def test_fp32_input_is_not_a_downcast(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float32'})\n"
            "def apply(x):\n"
            "    return np.asarray(x, dtype=np.float32)\n",
            "undeclared-downcast-in-hot",
        )
        assert findings == []

    def test_unknown_dtype_never_flags(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def apply(x):\n"
            "    return x.astype(np.float32)\n",  # x dtype unknown
            "undeclared-downcast-in-hot",
        )
        assert findings == []

    def test_rule_is_registered(self):
        assert "undeclared-downcast-in-hot" in ARRAY_RULE_NAMES


class TestRealTreeIsClean:
    """The PR invariant: zero unsuppressed array findings on ``src/``."""

    def test_array_rules_clean_on_src(self):
        findings = [
            f
            for f in lint_paths([SRC], rules=list(ARRAY_RULE_NAMES))
            if f.rule in ARRAY_RULE_NAMES
        ]
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in findings
        )

    def test_all_four_rules_register(self):
        names = {r.name for r in all_project_rules()}
        assert set(ARRAY_RULE_NAMES) <= names
