"""Paper Tables 2 and 4: computation/memory complexity of the versions.

Renders both symbolic tables verbatim and evaluates them numerically on the
Si_1000 workload to verify the claimed reductions ("nearly 2 orders of
magnitude", Section 4.3).
"""

import numpy as np

from repro.perf import (
    complexity_table_2,
    complexity_table_4,
    evaluate_complexity,
    silicon_workload,
)


def _render() -> str:
    lines = ["Paper Table 2 — naive LR-TDDFT phase complexity", ""]
    lines.append(f"{'Operation':<34s} {'Computation':<20s} {'Memory':<18s}")
    for op, comp, mem in complexity_table_2():
        lines.append(f"{op:<34s} {comp:<20s} {mem:<18s}")

    lines += ["", "Paper Table 4 — five optimization levels", ""]
    lines.append(
        f"{'Version':<30s} {'Construct (compute)':<42s} "
        f"{'Diag (compute)':<22s} {'Diag (memory)':<14s}"
    )
    for row in complexity_table_4():
        lines.append(
            f"{row.version:<30s} {row.construct_compute:<42s} "
            f"{row.diag_compute:<22s} {row.diag_memory:<14s}"
        )

    w = silicon_workload(1000)
    lines += [
        "",
        f"Numeric leading terms for {w.label} "
        f"(N_v={w.n_v}, N_c={w.n_c}, N_r={w.n_r}, N_mu={w.n_mu}):",
        f"{'Version':<30s} {'construct ops':>14s} {'diag ops':>12s} "
        f"{'diag memory':>12s}",
    ]
    for row in complexity_table_4():
        vals = evaluate_complexity(row.version, w)
        lines.append(
            f"{row.version:<30s} {vals['construct_compute']:14.2e} "
            f"{vals['diag_compute']:12.2e} {vals['diag_memory']:12.2e}"
        )
    return "\n".join(lines)


def test_tables_2_and_4(benchmark, save_table):
    text = benchmark(_render)
    save_table("table2_table4_complexity", text)

    w = silicon_workload(1000)
    naive = evaluate_complexity("naive", w)
    implicit = evaluate_complexity("implicit-kmeans-isdf-lobpcg", w)
    # Section 4.3's claim: computation and memory down ~2 orders of magnitude.
    assert implicit["diag_compute"] < naive["diag_compute"] / 100
    assert implicit["diag_memory"] < naive["diag_memory"] / 100
    assert implicit["construct_compute"] < naive["construct_compute"] / 10
    # Each level never regresses the previous one.
    order = [row.version for row in complexity_table_4()]
    diag = [evaluate_complexity(v, w)["diag_compute"] for v in order]
    assert diag == sorted(diag, reverse=True)
