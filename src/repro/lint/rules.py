"""The lint passes encoding this codebase's parallel-correctness invariants.

Each rule documents its rationale in the class docstring; worked examples
and the suppression syntax live in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    LintRule,
    SourceModule,
    dotted_name,
    register_rule,
)
from repro.lint.hotpaths import HOT_DECORATORS, hot_functions_for

__all__ = [
    "CollectiveInBranch",
    "MutatedRecvBuffer",
    "NoAllocInHot",
    "NoBlindExcept",
    "NondeterminismInReplay",
    "dotted_name",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function/method in the module."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    for qual, node in walk(tree, ""):
        yield qual, node  # type: ignore[misc]


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.add(name.rsplit(".", maxsplit=1)[-1])
    return names


def _mentions_rank(node: ast.AST) -> bool:
    """Does the expression reference a rank (``rank`` name or ``.rank``)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "_rank"):
            return True
    return False


# ---------------------------------------------------------------------------
# no-alloc-in-hot
# ---------------------------------------------------------------------------

#: numpy constructors that always materialize a fresh buffer.
_ALLOC_FUNCS = frozenset(
    {
        "array",
        "column_stack",
        "concatenate",
        "copy",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "hstack",
        "kron",
        "ones",
        "ones_like",
        "outer",
        "repeat",
        "stack",
        "tile",
        "vstack",
        "zeros",
        "zeros_like",
    }
)
_NUMPY_ALIASES = frozenset({"np", "numpy"})


@register_rule
class NoAllocInHot(LintRule):
    """Allocations inside hot kernels silently regress the PR-1 speedups.

    Scope: functions decorated ``@hot_kernel`` or listed in
    :data:`repro.lint.hotpaths.HOT_PATH_MANIFEST`.  Flagged anywhere in the
    function: numpy constructor calls (``np.zeros`` / ``np.empty`` /
    ``np.concatenate`` / ...) and ``.copy()`` method calls.  Flagged only
    inside ``for``/``while`` bodies (the per-iteration hazard): plain
    assignments whose value is a binary operation, which materialize a
    temporary every pass — use ``out=`` kwargs or augmented assignment.
    """

    name = "no-alloc-in-hot"
    description = "allocation or operator temporary inside a hot kernel"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        manifest = hot_functions_for(module.posix_path)
        for qual, fn in _iter_functions(module.tree):
            if qual in manifest or _decorator_names(fn) & HOT_DECORATORS:
                yield from self._check_function(module, qual, fn)

    def _check_function(
        self, module: SourceModule, qual: str, fn: ast.AST
    ) -> Iterator[Finding]:
        loop_lines = _loop_body_lines(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                head, _, leaf = name.rpartition(".")
                if leaf in _ALLOC_FUNCS and head.split(".")[0] in _NUMPY_ALIASES:
                    yield self.finding(
                        module,
                        node,
                        f"hot kernel {qual!r} allocates via {name}(); "
                        "preallocate outside the kernel or reuse a workspace",
                    )
                elif leaf == "copy" and head and not node.args:
                    yield self.finding(
                        module,
                        node,
                        f"hot kernel {qual!r} copies {head!r}; copies in hot "
                        "paths must be reviewed (suppress with a reason) or "
                        "hoisted",
                    )
            elif (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.BinOp)
                and node.lineno in loop_lines
            ):
                yield self.finding(
                    module,
                    node,
                    f"hot kernel {qual!r} builds an operator temporary every "
                    "loop iteration; use an out= contraction or augmented "
                    "assignment",
                )


def _loop_body_lines(fn: ast.AST) -> set[int]:
    """Line numbers inside ``for``/``while`` bodies of ``fn`` (not nested
    function definitions — those are linted on their own)."""
    lines: set[int] = set()

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES) and node is not fn:
                continue
            child_in_loop = in_loop or isinstance(child, (ast.For, ast.While))
            if in_loop and hasattr(child, "lineno"):
                lines.add(child.lineno)
            visit(child, child_in_loop)

    visit(fn, False)
    return lines


# ---------------------------------------------------------------------------
# collective-in-branch
# ---------------------------------------------------------------------------

_COLLECTIVES = frozenset(
    {
        "allgather",
        "allreduce",
        "alltoall",
        "barrier",
        "bcast",
        "gather",
        "reduce",
        "scatter",
        "verified_allreduce",
    }
)


def _collective_calls(
    nodes: list[ast.stmt] | list[ast.expr] | ast.AST,
) -> list[tuple[str, ast.Call]]:
    calls = []
    roots = nodes if isinstance(nodes, list) else [nodes]
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                leaf = dotted_name(node.func).rpartition(".")[2]
                if leaf in _COLLECTIVES:
                    calls.append((leaf, node))
    return calls


_COMP_NODES = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


@register_rule
class CollectiveInBranch(LintRule):
    """A collective on one side of an ``if rank`` branch deadlocks.

    Collectives must be called by *every* rank; lexically guarding one with
    a rank test means the other ranks never enter it and the program hangs
    at the barrier (or, worse, pairs the call with the *next* collective).
    The rule compares the multiset of collective calls on both arms of any
    ``if`` whose test mentions a rank and flags the unmatched ones; the
    same logic covers conditional *expressions* (``x if rank else y``),
    short-circuit operands (``rank == 0 and comm.barrier()``), comprehension
    filters (``... for x in xs if rank``), and rank-dependent ``while``
    loops (iteration counts differ across ranks).
    """

    name = "collective-in-branch"
    description = "collective call guarded by a rank branch"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.If) and _mentions_rank(node.test):
                yield from self._check_arms(
                    module,
                    _collective_calls(node.body),
                    _collective_calls(node.orelse),
                )
            elif isinstance(node, ast.IfExp) and _mentions_rank(node.test):
                yield from self._check_arms(
                    module,
                    _collective_calls(node.body),
                    _collective_calls(node.orelse),
                )
            elif isinstance(node, ast.While) and _mentions_rank(node.test):
                for op, call in _collective_calls(node.body):
                    yield self.finding(
                        module,
                        call,
                        f"collective {op!r} inside a while loop whose "
                        "condition depends on the rank — iteration counts "
                        "can differ across ranks and desynchronize the "
                        "collective schedule",
                    )
            elif isinstance(node, ast.BoolOp):
                yield from self._check_boolop(module, node)
            elif isinstance(node, _COMP_NODES):
                yield from self._check_comprehension(module, node)

    def _check_arms(
        self,
        module: SourceModule,
        body_calls: list[tuple[str, ast.Call]],
        else_calls: list[tuple[str, ast.Call]],
    ) -> Iterator[Finding]:
        body_ops = [op for op, _ in body_calls]
        else_ops = [op for op, _ in else_calls]
        for op, call in body_calls + else_calls:
            mine, other = (
                (body_ops, else_ops) if (op, call) in body_calls else (else_ops, body_ops)
            )
            if mine.count(op) > other.count(op):
                yield self.finding(
                    module,
                    call,
                    f"collective {op!r} inside a rank-dependent branch has "
                    "no matching call on the other arm — ranks taking the "
                    "other path will deadlock",
                )

    def _check_boolop(
        self, module: SourceModule, node: ast.BoolOp
    ) -> Iterator[Finding]:
        """``rank == 0 and comm.barrier()``: operands after the first are
        evaluated conditionally, so a collective there is rank-guarded."""
        rank_seen = _mentions_rank(node.values[0])
        for operand in node.values[1:]:
            if rank_seen:
                for op, call in _collective_calls(operand):
                    yield self.finding(
                        module,
                        call,
                        f"collective {op!r} short-circuited behind a "
                        "rank-dependent operand — ranks failing the earlier "
                        "test never reach it and deadlock",
                    )
            rank_seen = rank_seen or _mentions_rank(operand)

    def _check_comprehension(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        """A rank-dependent comprehension filter makes the element
        expression — and any collective inside it — run a rank-dependent
        number of times."""
        guarded = any(
            _mentions_rank(cond)
            for gen in node.generators  # type: ignore[attr-defined]
            for cond in gen.ifs
        )
        if not guarded:
            return
        elements: list[ast.expr] = []
        if isinstance(node, ast.DictComp):
            elements = [node.key, node.value]
        else:
            elements = [node.elt]  # type: ignore[union-attr]
        for op, call in _collective_calls(elements):
            yield self.finding(
                module,
                call,
                f"collective {op!r} inside a comprehension with a "
                "rank-dependent filter — the call count differs across "
                "ranks and desynchronizes the collective schedule",
            )


# ---------------------------------------------------------------------------
# nondeterminism-in-replay
# ---------------------------------------------------------------------------

_WALLCLOCK = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.datetime.now", "datetime.datetime.utcnow"}
)
_SEEDED_RNG_FACTORIES = frozenset({"default_rng", "Generator", "SeedSequence"})
_DICT_ITERATORS = frozenset({"items", "keys", "values"})
_REDUCTIONS = frozenset({"allreduce", "reduce", "sum", "verified_allreduce"})


def _is_replay_scope(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Checkpoint-replayed = takes a ``checkpoint`` argument or builds a
    ``LoopCheckpointer`` / calls ``<checkpoint>.resume() / .save()``."""
    args = fn.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if any("checkpoint" in n for n in names):
        return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.rpartition(".")[2] == "LoopCheckpointer":
                return True
            base, _, leaf = name.rpartition(".")
            if leaf in ("resume", "save") and "checkpoint" in base:
                return True
    return False


@register_rule
class NondeterminismInReplay(LintRule):
    """Checkpoint replay promises bit-identical resumption (PR 2).

    Anything that differs between the original run and the replayed one —
    wall-clock reads, the unseeded global numpy RNG, or hash-order dict
    iteration feeding a reduction — silently breaks that contract.  The
    rule scopes itself to functions that participate in checkpointing (a
    ``checkpoint`` parameter or ``LoopCheckpointer`` usage).
    """

    name = "nondeterminism-in-replay"
    description = "nondeterministic construct inside a checkpoint-replayed loop"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        replay = [
            (qual, fn)
            for qual, fn in _iter_functions(module.tree)
            if _is_replay_scope(fn)
        ]
        quals = {qual for qual, _ in replay}
        for qual, fn in replay:
            # A nested def inside a replay scope is covered by the outer
            # walk; re-checking it on its own would duplicate findings.
            if any(qual.startswith(outer + ".") for outer in quals if outer != qual):
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, qual, node)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    yield from self._check_iteration(module, qual, node)

    def _check_call(
        self, module: SourceModule, qual: str, node: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name in _WALLCLOCK:
            yield self.finding(
                module,
                node,
                f"{name}() inside checkpoint-replayed {qual!r} differs on "
                "replay; thread timestamps through the snapshot instead",
            )
            return
        parts = name.split(".")
        if (
            len(parts) >= 3
            and parts[0] in _NUMPY_ALIASES
            and parts[1] == "random"
            and parts[2] not in _SEEDED_RNG_FACTORIES
        ):
            yield self.finding(
                module,
                node,
                f"unseeded global RNG {name}() inside checkpoint-replayed "
                f"{qual!r}; pass an explicit np.random.Generator",
            )

    def _check_iteration(
        self, module: SourceModule, qual: str, node: ast.For | ast.comprehension
    ) -> Iterator[Finding]:
        iter_expr = node.iter
        if not (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in _DICT_ITERATORS
        ):
            return
        if isinstance(node, ast.For):
            feeds_reduction = any(
                isinstance(sub, ast.AugAssign)
                or (
                    isinstance(sub, ast.Call)
                    and dotted_name(sub.func).rpartition(".")[2] in _REDUCTIONS
                )
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
        else:  # comprehension: assume its consumer accumulates
            feeds_reduction = True
        if feeds_reduction:
            target = dotted_name(iter_expr.func.value) or "<mapping>"
            yield self.finding(
                module,
                iter_expr,
                f"iteration over {target}.{iter_expr.func.attr}() feeds a "
                f"reduction inside checkpoint-replayed {qual!r}; wrap in "
                "sorted(...) so replay order is deterministic",
            )


# ---------------------------------------------------------------------------
# mutated-recv-buffer
# ---------------------------------------------------------------------------

#: comm methods / redistribute helpers whose return value aliases a buffer
#: owned by (or shared with) another rank in the thread-per-rank runtime.
_RECV_METHODS = frozenset({"recv", "bcast", "scatter"})
_RECV_FUNCS = frozenset(
    {
        "allgather_rows",
        "reliable_recv",
        "row_block_to_block_cyclic",
        "transpose_to_column_block",
        "transpose_to_row_block",
    }
)
_MUTATING_METHODS = frozenset(
    {"fill", "partition", "put", "resize", "sort", "setfield", "byteswap"}
)


def _is_recv_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    head, _, leaf = name.rpartition(".")
    return (leaf in _RECV_METHODS and head != "") or (
        leaf in _RECV_FUNCS and head == ""
    ) or name in _RECV_FUNCS


@register_rule
class MutatedRecvBuffer(LintRule):
    """The thread-per-rank comm layer exchanges arrays *by reference*.

    Writing into an array returned by ``comm.recv`` / ``comm.bcast`` / the
    redistribute helpers mutates the sender's buffer (and every other
    receiver's view) — a data race the production MPI build doesn't have,
    and exactly what the runtime sanitizer flags dynamically.  Take a
    ``.copy()`` before mutating.
    """

    name = "mutated-recv-buffer"
    description = "in-place mutation of a buffer received through the comm layer"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for qual, fn in _iter_functions(module.tree):
            yield from self._check_function(module, qual, fn)

    @staticmethod
    def _scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Walk ``fn``'s own scope in source order: skip nested ``def``
        bodies (they get their own pass with their own name table, so a
        nested-scope assignment can neither start nor stop tracking a name
        out here), keep lambda and comprehension bodies (they close over
        this scope's names and cannot rebind them)."""

        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES):
                    continue
                yield child
                yield from walk(child)

        yield from walk(fn)

    def _check_function(
        self, module: SourceModule, qual: str, fn: ast.AST
    ) -> Iterator[Finding]:
        tracked: dict[str, int] = {}  # name -> line of the receiving assign
        for node in self._scope_nodes(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_recv_call(node.value):
                        tracked[target.id] = node.lineno
                    elif target.id in tracked:
                        # reassigned (e.g. to a .copy()): no longer shared.
                        del tracked[target.id]
                    continue
            yield from self._check_mutation(module, qual, node, tracked)

    def _check_mutation(
        self,
        module: SourceModule,
        qual: str,
        node: ast.AST,
        tracked: dict[str, int],
    ) -> Iterator[Finding]:
        def hit(name_node: ast.AST) -> str | None:
            if isinstance(name_node, ast.Name) and name_node.id in tracked:
                return name_node.id
            return None

        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = hit(target.value)
                    if name:
                        yield self._flag(module, qual, node, name, tracked[name])
        elif isinstance(node, ast.AugAssign):
            base = node.target.value if isinstance(node.target, ast.Subscript) else node.target
            name = hit(base)
            if name:
                yield self._flag(module, qual, node, name, tracked[name])
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATING_METHODS:
                name = hit(node.func.value)
                if name:
                    yield self._flag(module, qual, node, name, tracked[name])
            for kw in node.keywords:
                if kw.arg == "out":
                    name = hit(kw.value)
                    if name:
                        yield self._flag(module, qual, node, name, tracked[name])

    def _flag(
        self,
        module: SourceModule,
        qual: str,
        node: ast.AST,
        name: str,
        recv_line: int,
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"{qual!r} mutates {name!r} received through the comm layer at "
            f"line {recv_line} in place; buffers are shared by reference — "
            f"use {name}.copy() first",
        )


# ---------------------------------------------------------------------------
# no-blind-except
# ---------------------------------------------------------------------------


@register_rule
class NoBlindExcept(LintRule):
    """``except Exception`` hides injected faults, aborts and real bugs.

    The resilience layer communicates through typed exceptions
    (``InjectedFault``, ``SpmdAbort``, ``MessageTimeout``); a blanket
    handler that can swallow them turns a diagnosed failure into silent
    corruption.  Catch the specific expected types, or end the handler
    with an unconditional re-raise (a ``raise`` buried inside an ``if``
    still swallows every other path).
    """

    name = "no-blind-except"
    description = "blanket except handler that can swallow typed faults"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_blind(node.type):
                continue
            always_reraises = bool(node.body) and isinstance(
                node.body[-1], ast.Raise
            )
            if not always_reraises:
                caught = dotted_name(node.type) if node.type else "everything"
                yield self.finding(
                    module,
                    node,
                    f"handler catches {caught} without unconditionally "
                    "re-raising; name the expected exception types (typed "
                    "faults must propagate)",
                )

    @staticmethod
    def _is_blind(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        names = (
            [dotted_name(e) for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [dotted_name(type_node)]
        )
        return any(n in ("Exception", "BaseException") for n in names)
