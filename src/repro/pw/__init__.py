"""Plane-wave infrastructure: unit cells, FFT grids, G-vectors, basis sets.

This subpackage is the discretization layer underneath the Kohn-Sham DFT
substrate (:mod:`repro.dft`) and the LR-TDDFT core (:mod:`repro.core`):
periodic unit cells, the real-space FFT grid whose dimensions follow the
paper's rule ``(N_r)_i = sqrt(2 E_cut) L_i / pi``, the G-vector sphere
``|G|^2 / 2 <= E_cut`` and Fourier-series transforms between the two.
"""

from repro.pw.cell import UnitCell
from repro.pw.grid import RealSpaceGrid, good_fft_size
from repro.pw.gvectors import GVectors
from repro.pw.fft import FourierGrid
from repro.pw.basis import PlaneWaveBasis

__all__ = [
    "UnitCell",
    "RealSpaceGrid",
    "good_fft_size",
    "GVectors",
    "FourierGrid",
    "PlaneWaveBasis",
]
