"""Tests for weighted K-Means interpolation-point selection (Section 4.2)."""

import numpy as np
import pytest

from repro.core import select_points_kmeans, weighted_kmeans
from repro.core.kmeans import _pairwise_sq_dists
from repro.utils.rng import default_rng


class TestPairwiseDistances:
    def test_matches_direct(self, rng):
        p = rng.standard_normal((20, 3))
        c = rng.standard_normal((5, 3))
        d2 = _pairwise_sq_dists(p, c)
        direct = ((p[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, direct, atol=1e-10)

    def test_nonnegative(self, rng):
        p = rng.standard_normal((50, 3)) * 1e-8
        assert (_pairwise_sq_dists(p, p) >= 0).all()


class TestWeightedKMeans:
    def test_well_separated_clusters_found(self):
        rng = default_rng(0)
        centres = np.array([[0.0, 0, 0], [10.0, 0, 0], [0, 10.0, 0]])
        points = np.vstack(
            [c + 0.3 * rng.standard_normal((30, 3)) for c in centres]
        )
        weights = np.ones(90)
        got, labels, inertia, n_iter, converged = weighted_kmeans(
            points, weights, 3, rng=rng
        )
        assert converged
        # Each recovered centroid is near one true centre.
        d = np.linalg.norm(got[:, None] - centres[None], axis=2)
        assert d.min(axis=1).max() < 0.5

    def test_assignments_are_nearest_centroid(self, rng):
        points = rng.standard_normal((100, 3))
        weights = rng.random(100) + 0.1
        centroids, labels, *_ = weighted_kmeans(points, weights, 5, rng=rng)
        d2 = _pairwise_sq_dists(points, centroids)
        np.testing.assert_array_equal(labels, np.argmin(d2, axis=1))

    def test_centroids_are_weighted_means(self, rng):
        points = rng.standard_normal((80, 3))
        weights = rng.random(80) + 0.1
        centroids, labels, *_ = weighted_kmeans(points, weights, 4, rng=rng)
        for k in range(4):
            members = labels == k
            if members.any():
                expect = (weights[members, None] * points[members]).sum(0) / weights[
                    members
                ].sum()
                np.testing.assert_allclose(centroids[k], expect, atol=1e-10)

    def test_zero_weight_points_do_not_attract_centroids(self):
        rng = default_rng(1)
        cluster = 0.1 * rng.standard_normal((40, 3))
        outliers = np.array([[100.0, 100, 100], [120.0, 80, 90]])
        points = np.vstack([cluster, outliers])
        weights = np.concatenate([np.ones(40), np.zeros(2)])
        centroids, *_ = weighted_kmeans(points, weights, 2, rng=rng)
        assert np.linalg.norm(centroids, axis=1).max() < 5.0

    def test_deterministic_greedy_init(self, rng):
        points = rng.standard_normal((60, 3))
        weights = rng.random(60)
        a = weighted_kmeans(points, weights, 4, init="greedy-weight")
        b = weighted_kmeans(points, weights, 4, init="greedy-weight")
        np.testing.assert_array_equal(a[1], b[1])

    def test_plusplus_init_deterministic_with_seed(self, rng):
        points = rng.standard_normal((60, 3))
        weights = rng.random(60)
        a = weighted_kmeans(points, weights, 4, init="plusplus", rng=default_rng(9))
        b = weighted_kmeans(points, weights, 4, init="plusplus", rng=default_rng(9))
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_inputs(self, rng):
        points = rng.standard_normal((10, 3))
        with pytest.raises(ValueError):
            weighted_kmeans(points, np.ones(10), 0)
        with pytest.raises(ValueError):
            weighted_kmeans(points, np.ones(9), 2)
        with pytest.raises(ValueError):
            weighted_kmeans(points, -np.ones(10), 2)
        with pytest.raises(ValueError):
            weighted_kmeans(points, np.ones(10), 2, init="bogus")

    def test_n_clusters_equals_n_points(self, rng):
        points = rng.standard_normal((6, 3))
        centroids, labels, inertia, *_ = weighted_kmeans(points, np.ones(6), 6)
        assert inertia == pytest.approx(0.0, abs=1e-20)
        assert sorted(labels.tolist()) == list(range(6))


class TestSelectPoints:
    def test_selection_on_synthetic_system(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        res = select_points_kmeans(
            psi_v, psi_c, 32, grid_points=gs.basis.grid.cartesian_points
        )
        assert res.indices.shape == (32,)
        assert len(set(res.indices.tolist())) == 32
        assert res.indices.min() >= 0
        assert res.indices.max() < gs.basis.n_r

    def test_points_land_in_high_weight_regions(self, si8_synthetic):
        from repro.core import pair_weights

        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        w = pair_weights(psi_v, psi_c)
        res = select_points_kmeans(
            psi_v, psi_c, 16, grid_points=gs.basis.grid.cartesian_points
        )
        # Every chosen point carries non-trivial weight.
        assert w[res.indices].min() > 1e-6 * w.max()

    def test_pruning_shrinks_candidates(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        tight = select_points_kmeans(
            psi_v, psi_c, 8,
            grid_points=gs.basis.grid.cartesian_points, prune_threshold=1e-2,
        )
        loose = select_points_kmeans(
            psi_v, psi_c, 8,
            grid_points=gs.basis.grid.cartesian_points, prune_threshold=1e-8,
        )
        assert tight.candidate_indices.size < loose.candidate_indices.size

    def test_zero_orbitals_rejected(self):
        psi = np.zeros((2, 50))
        with pytest.raises(ValueError, match="vanish"):
            select_points_kmeans(psi, psi, 4, grid_points=np.zeros((50, 3)))

    def test_aggressive_pruning_falls_back(self, si8_synthetic):
        """Pruning that leaves fewer candidates than n_mu must not crash."""
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        res = select_points_kmeans(
            psi_v, psi_c, 24,
            grid_points=gs.basis.grid.cartesian_points, prune_threshold=0.999,
        )
        assert res.indices.shape == (24,)
