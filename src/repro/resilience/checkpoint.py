"""Versioned on-disk checkpointing for the iterative loops.

:class:`CheckpointManager` owns a directory of snapshot files named
``<tag>-<step>.npz``; each file is a complete, atomically-written
npz+json payload (see :mod:`repro.utils.serialization`) carrying a format
version, the tag, and the step number, validated on load.

:class:`LoopCheckpointer` is the object the loops actually consume: it
bundles a manager with a save interval, the restart flag, and the optional
fault injector (so a configured ``kill_loop`` fault fires right after the
snapshot is durably on disk — the crash model restart tests exercise).

The state a loop snapshots is its exact iteration-boundary state (for
LOBPCG: ``X``, ``H X``, ``P``, ``H P``, the best-residual watermark and
the residual history), so a restarted run replays the remaining
iterations bit-identically to an uninterrupted one: float64/complex128
arrays round-trip exactly through npz, and scalar floats round-trip
exactly through JSON's shortest-repr encoding.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.utils.serialization import (
    SerializationError,
    load_payload,
    save_payload,
)
from repro.utils.validation import require

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "LoopCheckpointer",
]

#: Snapshot layout version; bumped on incompatible state-dict changes.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A snapshot failed validation (version/tag/step mismatch, bad file)."""


class CheckpointManager:
    """A directory of versioned, atomically-written snapshots for one tag."""

    def __init__(self, directory: str | os.PathLike, tag: str = "ckpt") -> None:
        require(bool(tag), "checkpoint tag must be non-empty")
        require(
            re.fullmatch(r"[A-Za-z0-9._-]+", tag) is not None,
            f"checkpoint tag {tag!r} must be filesystem-safe",
        )
        self.directory = Path(directory)
        self.tag = tag
        self.directory.mkdir(parents=True, exist_ok=True)
        self._pattern = re.compile(rf"^{re.escape(tag)}-(\d+)\.npz$")

    def path(self, step: int) -> Path:
        return self.directory / f"{self.tag}-{int(step):08d}.npz"

    def steps(self) -> list[int]:
        """Snapshot steps present on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            m = self._pattern.match(entry.name)
            if m:
                found.append(int(m.group(1)))
        return sorted(found)

    def save(self, step: int, state: dict, *, keep_last: int = 0) -> Path:
        """Write the snapshot for ``step``; optionally prune older ones."""
        require(step >= 0, f"step must be >= 0, got {step}")
        path = self.path(step)
        save_payload(
            path,
            {
                "format": CHECKPOINT_FORMAT_VERSION,
                "tag": self.tag,
                "step": int(step),
                "state": state,
            },
        )
        if keep_last > 0:
            self.prune(keep_last)
        return path

    def load(self, step: int) -> dict:
        """Read and validate the snapshot for ``step``; returns the state."""
        path = self.path(step)
        if not path.exists():
            raise CheckpointError(f"no snapshot for step {step} under {path}")
        try:
            payload = load_payload(path)
        except SerializationError as exc:
            raise CheckpointError(f"{path}: unreadable snapshot ({exc})") from exc
        if payload.get("format") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: snapshot format {payload.get('format')!r} not "
                f"supported (expected {CHECKPOINT_FORMAT_VERSION})"
            )
        if payload.get("tag") != self.tag or payload.get("step") != step:
            raise CheckpointError(
                f"{path}: tag/step mismatch "
                f"({payload.get('tag')!r}@{payload.get('step')!r})"
            )
        return payload["state"]

    def latest(self) -> tuple[int, dict] | None:
        """The newest complete snapshot as ``(step, state)``, or None."""
        steps = self.steps()
        while steps:
            step = steps.pop()
            try:
                return step, self.load(step)
            except CheckpointError:  # half-written leftovers never win
                continue
        return None

    def prune(self, keep_last: int) -> None:
        """Delete all but the newest ``keep_last`` snapshots."""
        require(keep_last >= 1, "keep_last must be >= 1")
        for step in self.steps()[:-keep_last]:
            try:
                self.path(step).unlink()
            except FileNotFoundError:  # concurrent pruner already got it
                pass

    def clear(self) -> None:
        for step in self.steps():
            try:
                self.path(step).unlink()
            except FileNotFoundError:
                pass


class LoopCheckpointer:
    """What an iterative loop holds: manager + interval + restart + faults.

    Parameters
    ----------
    manager:
        The underlying snapshot store.
    every:
        Snapshot every ``every``-th iteration (iteration numbers divisible
        by ``every`` are saved; the loop's own numbering starts at 1 for
        SCF/LOBPCG, at 0 for the staged ISDF pipeline where every stage is
        saved regardless).
    restart:
        When True, :meth:`resume` returns the latest snapshot so the loop
        can continue from it; when False the loop starts fresh (existing
        snapshots are overwritten as the run progresses).
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; its
        ``kill_loop`` faults fire *after* a snapshot is written.
    keep_last:
        Prune to the newest ``keep_last`` snapshots on save (0 = keep all).
    """

    def __init__(
        self,
        manager: CheckpointManager,
        *,
        every: int = 1,
        restart: bool = False,
        injector=None,
        keep_last: int = 0,
    ) -> None:
        require(every >= 1, f"checkpoint interval must be >= 1, got {every}")
        self.manager = manager
        self.every = every
        self.restart = restart
        self.injector = injector
        self.keep_last = keep_last

    @property
    def tag(self) -> str:
        return self.manager.tag

    def resume(self) -> tuple[int, dict] | None:
        """Latest ``(step, state)`` when restarting, else None."""
        if not self.restart:
            return None
        return self.manager.latest()

    def save(self, step: int, state: dict, *, force: bool = False) -> None:
        """Snapshot ``step`` (subject to the interval), then maybe crash.

        The injected ``kill_loop`` fault is checked even on skipped
        intervals — a crash does not wait for a snapshot boundary.
        """
        if force or step % self.every == 0:
            self.manager.save(step, state, keep_last=self.keep_last)
        if self.injector is not None:
            self.injector.on_loop_step(self.manager.tag, step)
