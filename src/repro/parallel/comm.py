"""The SPMD communicator: MPI-style collectives over threads.

Semantics follow mpi4py's lowercase (object) API: values are exchanged by
reference through a shared slot board, synchronized with barriers.  Two
properties matter for the reproduction:

* **Determinism** — reductions combine contributions in rank order with the
  same operation tree on every rank, so a distributed run is bit-identical
  to its serial counterpart up to the documented GEMM-partitioning
  differences.
* **Traffic tracing** — every collective records the bytes it would move on
  a real network (standard volume conventions, noted per method), which the
  test-suite checks against the cost model's communication terms.

Failure handling: if any rank raises, the executor aborts the shared
barrier and every other rank raises :class:`SpmdAbort` instead of
deadlocking.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require


class SpmdAbort(RuntimeError):
    """Raised on surviving ranks after another rank failed."""


class MessageTimeout(RuntimeError):
    """A point-to-point receive waited past its deadline.

    Raised instead of the queue's anonymous ``Empty`` so retry policies
    (:mod:`repro.resilience.policies`) can treat lost messages as a
    typed, retryable condition.
    """


@dataclass
class CommTraffic:
    """Accumulated communication volume (bytes) per collective type.

    ``bytes_by_op`` counts *logical* traffic — what a real network would
    move — with identical conventions on every backend, so thread and
    process runs report the same totals.  The process backend additionally
    fills the transport counters: ``shm_bytes_by_op`` (payload bytes that
    travelled through shared-memory slabs as zero-copy views) and
    ``pickled_bytes_by_op`` (descriptor/object bytes that crossed a pipe).

    Instances are picklable (the lock is dropped and re-created), and
    per-process traces combine with :meth:`merge` on run exit.
    """

    bytes_by_op: dict[str, int] = field(default_factory=dict)
    calls_by_op: dict[str, int] = field(default_factory=dict)
    shm_bytes_by_op: dict[str, int] = field(default_factory=dict)
    pickled_bytes_by_op: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, op: str, nbytes: int) -> None:
        with self._lock:
            self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + int(nbytes)
            self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1

    def record_transport(
        self, op: str, *, shm_bytes: int = 0, pickled_bytes: int = 0
    ) -> None:
        """Attribute transport-level bytes (process backend only)."""
        with self._lock:
            if shm_bytes:
                self.shm_bytes_by_op[op] = (
                    self.shm_bytes_by_op.get(op, 0) + int(shm_bytes)
                )
            if pickled_bytes:
                self.pickled_bytes_by_op[op] = (
                    self.pickled_bytes_by_op.get(op, 0) + int(pickled_bytes)
                )

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_op.values())

    @property
    def zero_copy_bytes(self) -> int:
        """Bytes that moved between ranks as shared-memory views."""
        return sum(self.shm_bytes_by_op.values())

    @property
    def pickled_bytes(self) -> int:
        """Bytes that were serialized through a pipe."""
        return sum(self.pickled_bytes_by_op.values())

    def merge(self, other: "CommTraffic") -> "CommTraffic":
        """Fold another (quiescent) trace into this one; returns self."""
        with self._lock:
            for mine, theirs in (
                (self.bytes_by_op, other.bytes_by_op),
                (self.calls_by_op, other.calls_by_op),
                (self.shm_bytes_by_op, other.shm_bytes_by_op),
                (self.pickled_bytes_by_op, other.pickled_bytes_by_op),
            ):
                for op, count in theirs.items():
                    mine[op] = mine.get(op, 0) + count
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def summary(self) -> str:
        lines = [
            f"{op:<12s} {self.calls_by_op[op]:6d} calls  {nbytes/1e6:12.3f} MB"
            for op, nbytes in sorted(self.bytes_by_op.items())
        ]
        if self.zero_copy_bytes or self.pickled_bytes:
            lines.append(
                f"transport: {self.zero_copy_bytes/1e6:.3f} MB zero-copy (shm), "
                f"{self.pickled_bytes/1e6:.3f} MB pickled"
            )
        return "\n".join(lines)


def _nbytes(value) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (list, tuple)):
        return sum(_nbytes(v) for v in value)
    if isinstance(value, (int, float, complex, bool, np.generic)):
        return 8
    return 64  # conservative default for small python objects


class _ReduceBoard:
    """Posted-contribution board backing the thread backend's ``ireduce``.

    Contributions are *copied* at post time, so the caller may immediately
    reuse its buffer — the property that lets the pipelined GEMM proceed
    to the next block while a reduce is conceptually in flight.  Entries
    are keyed ``(root, seq)`` with a per-rank per-root sequence number, so
    repeated pipelines never collide.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._cond = threading.Condition()
        self._entries: dict[tuple[int, int], list] = {}

    def post(self, key: tuple[int, int], rank: int, contribution) -> None:
        with self._cond:
            entry = self._entries.get(key)
            if entry is None:
                entry = [None] * self._size
                self._entries[key] = entry
            entry[rank] = contribution
            self._cond.notify_all()

    def wait(self, key: tuple[int, int], shared: "_SharedState") -> list:
        """Block until every rank posted ``key``; pops and returns the
        contributions in rank order.  Unwinds with :class:`SpmdAbort` if
        the run was aborted while waiting."""
        with self._cond:
            while True:
                entry = self._entries.get(key)
                if entry is not None and all(c is not None for c in entry):
                    return self._entries.pop(key)
                if shared.error is not None:
                    raise SpmdAbort(
                        f"ireduce wait aborted: another rank failed "
                        f"({shared.error!r})"
                    )
                self._cond.wait(timeout=0.05)


class ReduceHandle:
    """Completion handle of :meth:`Communicator.ireduce`.

    ``wait()`` returns the rank-order combined array on the root and
    ``None`` elsewhere (matching blocking ``reduce``).  It may be called
    once; the contribution itself was already captured at post time, so
    posting ranks never block.
    """

    def __init__(self, result=None, waiter=None) -> None:
        self._result = result
        self._waiter = waiter
        self._done = waiter is None

    def wait(self):
        if not self._done:
            self._result = self._waiter()
            self._waiter = None
            self._done = True
        return self._result


class _SharedState:
    """State shared by all ranks of one SPMD run."""

    def __init__(self, size: int, fault_injector=None, sanitizer=None) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list = [None] * size
        self.queues = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }
        self.reduce_board = _ReduceBoard(size)
        self.traffic = CommTraffic()
        self.error: BaseException | None = None
        self.error_lock = threading.Lock()
        #: Optional repro.resilience.faults.FaultInjector (duck-typed so the
        #: comm layer stays independent of the resilience package).
        self.fault_injector = fault_injector
        #: Optional repro.parallel.sanitizer.SpmdSanitizer (duck-typed for
        #: the same reason); consulted at the entry of every collective.
        self.sanitizer = sanitizer

    def abort(self, exc: BaseException) -> None:
        with self.error_lock:
            if self.error is None:
                self.error = exc
        self.barrier.abort()
        if self.sanitizer is not None:
            self.sanitizer.abort()


class Communicator:
    """Per-rank handle onto the shared SPMD state."""

    def __init__(self, rank: int, shared: _SharedState) -> None:
        self._rank = rank
        self._shared = shared
        #: per-root sequence numbers for ireduce (identical on every rank
        #: because SPMD programs post in identical order).
        self._ireduce_seq: dict[int, int] = {}

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._shared.size

    @property
    def traffic(self) -> CommTraffic:
        return self._shared.traffic

    # -- fault-injection / sanitizer hooks -----------------------------------

    def _enter(self, op: str, value=None, detail: str = "", track: bool = True) -> None:
        """Collective entry point: fault injection, then sanitizer checks.

        The injector runs first so a killed rank never reaches the
        sanitizer's sync (its peers then unwind through the abort path
        rather than diagnosing a phantom mismatch).  ``track=False``
        exempts the payload from the sanitizer's shared-write tracking —
        used by :meth:`ireduce`, which copies its contribution at post
        time, making later mutation of the caller's buffer legal.
        """
        injector = self._shared.fault_injector
        if injector is not None:
            injector.on_collective(self._rank, op)
        sanitizer = self._shared.sanitizer
        if sanitizer is not None:
            sanitizer.on_collective(self._rank, op, value, detail=detail, track=track)

    def _fault_corrupt(self, op: str, value):
        """Give the injector a chance to poison a reduce contribution."""
        injector = self._shared.fault_injector
        if injector is not None:
            return injector.corrupt_value(self._rank, op, value)
        return value

    # -- synchronization ---------------------------------------------------

    def barrier(self) -> None:
        self._enter("barrier")
        self._barrier_wait()

    def _barrier_wait(self) -> None:
        """Raw shared-barrier wait (no hooks — used inside collectives)."""
        try:
            self._shared.barrier.wait()
        except threading.BrokenBarrierError:
            raise SpmdAbort(
                f"rank {self._rank}: another rank failed "
                f"({self._shared.error!r})"
            ) from None

    def _post(self, value):
        """Deposit + first barrier; returns the snapshot for *reading only*.

        The snapshot is valid until :meth:`_complete` — the process
        backend hands out zero-copy shared-memory views here, which the
        reducing collectives consume (rank-ordered combine) inside the
        post/complete window.
        """
        self._shared.slots[self._rank] = value
        self._barrier_wait()
        return list(self._shared.slots)

    def _complete(self) -> None:
        """Second barrier: nobody overwrites slots before everyone has read."""
        self._barrier_wait()

    def _exchange(self, value):
        """All-to-all slot exchange: every rank deposits, every rank reads.

        Unlike :meth:`_post`, the returned snapshot stays valid after the
        exchange (the process backend materializes copies here)."""
        snapshot = self._post(value)
        self._complete()
        return snapshot

    # -- collectives ---------------------------------------------------------

    def bcast(self, value, root: int = 0):
        """Broadcast from ``root``; traffic = payload once per receiver."""
        self._enter("bcast", value, detail=f"root={root}")
        snapshot = self._exchange(value if self._rank == root else None)
        result = snapshot[root]
        if self._rank == root:
            self.traffic.record("bcast", _nbytes(value) * (self.size - 1))
        return result

    def gather(self, value, root: int = 0):
        self._enter("gather", value, detail=f"root={root}")
        snapshot = self._exchange(value)
        if self._rank == root:
            self.traffic.record(
                "gather", sum(_nbytes(v) for i, v in enumerate(snapshot) if i != root)
            )
            return snapshot
        return None

    def allgather(self, value):
        self._enter("allgather", value)
        snapshot = self._exchange(value)
        if self._rank == 0:
            total = sum(_nbytes(v) for v in snapshot)
            self.traffic.record("allgather", total * (self.size - 1))
        return snapshot

    def scatter(self, values, root: int = 0):
        self._enter("scatter", values, detail=f"root={root}")
        if self._rank == root:
            require(
                values is not None and len(values) == self.size,
                f"scatter needs {self.size} values at root",
            )
        snapshot = self._exchange(values if self._rank == root else None)
        chunk = snapshot[root][self._rank]
        if self._rank == root:
            self.traffic.record(
                "scatter",
                sum(_nbytes(v) for i, v in enumerate(snapshot[root]) if i != root),
            )
        return chunk

    @staticmethod
    def _combine(values, op: str):
        if op == "sum":
            result = values[0]
            for v in values[1:]:  # rank order: deterministic
                result = result + v
            return result
        if op == "max":
            result = values[0]
            for v in values[1:]:
                result = np.maximum(result, v)
            return result
        if op == "min":
            result = values[0]
            for v in values[1:]:
                result = np.minimum(result, v)
            return result
        raise ValueError(f"unknown reduction op {op!r}")

    @staticmethod
    def _combine_sum_accumulate(values, dtype) -> np.ndarray:
        """Rank-ordered sum with an explicit accumulation dtype.

        The wire half of the mixed-precision reduce: contributions arrive
        in the (possibly narrower) wire dtype; the root accumulates into a
        fresh ``dtype`` buffer in rank order, upcasting each contribution
        as it is added.  Both SPMD backends funnel through this one
        expression, so their results are bit-identical by construction.
        ``astype`` always copies, which also detaches the result from any
        zero-copy shared-memory view in ``values[0]``.
        """
        result = values[0].astype(dtype)
        for v in values[1:]:  # rank order: deterministic
            result += v
        return result

    def reduce(self, value, root: int = 0, op: str = "sum"):
        """Reduce to ``root``; traffic = one payload per non-root rank."""
        self._enter("reduce", value, detail=f"root={root},op={op}")
        value = self._fault_corrupt("reduce", value)
        snapshot = self._post(value)
        result = self._combine(snapshot, op) if self._rank == root else None
        self._complete()
        if self._rank == root:
            self.traffic.record("reduce", _nbytes(value) * (self.size - 1))
            return result
        return None

    def allreduce(self, value, op: str = "sum"):
        """Allreduce; traffic per rank = 2 (P-1)/P payload (ring convention)."""
        self._enter("allreduce", value, detail=f"op={op}")
        value = self._fault_corrupt("allreduce", value)
        snapshot = self._post(value)
        result = self._combine(snapshot, op)
        self._complete()
        if self._rank == 0:
            vol = int(2 * (self.size - 1) / self.size * _nbytes(value) * self.size)
            self.traffic.record("allreduce", vol)
        return result

    def ireduce(
        self,
        value: np.ndarray,
        root: int = 0,
        *,
        wire_dtype=None,
    ) -> ReduceHandle:
        """Nonblocking rank-ordered sum-reduce of an ndarray to ``root``.

        The contribution is copied at post time, so the caller may reuse
        (or mutate) its buffer immediately — this is what gives the
        pipelined GEMM+Reduce genuine compute/comm overlap on the process
        backend: the next block's GEMM proceeds while the previous
        block's combine is in flight on the owning rank.  ``wait()`` on
        the returned handle yields the combined array on ``root`` and
        ``None`` elsewhere; results are bit-identical to blocking
        :meth:`reduce` (same rank-ordered combine tree).

        ``wire_dtype`` decouples the dtype *on the wire* from the dtype of
        the accumulation: when given (``numpy.float32`` under the mixed-
        precision wire policy), each contribution is cast to that dtype at
        post time — halving the bytes every transport sees — and the root
        accumulates the rank-ordered sum into a buffer of the original
        dtype (:meth:`_combine_sum_accumulate`).  Both SPMD backends use
        the same post-cast + accumulate expressions, so their results stay
        bit-identical to each other in every mode.
        """
        require(
            isinstance(value, np.ndarray),
            f"ireduce payload must be an ndarray, got {type(value).__name__}",
        )
        self._enter("reduce", value, detail=f"root={root},op=sum,async", track=False)
        value = self._fault_corrupt("reduce", value)
        seq = self._ireduce_seq.get(root, 0)
        self._ireduce_seq[root] = seq + 1
        if wire_dtype is None:
            contribution = np.array(value)
            accumulate = None
        else:
            accumulate = value.dtype
            contribution = np.array(value, dtype=wire_dtype)
        key = (root, seq)
        self._shared.reduce_board.post(key, self._rank, contribution)
        if self._rank != root:
            return ReduceHandle(None)
        self.traffic.record("reduce", contribution.nbytes * (self.size - 1))
        board, shared = self._shared.reduce_board, self._shared
        if accumulate is None:
            return ReduceHandle(
                waiter=lambda: self._combine(board.wait(key, shared), "sum")
            )
        return ReduceHandle(
            waiter=lambda: self._combine_sum_accumulate(
                board.wait(key, shared), accumulate
            )
        )

    def alltoall(self, chunks):
        """Personalized all-to-all: ``chunks[d]`` goes to rank ``d``."""
        self._enter("alltoall", chunks)
        require(
            len(chunks) == self.size,
            f"alltoall needs {self.size} chunks, got {len(chunks)}",
        )
        snapshot = self._exchange(chunks)
        received = [snapshot[src][self._rank] for src in range(self.size)]
        moved = sum(
            _nbytes(chunks[d]) for d in range(self.size) if d != self._rank
        )
        self.traffic.record("alltoall", moved)
        return received

    # -- point to point ------------------------------------------------------

    def send(self, value, dest: int, tag: int = 0) -> None:
        require(0 <= dest < self.size, f"bad destination {dest}")
        injector = self._shared.fault_injector
        if injector is not None:
            spec = injector.on_send(self._rank, dest, tag=tag)
            if spec is not None and spec.kind == "drop_message":
                self.traffic.record("p2p_dropped", _nbytes(value))
                return  # the network ate it
            if spec is not None and spec.kind == "delay_message":
                time.sleep(spec.delay)
        self.traffic.record("p2p", _nbytes(value))
        self._shared.queues[(self._rank, dest)].put((tag, value))

    def recv(
        self,
        source: int,
        tag: int = 0,
        *,
        timeout: float = 60.0,
        strict_tags: bool = True,
    ):
        """Blocking receive; raises :class:`MessageTimeout` on expiry.

        With ``strict_tags`` (the default) an arrival carrying a different
        tag is a programming error and raises ``ValueError``.  The
        reliable-delivery layer passes ``strict_tags=False`` so stale
        duplicates from resent messages are buffered and re-queued instead
        of poisoning the channel.
        """
        require(0 <= source < self.size, f"bad source {source}")
        chan = self._shared.queues[(source, self._rank)]
        deadline = time.monotonic() + timeout
        stashed: list = []
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise MessageTimeout(
                        f"rank {self._rank}: no message with tag {tag} from "
                        f"rank {source} within {timeout:g}s"
                    )
                try:
                    got_tag, value = chan.get(timeout=remaining)
                except queue.Empty:
                    raise MessageTimeout(
                        f"rank {self._rank}: no message with tag {tag} from "
                        f"rank {source} within {timeout:g}s"
                    ) from None
                if got_tag == tag:
                    return value
                if strict_tags:
                    raise ValueError(
                        f"rank {self._rank}: tag mismatch from rank {source} "
                        f"(expected {tag}, got {got_tag})"
                    )
                stashed.append((got_tag, value))
        finally:
            for item in stashed:
                chan.put(item)
