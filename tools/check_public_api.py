#!/usr/bin/env python
"""Snapshot test for the exported public surfaces (``repro.api``, ``repro.serve``).

Describes every name in each tracked module's ``__all__`` — kind, dataclass
fields with default reprs, callable signatures, and public method
signatures on classes (the job-server client surface: ``submit`` /
``result`` / ``cancel`` / ...) — and diffs the description against the
committed manifest ``tools/public_api_manifest.json``.  An unreviewed
change to a public surface — removed export, changed default, changed
signature — shows up as a diff and fails CI.

Usage::

    python tools/check_public_api.py            # verify (exit 1 on drift)
    python tools/check_public_api.py --update   # re-bless the manifest
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
MANIFEST_PATH = os.path.join(_TOOLS_DIR, "public_api_manifest.json")
_SRC_DIR = os.path.join(os.path.dirname(_TOOLS_DIR), "src")

#: Modules whose exported surface is snapshot-tested.
TRACKED_MODULES = ("repro.api", "repro.serve")


def _field_default(f: dataclasses.Field) -> str:
    if f.default is not dataclasses.MISSING:
        return repr(f.default)
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return "<factory>"
    return "<required>"


def _public_methods(cls) -> dict[str, str]:
    """Signatures of the class's public methods (incl. classmethods)."""
    methods: dict[str, str] = {}
    for name, member in inspect.getmembers(cls, inspect.isroutine):
        if name.startswith("_"):
            continue
        try:
            methods[name] = str(inspect.signature(member))
        except (ValueError, TypeError):  # pragma: no cover - builtins
            methods[name] = "<unknown>"
    return methods


def describe_api(module_name: str = "repro.api") -> dict:
    """A JSON-able description of the module's exported surface."""
    if _SRC_DIR not in sys.path:
        sys.path.insert(0, _SRC_DIR)
    api = importlib.import_module(module_name)
    surface: dict[str, dict] = {}
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj) and dataclasses.is_dataclass(obj):
            surface[name] = {
                "kind": "dataclass",
                "fields": {
                    f.name: _field_default(f) for f in dataclasses.fields(obj)
                },
                "methods": _public_methods(obj),
            }
        elif inspect.isclass(obj):
            surface[name] = {"kind": "class", "methods": _public_methods(obj)}
        elif callable(obj):
            surface[name] = {
                "kind": "function",
                "signature": str(inspect.signature(obj)),
            }
        else:
            surface[name] = {"kind": type(obj).__name__}
    return surface


def describe_all() -> dict:
    """Per-module surface descriptions for every tracked module."""
    return {module: describe_api(module) for module in TRACKED_MODULES}


def diff_surfaces(expected: dict, actual: dict) -> list[str]:
    """Human-readable drift lines (empty = surfaces match)."""
    problems: list[str] = []
    for name in sorted(set(expected) - set(actual)):
        problems.append(f"removed export: {name}")
    for name in sorted(set(actual) - set(expected)):
        problems.append(f"new unblessed export: {name}")
    for name in sorted(set(expected) & set(actual)):
        if expected[name] != actual[name]:
            problems.append(
                f"changed: {name}\n  manifest: {expected[name]}\n"
                f"  current:  {actual[name]}"
            )
    return problems


def check(manifest_path: str | None = None) -> list[str]:
    """Drift lines between the committed manifest and the live surfaces."""
    manifest_path = manifest_path or MANIFEST_PATH
    if not os.path.exists(manifest_path):
        return [f"manifest missing: {manifest_path} (run with --update)"]
    with open(manifest_path) as fh:
        expected = json.load(fh)
    actual = describe_all()
    problems: list[str] = []
    for module in sorted(set(expected) | set(actual)):
        if module not in actual:
            problems.append(f"manifest tracks unknown module: {module}")
            continue
        if module not in expected:
            problems.append(f"untracked module in surface: {module}")
            continue
        problems.extend(
            f"{module}: {line}"
            for line in diff_surfaces(expected[module], actual[module])
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the manifest from the current surface",
    )
    args = parser.parse_args(argv)
    if args.update:
        surface = describe_all()
        with open(MANIFEST_PATH, "w") as fh:
            json.dump(surface, fh, indent=2, sort_keys=True)
            fh.write("\n")
        count = sum(len(v) for v in surface.values())
        print(
            f"wrote {MANIFEST_PATH} ({count} exports across "
            f"{len(surface)} modules)"
        )
        return 0
    problems = check()
    if problems:
        print("public API drift detected:")
        for p in problems:
            print(f"- {p}")
        print("\nif intentional, re-bless with: python tools/check_public_api.py --update")
        return 1
    print("public API matches the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
