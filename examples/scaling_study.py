#!/usr/bin/env python
"""Parallel execution + scaling study (paper Sections 5-6).

Part 1 runs the *actual distributed algorithms* on virtual SPMD ranks:
Algorithm 1's transpose/FFT/GEMM/Allreduce pipeline and the distributed
K-Means, verifying rank-count invariance and reporting measured
communication volumes.

Part 2 uses the Cori-calibrated cost model to regenerate the paper's
scaling results at full scale: Figure 7 (strong scaling, Si_1000,
128-2,048 cores), the Section 6.4 weak-scaling series and the Si_4096
runs on up to 12,288 cores.

    python examples/scaling_study.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import bulk_silicon, synthetic_ground_state
from repro.core import HxcKernel, build_vhxc
from repro.data.calibration import (
    CALIBRATED_SPEC,
    STRONG_SCALING_CORES,
    WEAK_SCALING_CORES,
    paper_workload,
)
from repro.data.paper_reference import PAPER_SI4096_STRONG, PAPER_WEAK_SCALING
from repro.parallel import BlockDistribution1D, distributed_build_vhxc, spmd_run
from repro.perf import (
    parallel_efficiency,
    predict_version_time,
    strong_scaling_series,
)


def part1_real_spmd() -> None:
    print("=== Part 1: real SPMD execution of Algorithm 1 ===")
    gs = synthetic_ground_state(
        bulk_silicon(8), ecut=6.0, n_valence=12, n_conduction=8, seed=3
    )
    psi_v, _, psi_c, _ = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    t0 = time.perf_counter()
    serial = build_vhxc(psi_v, psi_c, kernel)
    t_serial = time.perf_counter() - t0
    print(f"serial V_Hxc build ({gs.basis.n_r} grid points, "
          f"{psi_v.shape[0] * psi_c.shape[0]} pairs): {t_serial:.3f} s")

    print(f"{'ranks':>6s} {'time':>8s} {'max |err|':>10s} {'alltoall MB':>12s}")
    for n_ranks in (1, 2, 4, 8):
        dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            return distributed_build_vhxc(
                comm, psi_v[:, sl], psi_c[:, sl], kernel, dist
            )

        t0 = time.perf_counter()
        results, traffic = spmd_run(n_ranks, prog, return_traffic=True)
        elapsed = time.perf_counter() - t0
        err = max(np.abs(r - serial).max() for r in results)
        mb = traffic.bytes_by_op.get("alltoall", 0) / 1e6
        print(f"{n_ranks:6d} {elapsed:7.3f}s {err:10.2e} {mb:12.2f}")
    print("(distributed result identical to serial at every rank count)")


def part2_cost_model() -> None:
    print("\n=== Part 2: Cori-scale predictions (calibrated cost model) ===")

    print("\nFigure 7 — strong scaling, Si_1000:")
    w = paper_workload(1000)
    cores = list(STRONG_SCALING_CORES)
    header = f"{'version':<30s}" + "".join(f"{c:>9d}" for c in cores)
    print(header + f"{'eff@2048':>10s}")
    for version in ("naive", "kmeans-isdf", "implicit-kmeans-isdf-lobpcg"):
        series = strong_scaling_series(version, w, cores, CALIBRATED_SPEC)
        effs = parallel_efficiency(series, cores)
        row = "".join(f"{t.total:8.2f}s" for t in series)
        print(f"{version:<30s}{row}{effs[-1]:9.0%}")

    print("\nSection 6.4 — weak scaling at 1,024 cores (optimized version):")
    print(f"{'system':<8s} {'model (s)':>10s} {'paper (s)':>10s} "
          f"{'model ratio':>12s} {'paper ratio':>12s}")
    base_model = None
    for label, t_paper in PAPER_WEAK_SCALING.items():
        w = paper_workload(int(label[2:]))
        t = predict_version_time(
            "implicit-kmeans-isdf-lobpcg", w, WEAK_SCALING_CORES, CALIBRATED_SPEC
        ).total
        base_model = base_model or t
        base_paper = PAPER_WEAK_SCALING["Si512"]
        print(f"{label:<8s} {t:10.2f} {t_paper:10.2f} "
              f"{t / base_model:12.2f} {t_paper / base_paper:12.2f}")

    print("\nSection 6.3 — Si_4096 at extreme scale:")
    w = paper_workload(4096)
    for cores, t_paper in PAPER_SI4096_STRONG.items():
        t = predict_version_time(
            "implicit-kmeans-isdf-lobpcg", w, cores, CALIBRATED_SPEC
        ).total
        print(f"  {cores:6d} cores: model {t:6.2f} s, paper {t_paper:6.2f} s")
    series = strong_scaling_series(
        "implicit-kmeans-isdf-lobpcg", w, [8192, 12288], CALIBRATED_SPEC
    )
    eff = parallel_efficiency(series, [8192, 12288])[1]
    print(f"  parallel efficiency 8,192 -> 12,288 cores: "
          f"model {eff:.1%}, paper 87.3%")


if __name__ == "__main__":
    part1_real_spmd()
    part2_cost_model()
