"""Tests for oscillator strengths and spectra."""

import numpy as np
import pytest

from repro.core import (
    LRTDDFTSolver,
    oscillator_strengths,
    transition_dipoles,
)
from repro.core.spectra import lorentzian_spectrum


@pytest.fixture(scope="module")
def water_excitations(water_ground_state):
    solver = LRTDDFTSolver(water_ground_state, seed=3)
    res = solver.solve("naive", n_excitations=8)
    dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
    return solver, res, dip


def test_dipole_shape(water_excitations):
    solver, _, dip = water_excitations
    assert dip.shape == (solver.n_pairs, 3)


def test_dipoles_finite_and_bounded(water_excitations):
    solver, _, dip = water_excitations
    assert np.all(np.isfinite(dip))
    # Bounded by the box half-diagonal.
    box = solver.basis.cell.lengths.max()
    assert np.abs(dip).max() < box


def test_oscillator_strengths_nonnegative(water_excitations):
    _, res, dip = water_excitations
    f = oscillator_strengths(res.energies, res.wavefunctions, dip)
    assert (f >= -1e-12).all()


def test_some_transition_is_bright(water_excitations):
    _, res, dip = water_excitations
    f = oscillator_strengths(res.energies, res.wavefunctions, dip)
    assert f.max() > 1e-4


def test_strength_shape_mismatch_rejected(water_excitations):
    _, res, dip = water_excitations
    with pytest.raises(ValueError):
        oscillator_strengths(res.energies, res.wavefunctions[:-1], dip)


def test_lorentzian_spectrum_integrates_to_total_strength():
    energies = np.array([0.3, 0.5])
    strengths = np.array([1.0, 2.0])
    omega = np.linspace(0.0, 5.0, 20001)
    s = lorentzian_spectrum(energies, strengths, omega, broadening=0.01)
    integral = np.trapezoid(s, omega)
    assert integral == pytest.approx(3.0, rel=0.02)


def test_lorentzian_peaks_at_excitations():
    energies = np.array([0.4])
    omega = np.linspace(0.2, 0.6, 401)
    s = lorentzian_spectrum(energies, np.array([1.0]), omega, broadening=0.01)
    assert omega[np.argmax(s)] == pytest.approx(0.4, abs=1e-3)


def test_negative_broadening_rejected():
    with pytest.raises(ValueError):
        lorentzian_spectrum(np.array([0.1]), np.array([1.0]), np.linspace(0, 1, 10), -0.1)
