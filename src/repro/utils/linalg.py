"""Dense linear-algebra helpers shared by the eigensolvers and ISDF.

These are the numerical workhorses underneath LOBPCG (Algorithm 2 of the
paper): block orthonormalization with a Cholesky-QR fast path, Rayleigh-Ritz
projection, and error metrics used throughout the test-suite.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the Hermitian part ``(A + A^H) / 2`` of ``matrix``."""
    return 0.5 * (matrix + matrix.conj().T)


def orthonormalize(block: np.ndarray, *, b_block: np.ndarray | None = None) -> np.ndarray:
    """Orthonormalize the columns of ``block`` (optionally B-orthonormalize).

    Uses Cholesky-QR (one Gram matrix + one triangular solve, the standard
    communication-avoiding choice in parallel LOBPCG implementations); falls
    back to an eigendecomposition-based orthonormalization when the Gram
    matrix is numerically rank-deficient, dropping nothing but rescaling
    along near-null directions.

    Parameters
    ----------
    block:
        ``(n, k)`` array whose columns are to be orthonormalized.
    b_block:
        Optional ``B @ block`` for a metric ``B``; when given the result is
        B-orthonormal (``X^H B X = I``) which LOBPCG needs for generalized
        problems.

    Returns
    -------
    ``(n, k)`` array with (B-)orthonormal columns spanning the same space.
    """
    other = block if b_block is None else b_block
    gram = block.conj().T @ other
    gram = symmetrize(gram)
    try:
        chol = sla.cholesky(gram, lower=False)
        return sla.solve_triangular(chol, block.T, trans="T", lower=False).T
    except sla.LinAlgError:
        # Rank-deficient block: whiten through the eigendecomposition,
        # flooring tiny eigenvalues to keep the transform bounded.
        evals, evecs = sla.eigh(gram)
        floor = max(evals[-1], 1.0) * np.finfo(block.dtype).eps * gram.shape[0]
        evals = np.maximum(evals, floor)
        whitener = evecs / np.sqrt(evals)
        return block @ whitener


def orthonormalize_against(
    block: np.ndarray, basis: np.ndarray, *, reorthogonalize: bool = True
) -> np.ndarray:
    """Project ``basis`` out of ``block`` then orthonormalize the remainder.

    ``basis`` must itself have orthonormal columns.  Classical Gram-Schmidt
    with one reorthogonalization pass ("twice is enough", Kahan/Parlett).
    """
    projected = block - basis @ (basis.conj().T @ block)
    if reorthogonalize:
        projected -= basis @ (basis.conj().T @ projected)
    return orthonormalize(projected)


def rayleigh_ritz(
    subspace: np.ndarray,
    h_subspace: np.ndarray,
    *,
    nev: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the projected eigenproblem in a (not necessarily orthonormal) basis.

    Given ``S`` (columns spanning the trial subspace) and ``H S``, forms the
    projected pencil ``(S^H H S, S^H S)`` and returns the lowest ``nev``
    eigenvalues with their coefficient vectors ``C`` such that ``X = S C``.

    This is the key projection step of the paper's Algorithm 2:
    ``H_s = S_i^H H S_i`` followed by ``H_s C = C Theta``.
    """
    h_proj = symmetrize(subspace.conj().T @ h_subspace)
    s_proj = symmetrize(subspace.conj().T @ subspace)
    evals, coeffs = stable_generalized_eigh(h_proj, s_proj)
    if nev is not None:
        evals = evals[:nev]
        coeffs = coeffs[:, :nev]
    return evals, coeffs


def stable_generalized_eigh(
    a: np.ndarray, b: np.ndarray, *, cond_cut: float = 1e-12
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``A c = lambda B c`` robustly for possibly ill-conditioned ``B``.

    The LOBPCG basis ``[X, W, P]`` becomes nearly linearly dependent close to
    convergence, so a plain ``scipy.linalg.eigh(a, b)`` can fail.  We whiten
    with the eigendecomposition of ``B``, discarding directions whose
    eigenvalue is below ``cond_cut`` times the largest.
    """
    b_evals, b_evecs = sla.eigh(symmetrize(b))
    keep = b_evals > cond_cut * max(b_evals[-1], np.finfo(float).tiny)
    if not np.any(keep):
        raise np.linalg.LinAlgError("overlap matrix is numerically zero")
    whitener = b_evecs[:, keep] / np.sqrt(b_evals[keep])
    a_white = symmetrize(whitener.conj().T @ a @ whitener)
    evals, evecs = sla.eigh(a_white)
    return evals, whitener @ evecs


def relative_error(approx: np.ndarray | float, reference: np.ndarray | float) -> float:
    """``|approx - reference| / |reference|`` with a safe zero denominator."""
    approx_arr = np.asarray(approx, dtype=float)
    ref_arr = np.asarray(reference, dtype=float)
    denom = np.linalg.norm(ref_arr.ravel())
    if denom == 0.0:
        return float(np.linalg.norm(approx_arr.ravel()))
    return float(np.linalg.norm((approx_arr - ref_arr).ravel()) / denom)
