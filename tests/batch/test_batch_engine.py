"""End-to-end batch engine tests: equivalence, bit-identity, sharding.

Every test here runs real SCF + LR-TDDFT pipelines (small silicon frames
at a reduced cutoff), so the file carries the ``batch`` marker — deselect
with ``-m "not batch"`` for the fast loop.  The cold and warm trajectory
runs are module-scoped fixtures shared by the equivalence tests.
"""

import numpy as np
import pytest

from repro.api import BatchConfig, CalculationRequest, SCFConfig, TDDFTConfig, run_batch
from repro.batch import engine as batch_engine
from repro.atoms import silicon_primitive_cell
from repro.batch import perturbed_trajectory

pytestmark = pytest.mark.batch

N_FRAMES = 4
SCF_TOL = 1e-6
#: Documented warm-vs-cold equivalence bound (see docs/batching.md): both
#: passes stop at the same convergence threshold, so their answers may
#: legitimately differ by up to ~10x the SCF tolerance.
ENERGY_BOUND = 10.0 * SCF_TOL


def _config(**overrides):
    base = dict(
        scf=SCFConfig(ecut=6.0, n_bands=8, tol=SCF_TOL, seed=0),
        tddft=TDDFTConfig(n_excitations=3, seed=0),
    )
    base.update(overrides)
    return BatchConfig(**base)


@pytest.fixture(scope="module")
def trajectory():
    return perturbed_trajectory(
        silicon_primitive_cell(), N_FRAMES, amplitude=0.012, period=16.0, seed=7
    )


@pytest.fixture(scope="module")
def cold(trajectory):
    return run_batch(trajectory, _config(warm_start=False))


@pytest.fixture(scope="module")
def warm(trajectory):
    return run_batch(trajectory, _config())


class TestWarmColdEquivalence:
    def test_energies_within_documented_tolerance(self, cold, warm):
        delta = np.abs(warm.total_energies - cold.total_energies)
        assert delta.max() < ENERGY_BOUND, delta

    def test_excitations_within_documented_tolerance(self, cold, warm):
        delta = np.abs(warm.excitation_energies - cold.excitation_energies)
        assert delta.max() < ENERGY_BOUND, delta

    def test_frame0_bit_identical(self, cold, warm):
        """The warm chain has nothing to reuse on frame 0 — any deviation
        there means warm-start state is leaking where it must not."""
        assert warm.records[0].total_energy == cold.records[0].total_energy
        assert (
            warm.records[0].excitation_energies
            == cold.records[0].excitation_energies
        )
        assert not warm.records[0].warm

    def test_warm_frames_flagged_and_cheaper(self, cold, warm):
        assert all(r.warm for r in warm.records[1:])
        assert not any(r.warm for r in cold.records)
        cold_iters = sum(r.scf_iterations for r in cold.records[1:])
        warm_iters = sum(r.scf_iterations for r in warm.records[1:])
        assert warm_iters < cold_iters

    def test_interpolation_points_reused_under_drift(self, warm):
        reused = [r for r in warm.records if not r.isdf_reselected]
        assert reused, "drift check never allowed interpolation-point reuse"
        assert all(r.kmeans_iterations == 0 for r in reused)
        # Frame 0 always selects from scratch.
        assert warm.records[0].isdf_reselected

    def test_all_converged(self, cold, warm):
        for batch in (cold, warm):
            assert all(r.scf_converged for r in batch.records)
            assert all(r.tddft_converged for r in batch.records)


class TestDeterminismAndReplay:
    def test_cold_rerun_bit_identical(self, trajectory, cold):
        again = run_batch(trajectory[:2], _config(warm_start=False))
        for a, b in zip(again.records, cold.records[:2]):
            assert a.total_energy == b.total_energy
            assert a.excitation_energies == b.excitation_energies
            assert a.scf_iterations == b.scf_iterations

    def test_identical_frames_replayed(self, trajectory):
        cells = [trajectory[0], trajectory[1], trajectory[0]]
        seen = []
        result = run_batch(
            cells, _config(), on_result=lambda f: seen.append(f.record.index)
        )
        assert seen == [0, 1, 2]
        replay = result.records[2]
        assert replay.reused_identical
        assert replay.total_energy == result.records[0].total_energy
        assert replay.excitation_energies == result.records[0].excitation_energies
        assert replay.scf_iterations == 0
        assert replay.kmeans_iterations == 0
        assert replay.seconds == 0.0
        # The replay is a bookkeeping copy, not a new calculation.
        assert result.results[2].ground_state is result.results[0].ground_state

    def test_store_results_false_strips_objects(self, trajectory):
        result = run_batch(
            trajectory[:1], _config(store_results=False, warm_start=False)
        )
        assert result.results[0].ground_state is None
        assert result.results[0].tddft is None
        assert result.records[0].total_energy != 0.0


class TestSharding:
    @pytest.fixture(scope="class")
    def sharded_thread(self, trajectory):
        return run_batch(
            trajectory, _config(n_ranks=2, spmd_backend="thread")
        )

    def test_contiguous_chunks_with_cold_heads(self, sharded_thread):
        ranks = [r.rank for r in sharded_thread.records]
        assert ranks == [0, 0, 1, 1]
        # Each rank's first frame starts a fresh warm chain.
        assert not sharded_thread.records[0].warm
        assert sharded_thread.records[1].warm
        assert not sharded_thread.records[2].warm
        assert sharded_thread.records[3].warm

    def test_sharded_matches_serial_within_tolerance(self, sharded_thread, cold):
        delta = np.abs(sharded_thread.total_energies - cold.total_energies)
        assert delta.max() < ENERGY_BOUND

    @pytest.mark.process_backend
    def test_thread_and_process_backends_identical(self, trajectory, sharded_thread):
        """Results cross the rank boundary serialized on *both* backends, so
        the two backends must return byte-for-byte the same records."""
        sharded_process = run_batch(
            trajectory, _config(n_ranks=2, spmd_backend="process")
        )
        np.testing.assert_array_equal(
            sharded_process.total_energies, sharded_thread.total_energies
        )
        np.testing.assert_array_equal(
            sharded_process.excitation_energies,
            sharded_thread.excitation_energies,
        )
        def strip_times(record):
            payload = record.to_dict()
            del payload["seconds_scf"], payload["seconds_tddft"]
            return payload

        assert [strip_times(r) for r in sharded_process.records] == [
            strip_times(r) for r in sharded_thread.records
        ]


class TestSeededBatch:
    """A cached ground state can seed the warm chain's cold head."""

    @pytest.fixture(scope="class")
    def seed(self, trajectory):
        request = CalculationRequest(
            kind="scf",
            structure=trajectory[0],
            scf=SCFConfig(ecut=6.0, n_bands=8, tol=SCF_TOL, seed=0),
        )
        return request.compute()

    def test_seed_warms_frame0(self, trajectory, warm, seed):
        seeded = batch_engine.run_batch(
            trajectory, _config(), seed_ground_state=seed
        )
        # The unseeded run's frame 0 is a cold head; the seeded run's is not.
        assert not warm.records[0].warm
        assert seeded.records[0].warm
        assert (
            seeded.records[0].scf_iterations < warm.records[0].scf_iterations
        )
        delta = np.abs(seeded.total_energies - warm.total_energies)
        assert delta.max() < ENERGY_BOUND

    def test_seed_respects_warm_start_switch(self, trajectory, seed):
        seeded_cold = batch_engine.run_batch(
            trajectory[:2], _config(warm_start=False), seed_ground_state=seed
        )
        assert not any(r.warm for r in seeded_cold.records)

    def test_seed_crosses_the_spmd_boundary(self, trajectory, seed):
        sharded = batch_engine.run_batch(
            trajectory,
            _config(n_ranks=2, spmd_backend="thread"),
            seed_ground_state=seed,
        )
        # Rank 0's head frame is seeded; rank 1's still starts cold.
        assert sharded.records[0].warm
        assert not sharded.records[2].warm
