"""Paper Table 5: excitation-energy accuracy of the optimized solvers.

The paper compares Quantum Espresso (trusted reference), its naive
LR-TDDFT and its ISDF-LOBPCG code on the three lowest excitations of H2O
and bulk silicon, finding relative errors of 0.1-0.9% — "fairly
negligible".

Substitution (DESIGN.md): QE's role is played by a dense Casida solve over
the *full* computed transition space; the "LR-TDDFT" column is the naive
solver on the production-truncated transition space and "ISDF-LOBPCG" is
the implicit solver on the same space with a reduced ISDF rank — the same
two approximation layers whose error Table 5 quantifies.
"""

import numpy as np
import pytest

from repro.analysis import accuracy_table
from repro.analysis.accuracy import format_accuracy_table
from repro.core import LRTDDFTSolver
from repro.data import PAPER_TABLE5_H2O, PAPER_TABLE5_SI64


def _table5_run(ground_state, n_valence, n_conduction, n_mu_fraction, seed):
    reference = LRTDDFTSolver(ground_state, seed=seed).solve("naive")
    truncated = LRTDDFTSolver(
        ground_state, n_valence=n_valence, n_conduction=n_conduction, seed=seed
    )
    naive = truncated.solve("naive")
    n_mu = max(4, int(n_mu_fraction * truncated.n_pairs))
    implicit = truncated.solve(
        "implicit-kmeans-isdf-lobpcg",
        n_excitations=min(6, truncated.n_pairs),
        n_mu=n_mu, tol=1e-10,
    )
    return reference, naive, implicit


def _render(rows, paper_rows, title):
    text = format_accuracy_table(rows, title)
    lines = [text, "", "paper's Table 5 values for comparison:"]
    for ref, nai, isdf, d1, d2 in paper_rows:
        lines.append(
            f"{ref:12.6f} {nai:12.6f} {isdf:12.6f} {d1:9.3f} {d2:9.3f}"
        )
    return "\n".join(lines)


def test_table5_water(benchmark, water_real_state, save_table):
    reference, naive, implicit = benchmark.pedantic(
        lambda: _table5_run(water_real_state, 4, 4, 0.8, seed=5),
        rounds=1, iterations=1,
    )
    rows = accuracy_table(reference.energies, naive.energies, implicit.energies)
    save_table(
        "table5_h2o",
        _render(rows, PAPER_TABLE5_H2O,
                "H2O — three lowest excitation energies (Hartree)"),
    )
    for row in rows:
        # Paper band: fractions of a percent up to ~1%.
        assert abs(row.delta_e1) < 3.0
        assert abs(row.delta_e2) < 3.0
        # ISDF adds almost nothing on top of the truncation error.
        assert abs(row.delta_e2 - row.delta_e1) < 1.5


def test_table5_silicon(benchmark, si2_real_state, save_table):
    reference, naive, implicit = benchmark.pedantic(
        lambda: _table5_run(si2_real_state, 4, 6, 0.9, seed=6),
        rounds=1, iterations=1,
    )
    rows = accuracy_table(reference.energies, naive.energies, implicit.energies)
    save_table(
        "table5_si",
        _render(rows, PAPER_TABLE5_SI64,
                "Bulk silicon — three lowest excitation energies (Hartree)"),
    )
    for row in rows:
        assert abs(row.delta_e1) < 3.0
        assert abs(row.delta_e2) < 3.0


def test_isdf_error_negligible_at_production_rank(benchmark, si2_real_state):
    """The Delta_E2 - Delta_E1 gap (pure ISDF+LOBPCG error) at the paper's
    operating point is tiny: < 0.1% here, 0.001-0.002% in Table 5."""
    solver = LRTDDFTSolver(si2_real_state, seed=7)

    def run():
        dense = solver.solve("naive", n_excitations=3)
        implicit = solver.solve(
            "implicit-qrcp-isdf-lobpcg", n_excitations=3, tol=1e-10
        )
        return dense, implicit

    dense, implicit = benchmark.pedantic(run, rounds=1, iterations=1)
    rel = np.abs((implicit.energies - dense.energies[:3]) / dense.energies[:3])
    assert rel.max() < 1e-3
