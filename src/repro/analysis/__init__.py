"""Post-processing: densities of states, spectra statistics, accuracy."""

from repro.analysis.dos import density_of_states, excitation_dos
from repro.analysis.accuracy import AccuracyRow, accuracy_table
from repro.analysis.excitons import (
    TransitionWeight,
    dominant_transitions,
    electron_hole_densities,
    participation_ratio,
)

__all__ = [
    "density_of_states",
    "excitation_dos",
    "AccuracyRow",
    "accuracy_table",
    "TransitionWeight",
    "dominant_transitions",
    "participation_ratio",
    "electron_hole_densities",
]
