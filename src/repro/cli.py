"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, available LR-TDDFT methods and built-in systems.
``scf``
    Run a ground-state SCF on a built-in system and print the bands.
``tddft``
    SCF + LR-TDDFT; prints the lowest excitation energies.
``scaling``
    Print a cost-model scaling table (fig7 / fig8 / weak / table6).
``rt``
    Real-time TDDFT kick-and-propagate run; prints spectrum peaks.
``bench-backend``
    Measured A/B benchmark of the FFT backends and the pruned K-Means;
    writes machine-readable ``BENCH_backend.json``.
``bench-spmd``
    Thread vs process SPMD backend comparison (wall time, speedup, and
    the zero-copy/pickled transport split); writes ``BENCH_spmd.json``.
``bench-precision``
    strict64 vs mixed precision-tier comparison of the ISDF pipeline's
    compute stages, with per-stage error columns; writes
    ``BENCH_precision.json``.
``batch``
    Warm-started SCF + LR-TDDFT over a perturbed trajectory of a built-in
    system; prints the per-frame reuse table.
``bench-batch``
    Warm vs cold trajectory benchmark (the batch engine); writes
    ``BENCH_batch.json``.
``serve``
    Demo of the async job server: submits duplicate and near-duplicate
    requests and prints the per-job cache-hit / warm-start table.
``bench-serve``
    Job-server cache / warm-start benchmark; writes ``BENCH_serve.json``.
``lint``
    Run the project's AST lint passes (``repro.lint``) over source paths;
    exits nonzero when findings remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

from repro import __version__
from repro.constants import ANGSTROM_TO_BOHR, HARTREE_TO_EV


def _builtin_systems() -> dict[str, Callable]:
    from repro.atoms import (
        bulk_silicon,
        graphene_bilayer,
        silicon_primitive_cell,
        water_molecule,
    )
    from repro.pw import UnitCell

    def h2():
        box, bond = 10.0, 1.4
        return UnitCell(
            box * np.eye(3), ("H", "H"),
            np.array([[0.5, 0.5, 0.5 - bond / 2 / box],
                      [0.5, 0.5, 0.5 + bond / 2 / box]]),
        )

    return {
        "si2": silicon_primitive_cell,
        "si8": lambda: bulk_silicon(8),
        "water": lambda: water_molecule(box=8.0 * ANGSTROM_TO_BOHR),
        "bilayer": graphene_bilayer,
        "h2": h2,
    }


def _resilience_from(args) -> "object | None":
    """Build the ResilienceConfig the common CLI flags describe (or None)."""
    from repro.api import ResilienceConfig

    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if checkpoint_dir is None:
        if getattr(args, "restart", False):
            raise SystemExit("--restart requires --checkpoint-dir")
        return None
    return ResilienceConfig(
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        restart=getattr(args, "restart", False),
    )


def _run_scf_for(args) -> "object":
    from repro.api import CalculationRequest, SCFConfig

    if getattr(args, "xyz", None):
        from repro.atoms import read_xyz

        cell = read_xyz(args.xyz, box=getattr(args, "box", None))
    else:
        cell = _builtin_systems()[args.system]()
    needs_smearing = args.system == "bilayer"
    config = SCFConfig(
        ecut=args.ecut,
        n_bands=args.bands,
        tol=args.tol,
        smearing_width=0.01 if needs_smearing else 0.0,
        seed=0,
    )
    request = CalculationRequest(
        kind="scf", structure=cell, scf=config, resilience=_resilience_from(args)
    )
    return request.compute()


def cmd_info(args) -> int:
    from repro.core import METHODS

    print(f"repro {__version__} — ICPP'22 LR-TDDFT + ISDF/K-Means reproduction")
    print("\nLR-TDDFT methods (paper Table 4 + extensions):")
    for m in METHODS:
        print(f"  {m}")
    print("\nbuilt-in systems:", ", ".join(sorted(_builtin_systems())))
    return 0


def cmd_scf(args) -> int:
    gs = _run_scf_for(args)
    print(f"converged: {gs.converged}   total energy: {gs.total_energy:.6f} Ha")
    print(f"{'band':>5s} {'energy (Ha)':>12s} {'energy (eV)':>12s} {'occ':>6s}")
    for i, (e, f) in enumerate(zip(gs.energies, gs.occupations)):
        print(f"{i:5d} {e:12.6f} {e * HARTREE_TO_EV:12.4f} {f:6.3f}")
    if gs.n_occupied < gs.n_bands:
        print(f"gap: {gs.homo_lumo_gap() * HARTREE_TO_EV:.3f} eV")
    return 0


def cmd_tddft(args) -> int:
    from repro.api import CalculationRequest, TDDFTConfig, execute_request

    gs = _run_scf_for(args)
    n_pairs = gs.n_occupied * (gs.n_bands - gs.n_occupied)
    config = TDDFTConfig(
        method=args.method,
        n_excitations=min(args.n_excitations, n_pairs),
        tda=not args.full_casida,
        spin="triplet" if args.triplet else "singlet",
        seed=0,
    )
    request = CalculationRequest(
        kind="tddft",
        structure=gs.basis.cell,
        tddft=config,
        resilience=_resilience_from(args),
    )
    result = execute_request(request, ground_state=gs).result
    kind = "triplet" if args.triplet else "singlet"
    form = "full Casida" if args.full_casida else "TDA"
    print(f"{kind} excitations ({form}, method={args.method}, "
          f"N_cv={n_pairs}, N_mu={result.n_mu}):")
    print(f"{'#':>3s} {'E (Ha)':>10s} {'E (eV)':>10s}")
    for i, e in enumerate(result.energies, 1):
        print(f"{i:3d} {e:10.6f} {e * HARTREE_TO_EV:10.4f}")
    return 0


def cmd_scaling(args) -> int:
    from repro.data.calibration import (
        CALIBRATED_SPEC,
        STRONG_SCALING_CORES,
        TABLE6_CORES,
        WEAK_SCALING_CORES,
        paper_workload,
    )
    from repro.perf import (
        parallel_efficiency,
        predict_construction_breakdown,
        predict_version_time,
        strong_scaling_series,
    )

    if args.figure == "fig7":
        w = paper_workload(1000)
        cores = list(STRONG_SCALING_CORES)
        print("Figure 7 — Si_1000 strong scaling (modeled seconds)")
        for version in ("naive", "kmeans-isdf", "implicit-kmeans-isdf-lobpcg"):
            series = strong_scaling_series(version, w, cores, CALIBRATED_SPEC)
            effs = parallel_efficiency(series, cores)
            row = " ".join(f"{t.total:8.2f}" for t in series)
            print(f"{version:<30s} {row}  eff@2048={effs[-1]:.0%}")
    elif args.figure == "fig8":
        w = paper_workload(1000)
        print("Figure 8 — construction breakdown (modeled seconds)")
        for c in STRONG_SCALING_CORES:
            b = predict_construction_breakdown(w, c, CALIBRATED_SPEC)
            parts = " ".join(f"{k}={v:.3f}" for k, v in b.items())
            print(f"{c:5d} cores: {parts}")
    elif args.figure == "weak":
        print("Section 6.4 — weak scaling at 1,024 cores (modeled seconds)")
        for n in (512, 1000, 1728, 2744, 4096):
            t = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", paper_workload(n),
                WEAK_SCALING_CORES, CALIBRATED_SPEC,
            )
            print(f"Si{n:<5d} {t.total:8.2f}")
    else:  # table6
        print(f"Table 6 — modeled at {TABLE6_CORES} cores")
        for n in (64, 216, 512, 1000):
            w = paper_workload(n)
            tn = predict_version_time("naive", w, TABLE6_CORES, CALIBRATED_SPEC).total
            to = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", w, TABLE6_CORES, CALIBRATED_SPEC
            ).total
            print(f"Si{n:<5d} naive={tn:7.2f}s  optimized={to:6.2f}s  "
                  f"speedup={tn / to:5.2f}x")
    return 0


def cmd_rt(args) -> int:
    from repro.api import CalculationRequest, RTConfig, execute_request
    from repro.rt import dipole_spectrum, find_peaks

    gs = _run_scf_for(args)
    request = CalculationRequest(
        kind="rt",
        structure=gs.basis.cell,
        rt=RTConfig(dt=args.dt, n_steps=args.steps, kick_strength=args.kick),
        resilience=_resilience_from(args),
    )
    result = execute_request(request, ground_state=gs).result
    omega, spectrum = dipole_spectrum(
        result.times, result.dipole_along_kick(), result.kick_strength,
        damping=args.damping,
    )
    peaks = find_peaks(omega, spectrum, threshold=0.25)
    print(f"propagated {args.steps} steps of dt={args.dt} a.u.; "
          f"norm drift {abs(result.norms[-1] - result.norms[0]):.2e}")
    print("spectrum peaks (eV):",
          ", ".join(f"{p * HARTREE_TO_EV:.3f}" for p in peaks) or "(none)")
    return 0


def cmd_bench_backend(args) -> int:
    from repro.perf.backend_bench import (
        format_summary,
        run_backend_bench,
        write_report,
    )

    report = run_backend_bench(
        smoke=args.smoke,
        kmeans_max_iter=args.kmeans_max_iter,
        kmeans_tol=args.kmeans_tol,
    )
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_bench_spmd(args) -> int:
    from repro.perf.spmd_bench import (
        format_summary,
        run_spmd_bench,
        write_report,
    )

    ranks = tuple(int(r) for r in args.ranks.split(","))
    report = run_spmd_bench(smoke=args.smoke, ranks=ranks)
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_bench_precision(args) -> int:
    from repro.perf.precision_bench import (
        format_summary,
        run_precision_bench,
        write_report,
    )

    report = run_precision_bench(smoke=args.smoke)
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_batch(args) -> int:
    from repro.api import (
        BatchConfig,
        CalculationRequest,
        SCFConfig,
        TDDFTConfig,
    )
    from repro.batch import perturbed_trajectory
    from repro.constants import HARTREE_TO_EV

    cell = _builtin_systems()[args.system]()
    frames = perturbed_trajectory(
        cell,
        args.frames,
        amplitude=args.amplitude,
        period=args.period,
        seed=args.seed,
    )
    config = BatchConfig(
        scf=SCFConfig(ecut=args.ecut, n_bands=args.bands, tol=args.tol, seed=0),
        tddft=TDDFTConfig(n_excitations=args.n_excitations, seed=0),
        warm_start=not args.cold,
        n_ranks=args.ranks,
        spmd_backend=args.backend,
        store_results=False,
    )
    request = CalculationRequest(
        kind="batch",
        structure=frames,
        batch=config,
        resilience=_resilience_from(args),
    )
    result = request.compute()
    print(result.summary())
    last = result.records[-1]
    print("last frame excitations (eV):",
          ", ".join(f"{w * HARTREE_TO_EV:.4f}" for w in last.excitation_energies))
    return 0


def cmd_bench_batch(args) -> int:
    from repro.perf.batch_bench import (
        format_summary,
        run_batch_bench,
        write_report,
    )

    report = run_batch_bench(
        smoke=args.smoke,
        n_frames=args.frames,
        repeats=args.repeats,
        amplitude=args.amplitude,
    )
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_serve(args) -> int:
    """Demo the job server: duplicates hit the cache, neighbors warm-start."""
    from repro.api import CalculationRequest, SCFConfig
    from repro.batch import perturbed_trajectory
    from repro.serve import CalculationServer, ResultStore

    cell = _builtin_systems()[args.system]()
    frames = perturbed_trajectory(
        cell, args.requests, amplitude=args.amplitude, seed=args.seed
    )
    config = SCFConfig(ecut=args.ecut, n_bands=args.bands, tol=args.tol, seed=0)
    store = ResultStore(args.store_dir) if args.store_dir else ResultStore()

    # Workload: each perturbed geometry once (near-duplicates warm-start
    # off each other), then the first one again — the replay must come
    # back as a zero-work, bit-identical cache hit.
    requests = [
        CalculationRequest(kind="scf", structure=frame, scf=config)
        for frame in frames
    ]

    with CalculationServer(store, n_workers=args.workers) as server:
        handles = [
            request.submit(server, tenant=f"tenant-{i % args.tenants}")
            for i, request in enumerate(requests)
        ]
        for handle in handles:
            handle.result(timeout=600)
        handles.append(requests[0].submit(server, tenant="tenant-0"))
        print(f"{'job':>10s} {'tenant':>9s} {'status':>9s} {'hit':>5s} "
              f"{'warm':>5s} {'rms[b]':>8s} {'scf':>4s} {'E [Ha]':>13s}")
        for handle in handles:
            result = handle.result(timeout=600)
            rec = handle.record()
            rms = f"{rec['warm_rms']:.4f}" if rec["warm_rms"] is not None else "-"
            print(f"{rec['id']:>10s} {rec['tenant']:>9s} {rec['status']:>9s} "
                  f"{str(rec['cache_hit']):>5s} {str(rec['warm']):>5s} "
                  f"{rms:>8s} {rec['scf_iterations']:4d} "
                  f"{result.total_energy:13.8f}")
        stats = server.stats()
    print(f"stats: {stats['submitted']} submitted, "
          f"{stats['cache_hits']} cache hit(s), "
          f"{stats['warm_starts']} warm start(s), "
          f"{stats['deduplicated']} deduplicated")
    if args.store_dir:
        print(f"result store persisted under {args.store_dir} "
              f"({len(store)} entr{'y' if len(store) == 1 else 'ies'})")
    return 0


def cmd_bench_serve(args) -> int:
    from repro.perf.serve_bench import (
        format_summary,
        run_serve_bench,
        write_report,
    )

    report = run_serve_bench(smoke=args.smoke, amplitude=args.amplitude)
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        ARRAY_RULE_NAMES,
        all_project_rules,
        all_rules,
        check_suppressions,
        format_findings,
        lint_paths,
        rule_inventory,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        for rule in all_project_rules():
            print(f"{rule.name} [project]: {rule.description}")
        return 0
    if args.check_suppressions:
        findings = check_suppressions(args.paths)
        rules_enabled = None
    else:
        selection = args.select or None
        if args.no_arrays and selection is None:
            # The escape hatch drops only the array-contract rules; an
            # explicit --select already names exactly what runs.
            selection = [
                name for name in rule_inventory() if name not in ARRAY_RULE_NAMES
            ]
        findings = lint_paths(
            args.paths, rules=selection, project=not args.no_project
        )
        # Embed the active inventory only for a full run, where it is a
        # faithful statement of what was checked (baseline tooling relies
        # on it to catch silently-vanished rules).
        rules_enabled = (
            rule_inventory()
            if args.select is None and not args.no_arrays
            else None
        )
    output = format_findings(findings, fmt=args.format, rules_enabled=rules_enabled)
    if output:
        print(output)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and method overview")

    def add_system_args(p, default_bands):
        p.add_argument("--system", choices=sorted(_builtin_systems()), default="si2")
        p.add_argument("--xyz", help="structure file (overrides --system)")
        p.add_argument("--box", type=float, default=None,
                       help="cubic box edge in Bohr for plain XYZ files")
        p.add_argument("--ecut", type=float, default=10.0, help="cutoff (Ha)")
        p.add_argument("--bands", type=int, default=default_bands)
        p.add_argument("--tol", type=float, default=1e-7)

    def add_resilience_args(p):
        p.add_argument("--checkpoint-dir", default=None,
                       help="snapshot loop state into this directory")
        p.add_argument("--checkpoint-every", type=int, default=1,
                       help="snapshot every N-th loop iteration")
        p.add_argument("--restart", action="store_true",
                       help="resume from the newest snapshot in "
                            "--checkpoint-dir")

    p_scf = sub.add_parser("scf", help="ground-state SCF")
    add_system_args(p_scf, default_bands=10)
    add_resilience_args(p_scf)

    p_td = sub.add_parser("tddft", help="LR-TDDFT excitations")
    add_system_args(p_td, default_bands=10)
    add_resilience_args(p_td)
    p_td.add_argument("--method", default="implicit-kmeans-isdf-lobpcg")
    p_td.add_argument("-k", "--n-excitations", type=int, default=5)
    p_td.add_argument("--full-casida", action="store_true",
                      help="solve Eq. 1 instead of the TDA")
    p_td.add_argument("--triplet", action="store_true",
                      help="spin-flip (triplet) excitations")

    p_sc = sub.add_parser("scaling", help="cost-model scaling tables")
    p_sc.add_argument("--figure", choices=("fig7", "fig8", "weak", "table6"),
                      default="fig7")

    p_rt = sub.add_parser("rt", help="real-time TDDFT run")
    add_system_args(p_rt, default_bands=5)
    add_resilience_args(p_rt)
    p_rt.add_argument("--steps", type=int, default=600)
    p_rt.add_argument("--dt", type=float, default=0.2)
    p_rt.add_argument("--kick", type=float, default=1e-3)
    p_rt.add_argument("--damping", type=float, default=0.01)

    p_bb = sub.add_parser("bench-backend",
                          help="benchmark FFT backends and pruned K-Means")
    p_bb.add_argument("--smoke", action="store_true",
                      help="tiny workload for CI (seconds, not minutes)")
    p_bb.add_argument("--out", default=None,
                      help="write the JSON report here (e.g. BENCH_backend.json)")
    p_bb.add_argument("--kmeans-max-iter", type=int, default=None,
                      help="K-Means iteration cap (default converges the "
                           "full workload; the summary warns if it doesn't)")
    p_bb.add_argument("--kmeans-tol", type=float, default=None,
                      help="K-Means centroid-movement convergence tolerance")

    p_bs = sub.add_parser("bench-spmd",
                          help="benchmark thread vs process SPMD backends")
    p_bs.add_argument("--smoke", action="store_true",
                      help="tiny workload for CI (seconds, not minutes)")
    p_bs.add_argument("--ranks", default="1,2,4,8",
                      help="comma-separated rank counts to sweep")
    p_bs.add_argument("--out", default=None,
                      help="write the JSON report here (e.g. BENCH_spmd.json)")

    p_bp = sub.add_parser("bench-precision",
                          help="benchmark strict64 vs mixed precision tiers")
    p_bp.add_argument("--smoke", action="store_true",
                      help="tiny workload for CI (seconds, not minutes)")
    p_bp.add_argument("--out", default=None,
                      help="write the JSON report here "
                           "(e.g. BENCH_precision.json)")

    p_batch = sub.add_parser("batch",
                             help="warm-started pipeline over a trajectory")
    p_batch.add_argument("--system", choices=sorted(_builtin_systems()),
                         default="si2")
    p_batch.add_argument("--frames", type=int, default=6,
                         help="trajectory length")
    p_batch.add_argument("--amplitude", type=float, default=0.012,
                         help="displacement scale (Bohr)")
    p_batch.add_argument("--period", type=float, default=16.0,
                         help="oscillation period in frames")
    p_batch.add_argument("--seed", type=int, default=7,
                         help="trajectory seed")
    p_batch.add_argument("--ecut", type=float, default=10.0, help="cutoff (Ha)")
    p_batch.add_argument("--bands", type=int, default=10)
    p_batch.add_argument("--tol", type=float, default=1e-6)
    p_batch.add_argument("-k", "--n-excitations", type=int, default=4)
    p_batch.add_argument("--cold", action="store_true",
                         help="disable all cross-frame reuse")
    p_batch.add_argument("--ranks", type=int, default=1,
                         help="SPMD ranks to shard frames over")
    p_batch.add_argument("--backend", choices=("thread", "process"),
                         default=None, help="SPMD backend for --ranks > 1")
    add_resilience_args(p_batch)

    p_bbt = sub.add_parser("bench-batch",
                           help="benchmark warm vs cold trajectory batching")
    p_bbt.add_argument("--smoke", action="store_true",
                       help="tiny workload for CI (seconds, not minutes)")
    p_bbt.add_argument("--frames", type=int, default=None,
                       help="trajectory length (default: 4 smoke / 10 full)")
    p_bbt.add_argument("--repeats", type=int, default=None,
                       help="cold+warm pairs; minimum is reported")
    p_bbt.add_argument("--amplitude", type=float, default=0.012,
                       help="displacement scale (Bohr)")
    p_bbt.add_argument("--out", default=None,
                       help="write the JSON report here (e.g. BENCH_batch.json)")

    p_srv = sub.add_parser("serve",
                           help="demo the async job server + result cache")
    p_srv.add_argument("--system", choices=sorted(_builtin_systems()),
                       default="si2")
    p_srv.add_argument("--requests", type=int, default=3,
                       help="distinct near-duplicate geometries to submit "
                            "(the first is then submitted again)")
    p_srv.add_argument("--amplitude", type=float, default=0.012,
                       help="geometry perturbation scale (Bohr)")
    p_srv.add_argument("--seed", type=int, default=7,
                       help="perturbation seed")
    p_srv.add_argument("--ecut", type=float, default=10.0, help="cutoff (Ha)")
    p_srv.add_argument("--bands", type=int, default=10)
    p_srv.add_argument("--tol", type=float, default=1e-6)
    p_srv.add_argument("--workers", type=int, default=1,
                       help="server worker threads")
    p_srv.add_argument("--tenants", type=int, default=2,
                       help="spread submissions over this many tenants")
    p_srv.add_argument("--store-dir", default=None,
                       help="persist the result store in this directory "
                            "(rerunning then serves everything from cache)")

    p_bsv = sub.add_parser("bench-serve",
                           help="benchmark the job-server cache/warm tiers")
    p_bsv.add_argument("--smoke", action="store_true",
                       help="tiny workload for CI (seconds, not minutes)")
    p_bsv.add_argument("--amplitude", type=float, default=0.012,
                       help="near-duplicate perturbation scale (Bohr)")
    p_bsv.add_argument("--out", default=None,
                       help="write the JSON report here (e.g. BENCH_serve.json)")

    p_lint = sub.add_parser("lint", help="run the repro.lint AST passes")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="human-readable lines or a machine JSON report")
    p_lint.add_argument("--select", action="append", default=None,
                        metavar="RULE",
                        help="run only this rule (repeatable)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    p_lint.add_argument("--check-suppressions", action="store_true",
                        help="audit for suppression comments that no longer "
                             "match a live finding (stale-suppression)")
    p_lint.add_argument("--no-project", action="store_true",
                        help="skip the whole-program (call-graph) rules")
    p_lint.add_argument("--no-arrays", action="store_true",
                        help="skip the array-contract rules (shape/dtype/"
                             "layout abstract interpretation); they run by "
                             "default")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "scf": cmd_scf,
        "tddft": cmd_tddft,
        "scaling": cmd_scaling,
        "rt": cmd_rt,
        "bench-backend": cmd_bench_backend,
        "bench-spmd": cmd_bench_spmd,
        "bench-precision": cmd_bench_precision,
        "batch": cmd_batch,
        "bench-batch": cmd_bench_batch,
        "serve": cmd_serve,
        "bench-serve": cmd_bench_serve,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
