"""Tests for the GroundState container and orbital realification."""

import numpy as np
import pytest

from repro.dft.groundstate import GroundState, _degenerate_groups
from repro.synthetic import synthetic_ground_state
from repro.atoms import silicon_primitive_cell


class TestDegenerateGroups:
    def test_all_distinct(self):
        groups = _degenerate_groups(np.array([0.0, 1.0, 2.0]))
        assert groups == [[0], [1], [2]]

    def test_chains_neighbours(self):
        e = np.array([0.0, 1.0, 1.0 + 1e-7, 2.0])
        assert _degenerate_groups(e) == [[0], [1, 2], [3]]

    def test_triple_degeneracy(self):
        e = np.array([0.0, 1.0, 1.0, 1.0])
        assert _degenerate_groups(e) == [[0], [1, 2, 3]]


class TestGroundState:
    def test_shape_validation(self):
        gs = synthetic_ground_state(silicon_primitive_cell(), ecut=5.0, seed=0)
        with pytest.raises(ValueError):
            GroundState(
                basis=gs.basis,
                energies=gs.energies,
                orbitals_real=gs.orbitals_real[:, :-1],
                occupations=gs.occupations,
                density=gs.density,
            )

    def test_n_electrons(self, si2_ground_state):
        assert si2_ground_state.n_electrons == pytest.approx(8.0)

    def test_select_transition_space_defaults(self, si2_ground_state):
        psi_v, eps_v, psi_c, eps_c = si2_ground_state.select_transition_space()
        assert psi_v.shape[0] == 4
        assert psi_c.shape[0] == si2_ground_state.n_bands - 4
        assert (eps_c.min() > eps_v.max()) or np.isclose(eps_c.min(), eps_v.max())

    def test_select_transition_space_truncation(self, si2_ground_state):
        psi_v, eps_v, psi_c, eps_c = si2_ground_state.select_transition_space(2, 3)
        assert psi_v.shape[0] == 2
        assert psi_c.shape[0] == 3
        # Topmost valence bands are selected.
        assert eps_v[0] == pytest.approx(si2_ground_state.energies[2])

    def test_requested_more_than_available_is_clipped(self, si2_ground_state):
        psi_v, *_ = si2_ground_state.select_transition_space(99, 99)
        assert psi_v.shape[0] == 4

    def test_homo_lumo_gap_positive(self, si2_ground_state):
        assert si2_ground_state.homo_lumo_gap() > 0


class TestRealification:
    def test_real_orbitals_diagonalize_h(self, si2_ground_state):
        """After realification the orbitals must still be H-eigenvectors:
        verified via residuals ||H psi - e psi|| in coefficient space."""
        from repro.dft import KohnShamHamiltonian

        gs = si2_ground_state
        ham = KohnShamHamiltonian(gs.basis)
        ham.update_density(gs.density)
        coeffs = gs.basis.to_recip(gs.orbitals_real.astype(complex))
        h_coeffs = ham.apply(coeffs)
        residuals = np.linalg.norm(
            h_coeffs - coeffs * gs.energies[:, None], axis=1
        )
        assert residuals.max() < 1e-5

    def test_imaginary_content_is_negligible(self, si2_ground_state):
        """Realified orbitals round-trip through the sphere staying real."""
        gs = si2_ground_state
        coeffs = gs.basis.to_recip(gs.orbitals_real.astype(complex))
        back = gs.basis.to_real(coeffs)
        assert np.abs(back.imag).max() < 1e-10
