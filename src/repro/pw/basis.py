"""The plane-wave basis: cutoff sphere + transforms for orbitals.

Orbital convention: a band is a coefficient vector ``c`` of length ``N_pw``
over the cutoff sphere with

    psi(r) = (1 / sqrt(Omega)) * sum_G c_G exp(i G . r),

so ``sum_G |c_G|^2 = 1  <=>  integral |psi|^2 dr = 1``.  Real-space orbitals
returned by :meth:`PlaneWaveBasis.to_real` therefore carry the physical
``1/sqrt(Bohr^3)`` units the LR-TDDFT pair products expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.pw.cell import UnitCell
from repro.pw.fft import FourierGrid
from repro.pw.grid import RealSpaceGrid
from repro.pw.gvectors import GVectors
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PlaneWaveBasis:
    """Everything needed to work in a plane-wave basis at the Gamma point."""

    cell: UnitCell
    ecut: float
    grid: RealSpaceGrid = field(init=False)
    gvectors: GVectors = field(init=False)
    fft: FourierGrid = field(init=False)

    def __post_init__(self) -> None:
        check_positive(self.ecut, "ecut")
        grid = RealSpaceGrid.from_cutoff(self.cell, self.ecut)
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "gvectors", GVectors(grid, self.ecut))
        object.__setattr__(self, "fft", FourierGrid(grid))

    # -- sizes ------------------------------------------------------------

    @property
    def n_pw(self) -> int:
        """Number of plane waves in the cutoff sphere."""
        return self.gvectors.n_pw

    @property
    def n_r(self) -> int:
        """Number of real-space grid points N_r."""
        return self.grid.n_points

    @property
    def volume(self) -> float:
        return self.cell.volume

    @cached_property
    def kinetic_diagonal(self) -> np.ndarray:
        """``|G|^2 / 2`` over the sphere — the kinetic operator diagonal."""
        return 0.5 * self.gvectors.g2_sphere

    # -- transforms -------------------------------------------------------

    def to_real(self, coeffs: np.ndarray) -> np.ndarray:
        """Sphere coefficients ``(..., N_pw)`` -> real-space ``(..., N_r)``.

        The zero-padded full-spectrum staging block is drawn from the FFT
        engine's scratch pool, so the SCF/propagator inner loops reuse one
        buffer instead of allocating ``O(n_bands N_r)`` per application.
        """
        coeffs = np.asarray(coeffs)
        full = self.fft.fft_engine.scratch(
            coeffs.shape[:-1] + (self.n_r,), complex
        )
        full.fill(0)
        full[..., self.gvectors.sphere] = coeffs
        out = self.fft.backward(full)
        out /= np.sqrt(self.volume)
        return out

    def to_recip(self, psi_real: np.ndarray) -> np.ndarray:
        """Real-space ``(..., N_r)`` -> sphere coefficients ``(..., N_pw)``.

        This is a projection: grid content outside the sphere is discarded
        (exactly what applying the cutoff means).
        """
        full = self.fft.forward(np.asarray(psi_real, dtype=complex))
        return full[..., self.gvectors.sphere] * np.sqrt(self.volume)

    def random_coefficients(
        self, n_bands: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Random normalized coefficients ``(n_bands, N_pw)`` for SCF starts.

        Damped by a soft kinetic envelope so the initial guess is smooth —
        this materially reduces LOBPCG iterations in the first SCF cycle.
        """
        coeffs = rng.standard_normal((n_bands, self.n_pw)) + 1j * rng.standard_normal(
            (n_bands, self.n_pw)
        )
        envelope = 1.0 / (1.0 + self.kinetic_diagonal)
        coeffs *= envelope
        norms = np.linalg.norm(coeffs, axis=1, keepdims=True)
        return coeffs / norms

    def describe(self) -> str:
        n1, n2, n3 = self.grid.shape
        return (
            f"PlaneWaveBasis(Ecut={self.ecut:g} Ha, grid={n1}x{n2}x{n3}"
            f" (N_r={self.n_r}), N_pw={self.n_pw})"
        )
