"""Typed, frozen configuration objects for the :mod:`repro.api` facade.

Each config is an immutable dataclass with exact round-trip semantics:
``Config.from_dict(cfg.to_dict()) == cfg``.  Unknown keys are rejected on
construction from a dict, so config files fail loudly instead of silently
dropping a typo.  ``replace`` derives a modified copy (the functional
update pattern for frozen dataclasses).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.utils.validation import require

__all__ = ["BatchConfig", "RTConfig", "ResilienceConfig", "SCFConfig", "TDDFTConfig"]


@dataclass(frozen=True)
class _ConfigBase:
    """Shared dict round-trip / functional-update machinery."""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "_ConfigBase":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        require(
            not unknown,
            f"unknown {cls.__name__} keys {unknown}; valid keys: {sorted(fields)}",
        )
        return cls(**data)

    def replace(self, **changes) -> "_ConfigBase":
        """A copy with the given fields changed (frozen-safe update)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SCFConfig(_ConfigBase):
    """Ground-state SCF parameters (mirrors ``repro.dft.SCFOptions``).

    ``precision`` is the mixed-precision execution tier (``"strict64"`` /
    ``"mixed"`` / ``"fast32"``, see :mod:`repro.precision`).  It is a plain
    string so it serializes through the exact dict round-trip and therefore
    participates in the request cache key: a ``mixed`` and a ``strict64``
    calculation are different cache entries.
    """

    ecut: float = 10.0
    n_bands: int | None = None
    tol: float = 1e-6
    max_iter: int = 60
    mixer: str = "anderson"
    mixing_beta: float = 0.5
    mixing_history: int = 5
    smearing_width: float = 0.0
    eig_tol_final: float = 1e-8
    seed: int | None = None
    verbose: bool = False
    precision: str = "strict64"

    def __post_init__(self) -> None:
        from repro.precision import PRECISION_MODES

        require(self.ecut > 0, f"ecut must be positive, got {self.ecut}")
        require(self.max_iter >= 1, f"max_iter must be >= 1, got {self.max_iter}")
        require(
            self.mixer in ("anderson", "linear"),
            f"mixer must be 'anderson' or 'linear', got {self.mixer!r}",
        )
        require(
            self.precision in PRECISION_MODES,
            f"precision must be one of {PRECISION_MODES}, "
            f"got {self.precision!r}",
        )


@dataclass(frozen=True)
class TDDFTConfig(_ConfigBase):
    """LR-TDDFT solve parameters (transition space + eigensolver).

    ``precision`` selects the mixed-precision execution tier for the
    tolerance-bounded ISDF/K-Means/operator stages (see
    :mod:`repro.precision`); like every other field it enters the request
    cache key through the dict round-trip.
    """

    method: str = "implicit-kmeans-isdf-lobpcg"
    n_excitations: int | None = None
    n_mu: int | None = None
    rank_factor: float = 10.0
    tol: float = 1e-8
    max_iter: int = 400
    tda: bool = True
    spin: str = "singlet"
    include_xc: bool = True
    n_valence: int | None = None
    n_conduction: int | None = None
    seed: int | None = None
    precision: str = "strict64"

    def __post_init__(self) -> None:
        from repro.core.driver import METHODS
        from repro.precision import PRECISION_MODES

        require(
            self.method in METHODS,
            f"unknown method {self.method!r}; choose from {METHODS}",
        )
        require(
            self.spin in ("singlet", "triplet"),
            f"spin must be 'singlet' or 'triplet', got {self.spin!r}",
        )
        require(self.max_iter >= 1, f"max_iter must be >= 1, got {self.max_iter}")
        require(
            self.precision in PRECISION_MODES,
            f"precision must be one of {PRECISION_MODES}, "
            f"got {self.precision!r}",
        )


@dataclass(frozen=True)
class RTConfig(_ConfigBase):
    """Real-time TDDFT propagation parameters (mirrors :func:`repro.api.run_rt`).

    Attributes
    ----------
    dt / n_steps:
        Propagation time step (atomic units) and number of steps.
    kick_strength / kick_direction:
        Initial delta-kick perturbation; a zero strength skips the kick.
    krylov_dim:
        Krylov subspace dimension of the exponential propagator.
    etrs:
        Enforced time-reversal-symmetry propagator (vs plain exponential
        midpoint).
    record_every:
        Record dipole/norm observables every N-th step.
    self_consistent:
        Update the Hamiltonian from the propagated density each step.
    """

    dt: float = 0.2
    n_steps: int = 600
    kick_strength: float = 1e-3
    kick_direction: tuple[float, float, float] = (0.0, 0.0, 1.0)
    krylov_dim: int = 10
    etrs: bool = True
    record_every: int = 1
    self_consistent: bool = True

    def __post_init__(self) -> None:
        require(self.dt > 0, f"dt must be positive, got {self.dt}")
        require(self.n_steps >= 1, f"n_steps must be >= 1, got {self.n_steps}")
        require(
            self.krylov_dim >= 2,
            f"krylov_dim must be >= 2, got {self.krylov_dim}",
        )
        require(
            self.record_every >= 1,
            f"record_every must be >= 1, got {self.record_every}",
        )
        direction = tuple(float(c) for c in self.kick_direction)
        require(
            len(direction) == 3,
            f"kick_direction must have 3 components, got {len(direction)}",
        )
        object.__setattr__(self, "kick_direction", direction)

    @classmethod
    def from_dict(cls, data: dict) -> "RTConfig":
        """Round-trip-exact construction; the direction may be a list."""
        payload = dict(data)
        if isinstance(payload.get("kick_direction"), list):
            payload["kick_direction"] = tuple(payload["kick_direction"])
        return super().from_dict(payload)


@dataclass(frozen=True)
class BatchConfig(_ConfigBase):
    """Cross-calculation batch parameters (see :func:`repro.api.run_batch`).

    Attributes
    ----------
    scf / tddft:
        Per-frame pipeline configs, shared by every frame.
    warm_start:
        Master switch for all cross-frame reuse.  Off, every frame runs
        exactly as a standalone calculation (bit-identical to calling
        :func:`repro.api.run_scf` + :func:`repro.api.solve_tddft` per
        frame).
    density_extrapolation:
        Starting-density policy under warm start: ``"quadratic"``
        (default; three-frame extrapolation), ``"linear"``, or ``"none"``
        (carry the previous density unmodified).
    isdf_drift_threshold:
        Reuse the previous frame's ISDF interpolation points while the
        candidate-assignment drift stays at or below this fraction;
        past it, points are reselected (K-Means still warm-started from
        the previous centroids).  0 reselects on any nonzero drift.
    residual_hint_floor:
        Lower bound on the warm SCF residual hint (guards the adaptive
        eigensolver tolerance when consecutive frames nearly coincide).
    reuse_identical_frames:
        Replay results bit-identically for frames whose fingerprint
        (structure + configs) matches an earlier frame.
    n_ranks / spmd_backend:
        Shard frames over SPMD ranks (``"thread"``/``"process"``;
        ``None`` consults ``REPRO_SPMD_BACKEND``).  Each rank runs a
        contiguous chunk with its own warm chain.
    store_results:
        Keep full per-frame result objects on the
        :class:`~repro.batch.results.BatchResult`; off, only the
        per-frame records survive (memory-lean mode).
    precision:
        Convenience override: when set (``"strict64"`` / ``"mixed"`` /
        ``"fast32"``), it is pushed into both nested configs at
        construction, so one knob switches the whole per-frame pipeline;
        ``None`` (default) leaves the nested configs' own tiers untouched.
    """

    scf: SCFConfig = field(default_factory=SCFConfig)
    tddft: TDDFTConfig = field(default_factory=TDDFTConfig)
    warm_start: bool = True
    density_extrapolation: str = "quadratic"
    isdf_drift_threshold: float = 0.1
    residual_hint_floor: float = 3e-5
    reuse_identical_frames: bool = True
    n_ranks: int = 1
    spmd_backend: str | None = None
    store_results: bool = True
    precision: str | None = None

    def __post_init__(self) -> None:
        require(
            isinstance(self.scf, SCFConfig),
            f"scf must be an SCFConfig, got {type(self.scf).__name__}",
        )
        require(
            isinstance(self.tddft, TDDFTConfig),
            f"tddft must be a TDDFTConfig, got {type(self.tddft).__name__}",
        )
        if self.precision is not None:
            from repro.precision import PRECISION_MODES

            require(
                self.precision in PRECISION_MODES,
                f"precision must be None or one of {PRECISION_MODES}, "
                f"got {self.precision!r}",
            )
            # Push the tier into the nested configs (idempotent, so the
            # dict round-trip reconstructs the identical object).
            object.__setattr__(
                self, "scf", self.scf.replace(precision=self.precision)
            )
            object.__setattr__(
                self, "tddft", self.tddft.replace(precision=self.precision)
            )
        require(
            self.density_extrapolation in ("none", "linear", "quadratic"),
            f"density_extrapolation must be none/linear/quadratic, "
            f"got {self.density_extrapolation!r}",
        )
        require(
            0.0 <= self.isdf_drift_threshold <= 1.0,
            f"isdf_drift_threshold must be in [0, 1], "
            f"got {self.isdf_drift_threshold}",
        )
        require(
            self.residual_hint_floor > 0,
            f"residual_hint_floor must be positive, "
            f"got {self.residual_hint_floor}",
        )
        require(self.n_ranks >= 1, f"n_ranks must be >= 1, got {self.n_ranks}")
        require(
            self.spmd_backend in (None, "thread", "process"),
            f"spmd_backend must be None, 'thread' or 'process', "
            f"got {self.spmd_backend!r}",
        )

    @classmethod
    def from_dict(cls, data: dict) -> "BatchConfig":
        """Round-trip-exact construction; nested configs may be dicts."""
        payload = dict(data)
        if isinstance(payload.get("scf"), dict):
            payload["scf"] = SCFConfig.from_dict(payload["scf"])
        if isinstance(payload.get("tddft"), dict):
            payload["tddft"] = TDDFTConfig.from_dict(payload["tddft"])
        return super().from_dict(payload)


@dataclass(frozen=True)
class ResilienceConfig(_ConfigBase):
    """Checkpoint/restart and graceful-degradation policies.

    Attributes
    ----------
    checkpoint_dir:
        Directory for loop snapshots (``None`` disables checkpointing).
    checkpoint_every:
        Snapshot every N-th loop iteration.
    restart:
        Resume each checkpointed loop from its newest snapshot.
    keep_last:
        Retain only the newest N snapshots per loop (0 = keep all).
    max_retries / backoff / backoff_factor:
        Retry-with-exponential-backoff parameters for transient faults
        (see :class:`repro.resilience.RetryPolicy`).
    fft_fallback:
        Degrade the process-wide FFT backend scipy -> numpy on the first
        transform failure (:class:`repro.resilience.ResilientFFTEngine`).
    selection_fallback:
        ``"qrcp"`` re-selects ISDF points with randomized QRCP when the
        K-Means clustering fails or does not converge; ``None`` fails fast.
    dense_fallback_max_pairs:
        When an iterative eigensolve does not converge and the pair space
        is at most this large, re-solve with the dense eigensolver
        (0 disables the fallback).
    """

    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    restart: bool = False
    keep_last: int = 0
    max_retries: int = 3
    backoff: float = 0.01
    backoff_factor: float = 2.0
    fft_fallback: bool = True
    selection_fallback: str | None = "qrcp"
    dense_fallback_max_pairs: int = 512

    def __post_init__(self) -> None:
        require(
            self.checkpoint_every >= 1,
            f"checkpoint_every must be >= 1, got {self.checkpoint_every}",
        )
        require(self.keep_last >= 0, f"keep_last must be >= 0, got {self.keep_last}")
        require(
            self.max_retries >= 0,
            f"max_retries must be >= 0, got {self.max_retries}",
        )
        require(
            self.selection_fallback in (None, "qrcp"),
            f"selection_fallback must be None or 'qrcp', "
            f"got {self.selection_fallback!r}",
        )

    def retry_policy(self):
        """The :class:`repro.resilience.RetryPolicy` these knobs describe."""
        from repro.resilience.policies import RetryPolicy

        return RetryPolicy(
            max_retries=self.max_retries,
            backoff=self.backoff,
            backoff_factor=self.backoff_factor,
        )

    def checkpointer(self, tag: str):
        """A :class:`~repro.resilience.checkpoint.LoopCheckpointer` for one
        loop (``None`` when checkpointing is disabled)."""
        if self.checkpoint_dir is None:
            return None
        from repro.resilience.checkpoint import CheckpointManager, LoopCheckpointer

        return LoopCheckpointer(
            CheckpointManager(self.checkpoint_dir, tag=tag),
            every=self.checkpoint_every,
            restart=self.restart,
            keep_last=self.keep_last,
        )
