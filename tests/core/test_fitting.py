"""Tests for the ISDF least-squares fitting step."""

import numpy as np
import pytest

from repro.core import coefficient_matrix, fit_interpolation_vectors, pair_products
from repro.utils.rng import default_rng


@pytest.fixture()
def orbitals():
    rng = default_rng(0)
    psi_v = rng.standard_normal((3, 150))
    psi_c = rng.standard_normal((4, 150))
    return psi_v, psi_c


def test_coefficient_matrix_values(orbitals):
    psi_v, psi_c = orbitals
    idx = np.array([5, 50, 120])
    c = coefficient_matrix(psi_v, psi_c, idx)
    assert c.shape == (3, 12)
    # Entry (mu, (v, c)) = psi_v(r_mu) psi_c(r_mu).
    assert c[1, 2 * 4 + 3] == pytest.approx(psi_v[2, 50] * psi_c[3, 50])


def test_separable_gram_matches_dense(orbitals):
    """The Hadamard shortcut must equal the dense Z C^T / C C^T products."""
    psi_v, psi_c = orbitals
    idx = np.array([10, 40, 70, 100, 130])
    z = pair_products(psi_v, psi_c)
    c = coefficient_matrix(psi_v, psi_c, idx)
    theta = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    dense_theta = z @ c.T @ np.linalg.inv(c @ c.T)
    np.testing.assert_allclose(theta, dense_theta, atol=1e-8)


def test_interpolation_property(orbitals):
    """At full rank (N_mu = N_cv) the fit reproduces Z exactly."""
    psi_v, psi_c = orbitals
    rng = default_rng(1)
    idx = rng.choice(150, size=12, replace=False)
    theta = fit_interpolation_vectors(psi_v, psi_c, idx)
    c = coefficient_matrix(psi_v, psi_c, idx)
    z = pair_products(psi_v, psi_c)
    np.testing.assert_allclose(theta @ c, z, atol=1e-6)


def test_least_squares_optimality(orbitals):
    """Theta minimizes ||Z - Theta C||_F: the residual is orthogonal to the
    row space of C."""
    psi_v, psi_c = orbitals
    idx = np.array([3, 33, 63, 93])
    theta = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    c = coefficient_matrix(psi_v, psi_c, idx)
    z = pair_products(psi_v, psi_c)
    residual = z - theta @ c
    np.testing.assert_allclose(residual @ c.T, 0.0, atol=1e-8)


def test_error_decreases_with_rank(orbitals):
    psi_v, psi_c = orbitals
    z = pair_products(psi_v, psi_c)
    rng = default_rng(2)
    errors = []
    for n_mu in (2, 4, 8, 12):
        idx = rng.choice(150, size=n_mu, replace=False)
        theta = fit_interpolation_vectors(psi_v, psi_c, idx)
        c = coefficient_matrix(psi_v, psi_c, idx)
        errors.append(np.linalg.norm(z - theta @ c))
    assert errors[-1] < 1e-6
    assert errors[0] > errors[-1]


def test_grid_mismatch_rejected(orbitals):
    psi_v, psi_c = orbitals
    with pytest.raises(ValueError):
        fit_interpolation_vectors(psi_v, psi_c[:, :-1], np.array([0, 1]))


def test_empty_indices_rejected(orbitals):
    psi_v, psi_c = orbitals
    with pytest.raises(ValueError):
        fit_interpolation_vectors(psi_v, psi_c, np.array([], dtype=int))


def test_duplicate_points_survive_via_ridge(orbitals):
    """Duplicated interpolation points make C C^T singular; the ridge must
    keep the solve finite."""
    psi_v, psi_c = orbitals
    idx = np.array([7, 7, 80])
    theta = fit_interpolation_vectors(psi_v, psi_c, idx)
    assert np.all(np.isfinite(theta))
