"""End-to-end integration tests across every layer of the stack.

Each test exercises a full user workflow (the paths README advertises),
asserting cross-layer consistency rather than unit behaviour.
"""

import numpy as np
import pytest

from repro import LRTDDFTSolver
from repro.analysis import (
    density_of_states,
    dominant_transitions,
    electron_hole_densities,
    excitation_dos,
    participation_ratio,
)
from repro.core import oscillator_strengths, transition_dipoles


class TestSCFToSpectrum:
    """SCF -> LR-TDDFT -> observables, on the real water molecule."""

    @pytest.fixture(scope="class")
    def pipeline(self, water_ground_state):
        solver = LRTDDFTSolver(water_ground_state, seed=0)
        result = solver.solve("implicit-kmeans-isdf-lobpcg", n_excitations=6, tol=1e-9)
        return water_ground_state, solver, result

    def test_excitations_above_gap_minus_binding(self, pipeline):
        gs, solver, result = pipeline
        gap = gs.homo_lumo_gap()
        # Excitonic binding can pull below the KS gap, but not absurdly.
        assert result.energies[0] > 0.5 * gap

    def test_oscillator_strengths_finite(self, pipeline):
        gs, solver, result = pipeline
        dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
        f = oscillator_strengths(result.energies, result.wavefunctions, dip)
        assert np.all(np.isfinite(f))
        assert (f > -1e-12).all()

    def test_exciton_analysis_consistent(self, pipeline):
        gs, solver, result = pipeline
        x = result.wavefunctions[:, 0]
        top = dominant_transitions(x, solver.n_v, solver.n_c, n_top=3)
        pr = participation_ratio(x)
        # Participation ratio consistent with the dominant weight.
        assert pr >= 1.0 / top[0].weight - 1e-9 or pr >= 1.0
        n_e, n_h = electron_hole_densities(x, solver.psi_v, solver.psi_c)
        dv = gs.basis.grid.dv
        assert n_e.sum() * dv == pytest.approx(1.0, rel=1e-6)
        assert n_h.sum() * dv == pytest.approx(1.0, rel=1e-6)

    def test_excitation_dos_integrates_to_count(self, pipeline):
        gs, solver, result = pipeline
        grid = np.linspace(0.0, float(result.energies.max()) * 1.5, 400)
        xdos = excitation_dos(result.energies, grid, broadening=0.005)
        assert np.trapezoid(xdos, grid) == pytest.approx(
            len(result.energies), rel=0.1
        )


class TestPersistencePipeline:
    """SCF -> save -> load -> identical downstream physics."""

    def test_saved_state_reproduces_everything(self, si2_ground_state, tmp_path):
        from repro.dft import load_ground_state, save_ground_state
        from repro.dft.bands import bands_at_k

        path = save_ground_state(si2_ground_state, tmp_path / "si2")
        loaded = load_ground_state(path)

        a = LRTDDFTSolver(si2_ground_state, seed=3).solve(
            "kmeans-isdf", n_excitations=3
        )
        b = LRTDDFTSolver(loaded, seed=3).solve("kmeans-isdf", n_excitations=3)
        np.testing.assert_array_equal(a.energies, b.energies)

        e_a = bands_at_k(si2_ground_state, [0.25, 0.0, 0.25], 6)
        e_b = bands_at_k(loaded, [0.25, 0.0, 0.25], 6)
        np.testing.assert_allclose(e_a, e_b, atol=1e-9)


class TestTDAvsFullvsTriplet:
    """The physics ladder on one system: TDA >= full; triplet <= singlet."""

    def test_ordering_ladder(self, water_ground_state):
        singlet = LRTDDFTSolver(water_ground_state, seed=0)
        triplet = LRTDDFTSolver(water_ground_state, spin="triplet", seed=0)
        e_tda = singlet.solve("naive", n_excitations=1).energies[0]
        e_full = singlet.solve("naive", n_excitations=1, tda=False).energies[0]
        e_trip = triplet.solve("naive", n_excitations=1).energies[0]
        assert e_full <= e_tda + 1e-12
        assert e_trip < e_tda

    def test_all_methods_agree_on_full_casida(self, si2_ground_state):
        solver = LRTDDFTSolver(si2_ground_state, seed=5)
        reference = solver.solve("naive", n_excitations=3, tda=False)
        for method in ("qrcp-isdf", "implicit-kmeans-isdf-lobpcg"):
            res = solver.solve(method, n_excitations=3, tda=False, tol=1e-11)
            rel = np.abs(
                (res.energies - reference.energies[:3]) / reference.energies[:3]
            )
            assert rel.max() < 0.02, method


class TestSerialEqualsDistributedEqualsModel:
    """The three layers of the reproduction agree on one problem."""

    def test_three_way_consistency(self, si8_synthetic):
        from repro.core import HxcKernel, build_vhxc
        from repro.parallel import (
            BlockDistribution1D,
            distributed_build_vhxc,
            spmd_run,
        )

        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space(6, 4)
        kernel = HxcKernel(gs.basis, gs.density)
        serial = build_vhxc(psi_v, psi_c, kernel)
        dist = BlockDistribution1D(gs.basis.n_r, 3)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            return distributed_build_vhxc(
                comm, psi_v[:, sl], psi_c[:, sl], kernel, dist
            )

        results, traffic = spmd_run(3, prog, return_traffic=True)
        np.testing.assert_allclose(results[0], serial, atol=1e-12)

        # The traced alltoall volume equals the model's closed form.
        n_cv = psi_v.shape[0] * psi_c.shape[0]
        pair_dist = BlockDistribution1D(n_cv, 3)
        expected = 2 * sum(
            dist.count(s) * pair_dist.count(d) * 8
            for s in range(3)
            for d in range(3)
            if s != d
        )
        assert traffic.bytes_by_op["alltoall"] == expected


class TestCrossSolverGroundState:
    """LOBPCG, Davidson and dense agree on the KS band problem itself."""

    def test_band_solvers_agree(self, si2_ground_state):
        from repro.dft import KohnShamHamiltonian
        from repro.eigen import davidson, lobpcg
        from repro.utils.rng import default_rng

        gs = si2_ground_state
        ham = KohnShamHamiltonian(gs.basis)
        ham.update_density(gs.density)
        rng = default_rng(0)
        x0 = gs.basis.random_coefficients(6, rng).T
        res_l = lobpcg(
            ham.apply_columns, x0, preconditioner=ham.preconditioner,
            tol=1e-9, max_iter=300,
        )
        res_d = davidson(
            ham.apply_columns, x0, ham.diagonal(), tol=1e-9, max_iter=300
        )
        # Davidson's crude kinetic-diagonal correction converges the last
        # (degenerate) band slowly; compare to its achieved accuracy.
        np.testing.assert_allclose(
            res_l.eigenvalues, res_d.eigenvalues, atol=5e-6
        )
        np.testing.assert_allclose(
            res_l.eigenvalues, gs.energies[:6], atol=1e-6
        )
