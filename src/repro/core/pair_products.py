"""Valence-conduction orbital pair products (the face-splitting product).

The LR-TDDFT Hamiltonian is built from the two-electron integrals of the
pair densities ``rho_vc(r) = psi_v(r) psi_c(r)``.  Arranged as a matrix over
grid points this is the transposed block face-splitting (column-wise
Khatri-Rao) product ``P_vc`` of the paper's Eq. 3, of shape
``(N_r, N_v * N_c)`` — the object whose numerical rank deficiency ISDF
exploits.

Pair ordering convention (used everywhere downstream):
``column (v, c) -> v * N_c + c`` (valence slow, conduction fast).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def pair_index(v: int, c: int, n_c: int) -> int:
    """Flattened column index of pair ``(v, c)``."""
    return v * n_c + c


def pair_products(
    psi_v: np.ndarray, psi_c: np.ndarray, *, dtype=None
) -> np.ndarray:
    """Full pair-product matrix ``Z`` of shape ``(N_r, N_v * N_c)``.

    Parameters
    ----------
    psi_v:
        ``(N_v, N_r)`` valence orbitals in real space.
    psi_c:
        ``(N_c, N_r)`` conduction orbitals in real space.
    dtype:
        Output dtype; ``None`` (default) keeps ``result_type(psi_v, psi_c)``.
        Pass ``numpy.float32`` under the mixed-precision ``pair_fp32``
        policy to materialize the matrix at half the bytes — each entry is
        a single product, so the elementwise relative error is one fp32
        rounding, no accumulation.

    Notes
    -----
    Memory is ``O(N_v N_c N_r)`` — this is exactly the object the paper's
    Table 2 flags as the naive bottleneck; the ISDF path never materializes
    it for large systems (see :mod:`repro.core.fitting`).
    """
    require(psi_v.ndim == 2 and psi_c.ndim == 2, "orbitals must be (n_bands, N_r)")
    require(
        psi_v.shape[1] == psi_c.shape[1],
        f"grid mismatch: {psi_v.shape[1]} vs {psi_c.shape[1]}",
    )
    n_v, n_r = psi_v.shape
    n_c = psi_c.shape[0]
    if dtype is None:
        dtype = np.result_type(psi_v, psi_c)
    else:
        dtype = np.dtype(dtype)
        psi_v = np.asarray(psi_v, dtype=dtype)
        psi_c = np.asarray(psi_c, dtype=dtype)
    # Write the (N_r, N_v * N_c) layout directly: one einsum into a
    # preallocated C-contiguous array instead of the broadcast-product +
    # reshape + transpose-copy round trip, which peaked at 2x the matrix.
    z = np.empty((n_r, n_v * n_c), dtype=dtype)
    np.einsum("vr,cr->rvc", psi_v, psi_c, out=z.reshape(n_r, n_v, n_c))
    return z


def pair_weights(psi_v: np.ndarray, psi_c: np.ndarray) -> np.ndarray:
    """Row weights ``w(r) = (sum_v |psi_v|^2)(sum_c |psi_c|^2)`` (Eq. 14).

    This equals the squared 2-norm of each row of ``Z`` but costs
    ``O((N_v + N_c) N_r)`` instead of ``O(N_v N_c N_r)`` — the separability
    that makes the K-Means weight evaluation cheap.
    """
    rho_v = np.einsum("vr,vr->r", psi_v, psi_v)
    rho_c = np.einsum("cr,cr->r", psi_c, psi_c)
    return rho_v * rho_c


def pair_energies(eps_v: np.ndarray, eps_c: np.ndarray) -> np.ndarray:
    """Flattened transition energies ``eps_c - eps_v`` in pair ordering."""
    return (eps_c[None, :] - eps_v[:, None]).reshape(-1)
