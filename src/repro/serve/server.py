"""The calculation server: async jobs, content-addressed cache, warm starts.

:class:`CalculationServer` accepts :class:`~repro.api.CalculationRequest`
submissions and executes them on worker threads through the same
:func:`repro.api.execute_request` path the synchronous facade uses, layered
with three reuse mechanisms (cheapest first):

1. **Exact cache hit** — the request's :meth:`~repro.api.
   CalculationRequest.cache_key` is already in the :class:`~repro.serve.
   store.ResultStore`: the stored result is returned bit-identically, the
   job completes at submission time, zero SCF iterations run.
2. **In-flight dedup** — an identical request is *currently running or
   queued*: the new submission attaches to the existing job instead of
   queueing a duplicate.
3. **Warm start** — a *different* request whose structure is
   warm-compatible with a cached ground state (same lattice/species/
   cutoff/bands, perturbed positions): the nearest cached ground state
   seeds the SCF (density + orbitals + a displacement-derived residual
   hint), generalizing the batch engine's frame-to-frame warm chain to
   arbitrary submission order.  A tddft/rt request whose *embedded SCF
   subrequest* hits exactly skips its ground-state stage entirely.

Scheduling is delegated to :class:`~repro.serve.queue.JobQueue` (tenant
round-robin + priority + admission control); per-job progress streams
through :class:`~repro.serve.events.EventChannel`.
"""

from __future__ import annotations

import threading
import time

from repro.api.request import CalculationRequest, execute_request, structure_to_dict
from repro.dft.scf import SCFWarmStart
from repro.serve.events import EventChannel
from repro.serve.queue import JobQueue
from repro.serve.store import ResultStore, resolved_n_bands

__all__ = [
    "CalculationServer",
    "JobCancelled",
    "JobFailed",
    "JobHandle",
    "JOB_STATES",
]

#: Legal job states, in lifecycle order (terminal: done/failed/cancelled).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Floor on the warm-start residual hint (matches the batch engine's
#: ``residual_hint_floor`` default) — a zero hint would claim an exact
#: restart the mixer has not earned.
_WARM_HINT_FLOOR = 3e-5

#: Conversion from RMS atomic displacement (bohr) to an expected initial
#: density residual per electron.  Deliberately pessimistic (slope 1):
#: overestimating the residual only costs one slightly-too-loose band
#: solve, underestimating floors the convergence check.
_WARM_HINT_SLOPE = 1.0


class JobFailed(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job's worker raised."""


class JobCancelled(RuntimeError):
    """Raised by :meth:`JobHandle.result` for a cancelled job; also used
    internally as the cooperative cancellation signal inside workers."""


class _Job:
    """Internal mutable job record (guarded by the server lock)."""

    def __init__(self, job_id, request, key, tenant, priority):
        self.id = job_id
        self.request = request
        self.key = key
        self.tenant = tenant
        self.priority = priority
        self.status = "queued"
        self.result = None
        self.error: str | None = None
        self.cache_hit = False
        self.warm = False
        self.warm_rms: float | None = None
        self.scf_iterations = 0
        self.eigensolver_iterations = 0
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self.cancel_requested = False
        self.done = threading.Event()
        self.channel = EventChannel(job_id)

    def record(self) -> dict:
        """JSON-able status snapshot (the client's ``status`` payload)."""
        return {
            "id": self.id,
            "kind": self.request.kind,
            "key": self.key,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "warm": self.warm,
            "warm_rms": self.warm_rms,
            "scf_iterations": self.scf_iterations,
            "eigensolver_iterations": self.eigensolver_iterations,
            "error": self.error,
        }


class JobHandle:
    """The submitter's view of one job.

    Cheap value object: multiple handles may reference the same underlying
    job (in-flight dedup), and a handle stays valid after the job ends.
    """

    def __init__(self, server: "CalculationServer", job: _Job) -> None:
        self._server = server
        self._job = job

    @property
    def id(self) -> str:
        return self._job.id

    @property
    def status(self) -> str:
        return self._job.status

    @property
    def cache_hit(self) -> bool:
        """Whether this request was served from the result store."""
        return self._job.cache_hit

    @property
    def warm(self) -> bool:
        """Whether a cached ground state warm-started the execution."""
        return self._job.warm

    def record(self) -> dict:
        """JSON-able status snapshot."""
        return self._job.record()

    def result(self, timeout: float | None = None):
        """Block until the job ends and return its result object.

        Raises :class:`JobFailed` / :class:`JobCancelled` on those
        terminal states, and :class:`TimeoutError` if ``timeout`` elapses
        first.
        """
        if not self._job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {self._job.id} still {self._job.status!r} "
                f"after {timeout}s"
            )
        if self._job.status == "failed":
            raise JobFailed(f"job {self._job.id}: {self._job.error}")
        if self._job.status == "cancelled":
            raise JobCancelled(f"job {self._job.id} was cancelled")
        return self._job.result

    def cancel(self) -> bool:
        """Request cancellation; see :meth:`CalculationServer.cancel`."""
        return self._server.cancel(self._job.id)

    def events(self):
        """Subscription over this job's event stream (history replayed)."""
        return self._job.channel.subscribe()

    def history(self) -> tuple:
        """Events published so far."""
        return self._job.channel.history()


class CalculationServer:
    """In-process async job server over the unified request API.

    Parameters
    ----------
    store:
        Result cache; defaults to a fresh in-memory
        :class:`~repro.serve.store.ResultStore`.  Pass one with a
        ``directory`` to persist across server lifetimes.
    n_workers:
        Worker threads executing jobs (each runs one job at a time).
    max_depth / max_per_tenant:
        Admission bounds, forwarded to :class:`~repro.serve.queue.JobQueue`.
    warm_start:
        Enable nearest-cached-ground-state warm starts (exact cache hits
        and in-flight dedup are always on; they cannot change results).

    Notes
    -----
    Use as a context manager or call :meth:`shutdown`; workers are
    non-daemon threads and outstanding queued jobs are cancelled on
    shutdown.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        n_workers: int = 1,
        max_depth: int = 64,
        max_per_tenant: int | None = None,
        warm_start: bool = True,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.warm_start = bool(warm_start)
        self._queue = JobQueue(max_depth=max_depth, max_per_tenant=max_per_tenant)
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        #: cache key -> job currently queued/running under that key.
        self._inflight: dict[str, _Job] = {}
        self._counter = 0
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "cache_hits": 0,
            "deduplicated": 0,
            "warm_starts": 0,
        }
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"serve-worker-{i}")
            for i in range(max(1, int(n_workers)))
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        request: CalculationRequest,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> JobHandle:
        """Submit a request; returns immediately with a :class:`JobHandle`.

        Raises :class:`~repro.serve.queue.AdmissionError` when the queue
        refuses the job (never for cache hits or deduplicated submissions,
        which consume no queue slot).
        """
        key = request.cache_key()
        # A disk-backed store hits the filesystem in get(): look up before
        # taking the server lock.  The store only grows, so the worst a
        # racing put can cost is one redundant (bit-identical) execution.
        cached = self.store.get(key)
        with self._lock:
            if self._shutdown:
                raise RuntimeError("server is shut down")
            self._stats["submitted"] += 1

            if cached is not None:
                # Exact hit: job is born done, serving the stored object.
                job = self._new_job(request, key, tenant, priority)
                job.status = "done"
                job.result = cached.result
                job.cache_hit = True
                job.finished_at = time.time()
                self._stats["cache_hits"] += 1
                self._stats["completed"] += 1
                job.channel.publish("cache_hit", {"key": key})
                job.channel.publish("done", {"cache_hit": True, "scf_iterations": 0})
                job.done.set()
                return JobHandle(self, job)

            inflight = self._inflight.get(key)
            if inflight is not None:
                # Identical request already queued/running: attach to it.
                self._stats["deduplicated"] += 1
                return JobHandle(self, inflight)

            job = self._new_job(request, key, tenant, priority)
            # Admission control may refuse — before any state is published.
            try:
                self._queue.push(job, tenant=tenant, priority=priority)
            except Exception:
                del self._jobs[job.id]
                raise
            self._inflight[key] = job
            job.channel.publish(
                "queued", {"tenant": tenant, "priority": priority, "key": key}
            )
            return JobHandle(self, job)

    def _new_job(self, request, key, tenant, priority) -> _Job:
        self._counter += 1
        job = _Job(f"job-{self._counter:06d}", request, key, tenant, priority)
        self._jobs[job.id] = job
        return job

    # -- inspection ---------------------------------------------------------

    def handle(self, job_id: str) -> JobHandle:
        """Re-attach to a job by id (the client transport uses this)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return JobHandle(self, job)

    def stats(self) -> dict:
        """Counters snapshot (submitted/completed/cache_hits/...)."""
        with self._lock:
            return dict(self._stats)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: immediate when queued, cooperative when running.

        A queued job is pulled from the queue and terminally cancelled.  A
        running job gets its cancel flag set and aborts at its next
        progress point (SCF/eigensolver iteration boundary); kinds without
        progress hooks run to completion (the result is then discarded
        from the job but still cached — it is correct).  Returns whether
        the job can still be affected.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if job.status == "queued":
                removed = self._queue.remove(lambda item: item is job)
                if removed:
                    self._finish(job, "cancelled")
                    return True
                # Popped by a worker between our check and remove: fall
                # through to the cooperative path.
            if job.status == "running":
                job.cancel_requested = True
                return True
        return False

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=0.1)
            if job is None:
                if self._shutdown:
                    return
                continue
            self._execute(job)

    def _execute(self, job: _Job) -> None:
        with self._lock:
            if job.cancel_requested:
                self._finish(job, "cancelled")
                return
            job.status = "running"
        job.channel.publish("running", {})

        def progress(info: dict) -> None:
            if job.cancel_requested:
                raise JobCancelled(job.id)
            payload = dict(info)
            stage = payload.pop("stage", "progress")
            job.channel.publish("progress", {"stage": stage, **payload})

        try:
            outcome = self._run(job, progress)
        except JobCancelled:
            with self._lock:
                self._finish(job, "cancelled")
            return
        except Exception as exc:  # repro-lint: disable=no-blind-except -- job isolation boundary: any worker failure must mark this job failed, never kill the worker thread or sibling jobs
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, "failed", {"error": job.error})
            return

        # Caching writes npz payloads on disk-backed stores: do it outside
        # the server lock so submissions/cancels stay responsive.  The job
        # is only marked done afterwards, so result() waiters still find
        # the store populated.
        self._store_outcome(job, outcome)
        with self._lock:
            job.result = outcome.result
            job.scf_iterations = outcome.scf_iterations
            job.eigensolver_iterations = outcome.eigensolver_iterations
            if job.warm:
                self._stats["warm_starts"] += 1
            self._finish(
                job,
                "done",
                {
                    "cache_hit": False,
                    "warm": job.warm,
                    "scf_iterations": outcome.scf_iterations,
                },
            )

    def _run(self, job: _Job, progress):
        """Execute one job with the best available reuse."""
        request = job.request

        if request.kind == "batch":
            seed = self._nearest(structure_to_dict(request.structure[0]), request.batch.scf)
            if seed is not None:
                job.warm, job.warm_rms = True, seed[1]
                job.channel.publish(
                    "warm_start", {"rms_displacement": seed[1], "stage": "batch-seed"}
                )
            return execute_request(
                request,
                seed_ground_state=seed[0] if seed is not None else None,
                progress=progress,
            )

        # scf/tddft/rt: try the embedded ground-state stage's exact key
        # first, then the nearest warm-compatible geometry.
        ground_state = None
        scf_warm = None
        if request.kind in ("tddft", "rt"):
            sub = self.store.get(request.scf_subrequest().cache_key())
            if sub is not None and sub.ground_state is not None:
                ground_state = sub.ground_state
                job.channel.publish("cache_hit", {"stage": "scf-subrequest"})
        if ground_state is None:
            found = self._nearest(structure_to_dict(request.structure), request.scf)
            if found is not None:
                gs, rms = found
                scf_warm = SCFWarmStart(
                    density=gs.density,
                    orbitals_real=gs.orbitals_real,
                    residual_hint=max(_WARM_HINT_SLOPE * rms, _WARM_HINT_FLOOR),
                )
                job.warm, job.warm_rms = True, rms
                job.channel.publish("warm_start", {"rms_displacement": rms})

        outcome = execute_request(
            request,
            ground_state=ground_state,
            scf_warm=scf_warm,
            progress=progress,
        )
        outcome.warm = outcome.warm or ground_state is not None
        return outcome

    def _nearest(self, structure: dict, scf_config):
        if not self.warm_start or scf_config is None:
            return None
        return self.store.nearest_ground_state(structure, scf_config)

    def _store_outcome(self, job: _Job, outcome) -> None:
        """Cache the result, plus the ground state under its own SCF key.

        Called *without* the server lock (the store locks itself): puts on
        a persistent store write to disk.
        """
        request = job.request
        meta = {"kind": request.kind}
        if request.kind != "batch" and outcome.ground_state is not None:
            meta.update(
                structure=structure_to_dict(request.structure),
                ecut=float(request.scf.ecut),
                n_bands=resolved_n_bands(request.scf, request.structure.species),
            )
        self.store.put(
            job.key, outcome.result, ground_state=outcome.ground_state, meta=meta
        )
        if request.kind in ("tddft", "rt") and outcome.ground_state is not None:
            sub_key = request.scf_subrequest().cache_key()
            if sub_key not in self.store:
                self.store.put(
                    sub_key,
                    outcome.ground_state,
                    ground_state=outcome.ground_state,
                    meta={**meta, "kind": "scf"},
                )

    def _finish(self, job: _Job, status: str, payload: dict | None = None) -> None:
        """Terminal transition (caller holds the lock)."""
        job.status = status
        job.finished_at = time.time()
        self._inflight.pop(job.key, None)
        key = {"done": "completed", "failed": "failed", "cancelled": "cancelled"}[
            status
        ]
        self._stats[key] += 1
        job.channel.publish(status, payload or {})
        job.done.set()

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, cancel queued jobs, join the workers."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            while True:
                job = self._queue.pop(timeout=0)
                if job is None:
                    break
                self._finish(job, "cancelled")
        self._queue.close()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "CalculationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
