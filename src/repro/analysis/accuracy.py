"""Accuracy comparison tables (the paper's Table 5).

Table 5 compares three solvers on the lowest excitation energies:
reference (Quantum Espresso in the paper; our dense naive solve here — see
DESIGN.md), the naive LR-TDDFT code, and the ISDF-LOBPCG optimized code,
with relative errors ``Delta E = (E_ref - E) / E_ref``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class AccuracyRow:
    """One excitation's entry of a Table 5-style comparison."""

    reference: float
    naive: float
    isdf_lobpcg: float

    @property
    def delta_e1(self) -> float:
        """Relative error of the naive solver vs the reference (percent)."""
        return 100.0 * (self.reference - self.naive) / self.reference

    @property
    def delta_e2(self) -> float:
        """Relative error of ISDF-LOBPCG vs the reference (percent)."""
        return 100.0 * (self.reference - self.isdf_lobpcg) / self.reference


def accuracy_table(
    reference: np.ndarray,
    naive: np.ndarray,
    isdf_lobpcg: np.ndarray,
    n_rows: int = 3,
) -> list[AccuracyRow]:
    """Assemble the lowest-``n_rows`` comparison (Table 5 layout)."""
    require(
        len(reference) >= n_rows
        and len(naive) >= n_rows
        and len(isdf_lobpcg) >= n_rows,
        f"need at least {n_rows} excitations from every solver",
    )
    return [
        AccuracyRow(float(reference[i]), float(naive[i]), float(isdf_lobpcg[i]))
        for i in range(n_rows)
    ]


def format_accuracy_table(rows: list[AccuracyRow], title: str) -> str:
    """Render rows in the paper's Table 5 column layout."""
    lines = [
        title,
        f"{'Reference':>12s} {'LR-TDDFT':>12s} {'ISDF-LOBPCG':>12s} "
        f"{'dE1 (%)':>9s} {'dE2 (%)':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.reference:12.6f} {row.naive:12.6f} {row.isdf_lobpcg:12.6f} "
            f"{row.delta_e1:9.3f} {row.delta_e2:9.3f}"
        )
    return "\n".join(lines)
