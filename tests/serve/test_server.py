"""CalculationServer end-to-end: cache hits, dedup, warm starts, lifecycle.

Everything here runs real (tiny) calculations through worker threads, so
the whole module carries the ``serve`` marker.
"""

import numpy as np
import pytest

from repro.api import CalculationRequest, SCFConfig, TDDFTConfig
from repro.pw.cell import UnitCell
from repro.serve import (
    CalculationServer,
    JobFailed,
    ResultStore,
    ServeClient,
)

pytestmark = pytest.mark.serve

_SCF = SCFConfig(ecut=4.0, n_bands=4, tol=1e-6, seed=0)


def _h2(z_offset=0.0):
    return UnitCell(
        10.0 * np.eye(3),
        ("H", "H"),
        np.array([[0.5, 0.5, 0.43 + z_offset], [0.5, 0.5, 0.57 + z_offset]]),
    )


def _scf_request(z_offset=0.0, scf=_SCF):
    return CalculationRequest(kind="scf", structure=_h2(z_offset), scf=scf)


class TestReuseTiers:
    def test_exact_hit_is_bit_identical_and_free(self):
        request = _scf_request()
        with CalculationServer() as server:
            cold = request.submit(server)
            gs_cold = cold.result(timeout=300)
            assert not cold.cache_hit
            assert cold.record()["scf_iterations"] > 0

            hit = request.submit(server)
            gs_hit = hit.result(timeout=300)
            assert hit.cache_hit
            assert hit.status == "done"
            assert hit.record()["scf_iterations"] == 0
            # Bit-identical: the very same stored object is served.
            assert gs_hit.total_energy == gs_cold.total_energy
            np.testing.assert_array_equal(gs_hit.density, gs_cold.density)
            assert server.stats()["cache_hits"] == 1

    def test_inflight_dedup_attaches_to_running_job(self):
        request = _scf_request()
        with CalculationServer() as server:
            first = request.submit(server)
            second = request.submit(server)  # identical, still in flight
            assert second.id == first.id
            assert second.result(timeout=300) is first.result(timeout=300)
            stats = server.stats()
            # Deduplicated... unless the first finished before the second
            # submission (then it is a cache hit). Either way: one execution.
            assert stats["deduplicated"] + stats["cache_hits"] == 1
            assert stats["completed"] == 1

    def test_perturbed_structure_warm_starts(self):
        with CalculationServer() as server:
            cold = _scf_request().submit(server)
            cold.result(timeout=300)
            warm = _scf_request(z_offset=1e-3).submit(server)
            warm.result(timeout=300)
            assert not warm.cache_hit
            assert warm.warm
            record = warm.record()
            assert record["warm_rms"] == pytest.approx(1e-2, rel=1e-6)
            assert 0 < record["scf_iterations"] <= cold.record()["scf_iterations"]
            assert server.stats()["warm_starts"] == 1

    def test_warm_start_can_be_disabled(self):
        with CalculationServer(warm_start=False) as server:
            _scf_request().submit(server).result(timeout=300)
            second = _scf_request(z_offset=1e-3).submit(server)
            second.result(timeout=300)
            assert not second.warm

    def test_tddft_reuses_cached_ground_state(self):
        tddft = CalculationRequest(
            kind="tddft",
            structure=_h2(),
            scf=_SCF,
            tddft=TDDFTConfig(
                method="naive", n_excitations=2, n_valence=1, n_conduction=2, seed=0
            ),
        )
        with CalculationServer() as server:
            _scf_request().submit(server).result(timeout=300)
            job = tddft.submit(server)
            result = job.result(timeout=300)
            # The embedded SCF stage hit the cache: zero SCF iterations ran.
            assert job.record()["scf_iterations"] == 0
            assert result.energies.shape == (2,)
            types = [e.type for e in job.history()]
            assert "cache_hit" in types  # the scf-subrequest hit event


class TestLifecycle:
    def test_events_tell_the_job_story(self):
        with CalculationServer() as server:
            job = _scf_request().submit(server)
            job.result(timeout=300)
            types = [e.type for e in job.history()]
            assert types[0] == "queued"
            assert "running" in types
            assert "progress" in types
            assert types[-1] == "done"
            progress = [e for e in job.history() if e.type == "progress"]
            assert all(e.payload["stage"] == "scf" for e in progress)

    def test_failed_job_raises_with_cause(self):
        # More bands than plane waves: fails inside the worker, not at
        # submission — the error must surface through result().
        bad = _scf_request(scf=SCFConfig(ecut=1.0, n_bands=500, tol=1e-6))
        with CalculationServer() as server:
            job = bad.submit(server)
            with pytest.raises(JobFailed):
                job.result(timeout=300)
            assert job.status == "failed"
            assert job.record()["error"]
            assert server.stats()["failed"] == 1

    def test_shutdown_cancels_queued_jobs(self):
        server = CalculationServer()
        handles = [
            _scf_request(z_offset=0.01 * i).submit(server) for i in range(4)
        ]
        server.shutdown()
        statuses = {h.status for h in handles}
        assert statuses <= {"done", "cancelled"}
        assert "cancelled" in statuses or all(h.status == "done" for h in handles)
        with pytest.raises(RuntimeError, match="shut down"):
            _scf_request().submit(server)

    def test_unknown_job_id(self):
        with CalculationServer() as server:
            with pytest.raises(KeyError, match="job-999999"):
                server.handle("job-999999")


class TestPersistentStore:
    def test_second_server_serves_from_disk(self, tmp_path):
        request = _scf_request()
        with CalculationServer(ResultStore(tmp_path)) as server:
            gs = request.submit(server).result(timeout=300)
        # A fresh server over the same directory: pure cache hit, no work.
        with CalculationServer(ResultStore(tmp_path)) as server:
            job = request.submit(server)
            replay = job.result(timeout=300)
            assert job.cache_hit
            assert replay.total_energy == gs.total_energy
            np.testing.assert_array_equal(replay.density, gs.density)
            # And the disk entry warm-starts new geometries too.
            warm = _scf_request(z_offset=1e-3).submit(server)
            warm.result(timeout=300)
            assert warm.warm


class TestClient:
    def test_wire_round_trip_preserves_cache_identity(self):
        request = _scf_request()
        with CalculationServer() as server:
            client = ServeClient(server)
            job_id = client.submit(request.to_dict(), tenant="a")
            client.result(job_id, timeout=300)
            # Same request as an object: the wire copy hashed identically.
            second_id = client.submit(request)
            client.result(second_id, timeout=300)
            assert client.status(second_id)["cache_hit"]
            assert client.status(second_id)["scf_iterations"] == 0

    def test_status_and_events_are_json_able(self):
        import json

        with CalculationServer() as server:
            client = ServeClient(server)
            job_id = client.submit(_scf_request())
            client.result(job_id, timeout=300)
            json.dumps(client.status(job_id))
            events = client.events(job_id)
            json.dumps(events)
            assert events[0]["type"] == "queued"
            assert events[-1]["type"] == "done"
