"""Tests for the Table 5 accuracy machinery."""

import numpy as np
import pytest

from repro.analysis import AccuracyRow, accuracy_table
from repro.analysis.accuracy import format_accuracy_table


def test_delta_definitions_match_eq_19():
    row = AccuracyRow(reference=0.40, naive=0.39, isdf_lobpcg=0.41)
    assert row.delta_e1 == pytest.approx(100 * (0.40 - 0.39) / 0.40)
    assert row.delta_e2 == pytest.approx(100 * (0.40 - 0.41) / 0.40)


def test_table_assembly():
    ref = np.array([0.1, 0.2, 0.3, 0.4])
    rows = accuracy_table(ref, ref * 1.01, ref * 0.99)
    assert len(rows) == 3
    assert rows[0].delta_e1 == pytest.approx(-1.0)
    assert rows[0].delta_e2 == pytest.approx(1.0)


def test_table_requires_enough_rows():
    with pytest.raises(ValueError):
        accuracy_table(np.array([0.1]), np.array([0.1]), np.array([0.1]))


def test_format_contains_columns():
    rows = accuracy_table(
        np.array([0.1, 0.2, 0.3]),
        np.array([0.1, 0.2, 0.3]),
        np.array([0.1, 0.2, 0.3]),
    )
    text = format_accuracy_table(rows, "Si64")
    assert "Si64" in text
    assert "ISDF-LOBPCG" in text
    assert text.count("\n") == 4


def test_paper_table5_rows_are_consistent():
    """The paper's own Table 5 entries satisfy the Eq. 19 definitions."""
    from repro.data import PAPER_TABLE5_H2O

    for ref, naive, isdf, d1, d2 in PAPER_TABLE5_H2O:
        row = AccuracyRow(ref, naive, isdf)
        assert row.delta_e1 == pytest.approx(d1, abs=5e-3)
        assert row.delta_e2 == pytest.approx(d2, abs=5e-3)
