"""Section 4's memory claims: the implicit method vs the naive one.

Two layers: the analytic per-process footprint across the paper's silicon
series (the "nearly 2 orders of magnitude" claim and the 32 GB example),
and *measured* peak allocation of the real Python solvers via
``tracemalloc`` on a scaled system.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import LRTDDFTSolver
from repro.perf import silicon_workload


def test_memory_model_table(benchmark, save_table):
    def run():
        rows = []
        for n in (64, 216, 512, 1000, 4096):
            w = silicon_workload(n)
            rows.append(
                (w.label, w.memory_naive_bytes(), w.memory_implicit_bytes())
            )
        return rows

    rows = benchmark(run)
    lines = [
        "Memory model — naive vs implicit (paper nominal scaling,",
        "N_v ~ N_c ~ 2 N_atoms, N_mu = 8 N_v)",
        "",
        f"{'system':<8s} {'naive':>12s} {'implicit':>12s} {'reduction':>10s}",
    ]
    for label, naive, implicit in rows:
        lines.append(
            f"{label:<8s} {naive / 2**30:10.1f}GB {implicit / 2**30:10.2f}GB "
            f"{naive / implicit:9.0f}x"
        )
    lines += [
        "",
        "Section 4's example: N_v = N_c = 256 double precision ->",
        f"H is {(256 * 256) ** 2 * 8 / 2**30:.1f} GB per process (paper: 32 GB).",
    ]
    save_table("memory_model", "\n".join(lines))

    for label, naive, implicit in rows[2:]:
        assert naive / implicit > 100  # ~2 orders of magnitude


def test_measured_peak_memory(benchmark, si8_state, save_table):
    """tracemalloc peak of the naive vs the implicit solver on the same
    problem: the implicit path must allocate far less."""
    solver = LRTDDFTSolver(si8_state, seed=0)

    def measure(method, **kwargs):
        tracemalloc.start()
        solver.solve(method, n_excitations=4, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    naive_peak = measure("naive")
    implicit_peak = measure(
        "implicit-kmeans-isdf-lobpcg", n_mu=max(8, solver.n_pairs // 4)
    )
    benchmark.pedantic(lambda: measure("naive"), rounds=1, iterations=1)

    lines = [
        "Measured peak allocations (tracemalloc, synthetic Si_8 workload)",
        "",
        f"N_cv = {solver.n_pairs}, N_r = {solver.basis.n_r}",
        f"naive solver:    {naive_peak / 2**20:8.1f} MB "
        "(pair matrix + dense H)",
        f"implicit solver: {implicit_peak / 2**20:8.1f} MB "
        "(Theta + Vtilde, never H)",
        f"reduction:       {naive_peak / implicit_peak:8.1f}x",
    ]
    save_table("memory_measured", "\n".join(lines))

    assert implicit_peak < naive_peak
