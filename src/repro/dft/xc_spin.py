"""Spin-resolved LSDA and the spin-flip (triplet) ALDA kernel.

Extension beyond the paper (which is spin-restricted): the spin-polarized
exchange-correlation energy ``e_xc(n, zeta)`` in the Perdew-Zunger 1981
parametrization, with the von Barth-Hedin interpolation

    eps_c(rs, zeta) = eps_c^P(rs) + f(zeta) [eps_c^F(rs) - eps_c^P(rs)],
    f(zeta) = [(1+zeta)^{4/3} + (1-zeta)^{4/3} - 2] / (2^{4/3} - 2),

and the two second-derivative kernels a closed-shell LR-TDDFT needs:

* singlet: ``f_xc^S = d^2 e_xc / d n^2`` at zeta = 0 — identical to
  :func:`repro.dft.xc.lda_kernel` (cross-checked in the tests), and
* triplet: ``f_xc^T = d^2 e_xc / d m^2`` at m = 0 (m = spin density) —
  the spin-stiffness kernel that couples spin-flip excitations.  Triplet
  excitations see no Hartree term, so ``H_T = D + 2 P^T f_xc^T P``.

All derivatives are analytic and validated against finite differences of
``e_xc`` in the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.dft.xc import DENSITY_FLOOR, _pz_eps_derivs

_CX = -0.75 * (3.0 / np.pi) ** (1.0 / 3.0)

# PZ81 ferromagnetic-branch constants (unpolarized ones live in repro.dft.xc).
_GAMMA_F = -0.0843
_BETA1_F = 1.3981
_BETA2_F = 0.2611
_A_F = 0.01555
_B_F = -0.0269
_C_F = 0.0007
_D_F = -0.0048

#: f''(0) of the von Barth-Hedin interpolation function.
FPP0 = 8.0 / (9.0 * (2.0 ** (4.0 / 3.0) - 2.0))


def _clip(n: np.ndarray) -> np.ndarray:
    return np.maximum(np.asarray(n, dtype=float), DENSITY_FLOOR)


def _rs(n: np.ndarray) -> np.ndarray:
    return (3.0 / (4.0 * np.pi * n)) ** (1.0 / 3.0)


def _pz_eps_ferro(rs: np.ndarray) -> np.ndarray:
    """PZ81 correlation energy per particle of the fully polarized gas."""
    eps = np.empty_like(rs)
    high = rs < 1.0
    if high.any():
        r = rs[high]
        eps[high] = _A_F * np.log(r) + _B_F + _C_F * r * np.log(r) + _D_F * r
    low = ~high
    if low.any():
        r = rs[low]
        eps[low] = _GAMMA_F / (1.0 + _BETA1_F * np.sqrt(r) + _BETA2_F * r)
    return eps


def _vbh_interpolation(zeta: np.ndarray) -> np.ndarray:
    """von Barth-Hedin f(zeta)."""
    zeta = np.clip(zeta, -1.0, 1.0)
    return ((1.0 + zeta) ** (4.0 / 3.0) + (1.0 - zeta) ** (4.0 / 3.0) - 2.0) / (
        2.0 ** (4.0 / 3.0) - 2.0
    )


def lsda_energy_density(n: np.ndarray, zeta: np.ndarray) -> np.ndarray:
    """XC energy per particle ``eps_xc(n, zeta)``.

    Exchange is exactly spin-scaled; correlation uses PZ81 para/ferro
    branches with the von Barth-Hedin interpolation.
    """
    n = _clip(n)
    zeta = np.clip(np.asarray(zeta, dtype=float), -1.0, 1.0)
    phi = 0.5 * ((1.0 + zeta) ** (4.0 / 3.0) + (1.0 - zeta) ** (4.0 / 3.0))
    eps_x = _CX * n ** (1.0 / 3.0) * phi
    rs = _rs(n)
    eps_c_p, _, _ = _pz_eps_derivs(rs)
    eps_c_f = _pz_eps_ferro(rs)
    eps_c = eps_c_p + _vbh_interpolation(zeta) * (eps_c_f - eps_c_p)
    return eps_x + eps_c


def lsda_potentials(
    n_up: np.ndarray, n_down: np.ndarray, *, step: float = 1e-6
) -> tuple[np.ndarray, np.ndarray]:
    """Spin-resolved potentials ``v_xc^sigma = d e_xc / d n_sigma``.

    Evaluated by high-accuracy central differences of the analytic energy
    (the potentials are only needed for spin-polarized SCF extensions and
    diagnostics; the LR-TDDFT kernels below are fully analytic).
    """
    n_up = _clip(n_up)
    n_down = _clip(n_down)

    def energy(nu, nd):
        n = nu + nd
        zeta = (nu - nd) / n
        return n * lsda_energy_density(n, zeta)

    h_up = step * n_up
    h_down = step * n_down
    v_up = (energy(n_up + h_up, n_down) - energy(n_up - h_up, n_down)) / (2 * h_up)
    v_down = (energy(n_up, n_down + h_down) - energy(n_up, n_down - h_down)) / (
        2 * h_down
    )
    return v_up, v_down


def lda_kernel_triplet(n: np.ndarray) -> np.ndarray:
    """Triplet (spin-flip) ALDA kernel ``f_xc^T = d^2 e_xc / d m^2 |_{m=0}``.

    With ``e_xc = n eps_xc(n, zeta)`` and ``m = n zeta``:
    ``d^2 e/d m^2 = (1/n) d^2 eps_xc/d zeta^2 |_{zeta=0}``.

    Exchange: ``d^2 phi/d zeta^2(0) = 4/9`` gives
    ``(4/9) C_x n^{1/3} / n``; correlation contributes
    ``f''(0) (eps_c^F - eps_c^P) / n`` (the PZ81 spin stiffness).
    """
    raw = np.asarray(n, dtype=float)
    n = _clip(raw)
    fx = (4.0 / 9.0) * _CX * n ** (1.0 / 3.0) / n
    rs = _rs(n)
    eps_c_p, _, _ = _pz_eps_derivs(rs)
    eps_c_f = _pz_eps_ferro(rs)
    fc = FPP0 * (eps_c_f - eps_c_p) / n
    out = fx + fc
    out[raw < DENSITY_FLOOR] = 0.0
    return out
