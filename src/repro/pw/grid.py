"""Real-space FFT grids.

The paper fixes the grid by the kinetic-energy cutoff:

    (N_r)_i = sqrt(2 * E_cut) * L_i / pi          (Section 6.1)

e.g. Si_4096 at E_cut = 20 Ha gives 166^3 = 4,574,296 points.  We use the
same rule, rounded up to the next 2/3/5-smooth integer so numpy's pocketfft
stays on fast code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.pw.cell import UnitCell
from repro.utils.validation import check_positive


def good_fft_size(n: int) -> int:
    """Smallest 5-smooth integer >= ``n`` (and >= 2)."""
    n = max(int(n), 2)
    while True:
        m = n
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return n
        n += 1


def grid_shape_for_cutoff(cell: UnitCell, ecut: float) -> tuple[int, int, int]:
    """Grid dimensions from the paper's rule, rounded to FFT-friendly sizes."""
    check_positive(ecut, "ecut")
    gmax = np.sqrt(2.0 * ecut)
    raw = np.ceil(gmax * cell.lengths / np.pi).astype(int)
    return tuple(good_fft_size(int(n)) for n in raw)  # type: ignore[return-value]


@dataclass(frozen=True)
class RealSpaceGrid:
    """A uniform real-space grid over a :class:`UnitCell`."""

    cell: UnitCell
    shape: tuple[int, int, int]

    @classmethod
    def from_cutoff(cls, cell: UnitCell, ecut: float) -> "RealSpaceGrid":
        """Build the grid mandated by ``ecut`` via the paper's rule."""
        return cls(cell, grid_shape_for_cutoff(cell, ecut))

    @property
    def n_points(self) -> int:
        """Total number of grid points N_r."""
        n1, n2, n3 = self.shape
        return n1 * n2 * n3

    @property
    def dv(self) -> float:
        """Quadrature weight per point, Omega / N_r."""
        return self.cell.volume / self.n_points

    @cached_property
    def fractional_points(self) -> np.ndarray:
        """``(N_r, 3)`` fractional coordinates in C (row-major) FFT order."""
        n1, n2, n3 = self.shape
        f1 = np.arange(n1) / n1
        f2 = np.arange(n2) / n2
        f3 = np.arange(n3) / n3
        mesh = np.stack(np.meshgrid(f1, f2, f3, indexing="ij"), axis=-1)
        return mesh.reshape(-1, 3)

    @cached_property
    def cartesian_points(self) -> np.ndarray:
        """``(N_r, 3)`` Cartesian coordinates in Bohr, same ordering."""
        return self.fractional_points @ self.cell.lattice

    def reshape_to_grid(self, flat: np.ndarray) -> np.ndarray:
        """View a ``(..., N_r)`` array as ``(..., n1, n2, n3)``."""
        return flat.reshape(flat.shape[:-1] + self.shape)

    def flatten_from_grid(self, grid: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`reshape_to_grid`."""
        return grid.reshape(grid.shape[:-3] + (self.n_points,))

    def integrate(self, values: np.ndarray) -> float | complex | np.ndarray:
        """Trapezoid-free periodic quadrature: ``dV * sum`` over the last axis."""
        return values.sum(axis=-1) * self.dv
