"""Marker decorator for allocation-disciplined hot kernels.

``@hot_kernel`` is a zero-overhead annotation: it tags the function so the
``no-alloc-in-hot`` lint pass (:mod:`repro.lint.rules`) holds it to the
allocation-free contract of ``docs/performance.md`` — no fresh numpy
buffers or operator temporaries per call/iteration beyond the documented
(suppressed-with-reason) ones.  Seed-era kernels that predate the decorator
are enrolled via :data:`repro.lint.hotpaths.HOT_PATH_MANIFEST` instead.
"""

from __future__ import annotations

from typing import Callable, TypeVar, overload

__all__ = ["hot_kernel", "is_hot_kernel"]

F = TypeVar("F", bound=Callable)


@overload
def hot_kernel(fn: F) -> F: ...
@overload
def hot_kernel(fn: str | None = None, *, label: str | None = None) -> Callable[[F], F]: ...


def hot_kernel(fn: Callable | str | None = None, *, label: str | None = None):
    """Mark ``fn`` as a hot kernel.

    Usable bare (``@hot_kernel``), with a keyword label
    (``@hot_kernel(label="...")``) or a positional one
    (``@hot_kernel("...")``).
    """
    if isinstance(fn, str):
        fn, label = None, fn

    def mark(f: F) -> F:
        f.__repro_hot__ = True  # type: ignore[attr-defined]
        f.__repro_hot_label__ = label or f.__qualname__  # type: ignore[attr-defined]
        return f

    return mark if fn is None else mark(fn)


def is_hot_kernel(fn: Callable) -> bool:
    """Whether ``fn`` (or the function under a bound method) is marked."""
    return bool(getattr(fn, "__repro_hot__", False))
