"""Paper Figure 9: ground/excited-state DOS of twisted bilayer graphene.

The paper's MATBG (1,180 atoms) shows (a) interlayer-distance-dependent
ground-state DOS — strongly coupled layers (D = 2.6 A) reshape the states
near the Fermi level, decoupled ones (D = 4.0 A) do not — and (b) a band
of low-lying excitations.

Stand-in (DESIGN.md): the 4-atom AB bilayer through the identical pipeline
(real SCF at two interlayer distances, DOS, LR-TDDFT excitation DOS).
The asserted shape: interlayer coupling visibly changes the DOS near E_F,
and the LR-TDDFT step produces a finite low-energy excitation band.
"""

import numpy as np
import pytest

from repro.analysis import density_of_states, excitation_dos
from repro.analysis.dos import fermi_level_estimate
from repro.atoms import graphene_bilayer
from repro.constants import ANGSTROM_TO_BOHR, HARTREE_TO_EV
from repro.core import LRTDDFTSolver
from repro.dft import run_scf


@pytest.fixture(scope="module")
def bilayer_states():
    states = {}
    for d_angstrom in (2.6, 4.0):
        cell = graphene_bilayer(interlayer_distance=d_angstrom * ANGSTROM_TO_BOHR)
        states[d_angstrom] = run_scf(
            cell, ecut=10.0, n_bands=14, tol=1e-6,
            smearing_width=0.01, max_iter=80, seed=0,
        )
    return states


def test_fig9a_ground_state_dos(benchmark, bilayer_states, save_table):
    def run():
        out = {}
        for d, gs in bilayer_states.items():
            e_f = fermi_level_estimate(gs.energies, gs.occupations)
            grid = np.linspace(e_f - 0.4, e_f + 0.4, 400)
            out[d] = (grid - e_f, density_of_states(gs.energies, grid, broadening=0.02))
        return out

    dos = benchmark(run)

    lines = [
        "Figure 9a (stand-in) — bilayer DOS near E_F vs interlayer distance",
        "",
        f"{'E-E_F (eV)':>11s} {'D=2.6 A':>10s} {'D=4.0 A':>10s}",
    ]
    grid26, g26 = dos[2.6]
    _, g40 = dos[4.0]
    for i in range(0, 400, 40):
        lines.append(
            f"{grid26[i] * HARTREE_TO_EV:11.2f} {g26[i]:10.3f} {g40[i]:10.3f}"
        )
    delta = np.abs(g26 - g40).max()
    lines += ["", f"max |DOS(2.6) - DOS(4.0)| near E_F: {delta:.3f} states/Ha"]
    save_table("fig9a_dos", "\n".join(lines))

    # Interlayer coupling must visibly reshape the DOS near E_F.
    assert delta > 0.2 * max(g26.max(), g40.max())
    # Both DOS integrate to the same number of states in the window.
    assert np.trapezoid(g26, grid26) == pytest.approx(
        np.trapezoid(g40, grid26), rel=0.5
    )


def test_fig9b_excitation_dos(benchmark, bilayer_states, save_table):
    gs = bilayer_states[2.6]

    def run():
        solver = LRTDDFTSolver(gs, seed=0)
        n_exc = min(16, solver.n_pairs)
        res = solver.solve(
            "implicit-kmeans-isdf-lobpcg", n_excitations=n_exc, tol=1e-7
        )
        grid = np.linspace(0.0, float(res.energies.max()) * 1.2, 300)
        return res.energies, grid, excitation_dos(res.energies, grid, broadening=0.01)

    energies, grid, xdos = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 9b (stand-in) — excitation DOS of the coupled bilayer",
        "",
        f"lowest excitation: {energies[0] * HARTREE_TO_EV:.3f} eV",
        f"excitations computed: {len(energies)}",
        "",
        f"{'E (eV)':>8s} {'DOS':>10s}",
    ]
    for i in range(0, 300, 30):
        lines.append(f"{grid[i] * HARTREE_TO_EV:8.2f} {xdos[i]:10.3f}")
    save_table("fig9b_excitation_dos", "\n".join(lines))

    assert (energies > 0).all()
    assert xdos.max() > 0.0
    # Total excitation count conserved under broadening.
    assert np.trapezoid(xdos, grid) == pytest.approx(len(energies), rel=0.15)
