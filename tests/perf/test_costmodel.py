"""Tests for the per-kernel cost functions."""

import pytest

from repro.perf import (
    CORI_HASWELL,
    time_allreduce,
    time_alltoall,
    time_dense_eig,
    time_fft_batch,
    time_gemm,
    time_kmeans,
    time_pair_product,
)
from repro.perf.costmodel import time_reduce


class TestGemm:
    def test_scales_with_flops(self):
        t1 = time_gemm(100, 100, 100, CORI_HASWELL, 32)
        t2 = time_gemm(200, 100, 100, CORI_HASWELL, 32)
        assert t2 == pytest.approx(2 * t1)

    def test_perfect_strong_scaling(self):
        t1 = time_gemm(1000, 1000, 1000, CORI_HASWELL, 32)
        t2 = time_gemm(1000, 1000, 1000, CORI_HASWELL, 64)
        assert t1 == pytest.approx(2 * t2)

    def test_sanity_magnitude(self):
        """A 4096^3 DGEMM on one 32-core node takes O(seconds)."""
        t = time_gemm(4096, 4096, 4096, CORI_HASWELL, 32)
        assert 0.05 < t < 5.0


class TestFFT:
    def test_batch_parallelism_cap(self):
        """More cores than batch entries cannot help."""
        t_many = time_fft_batch(8, 64**3, CORI_HASWELL, 1024)
        t_enough = time_fft_batch(8, 64**3, CORI_HASWELL, 8)
        assert t_many == pytest.approx(t_enough)

    def test_scales_below_cap(self):
        t1 = time_fft_batch(128, 64**3, CORI_HASWELL, 16)
        t2 = time_fft_batch(128, 64**3, CORI_HASWELL, 32)
        assert t1 == pytest.approx(2 * t2)


class TestCollectives:
    def test_single_process_is_free(self):
        kw = {"threads_per_process": 32}
        assert time_alltoall(1e9, CORI_HASWELL, 32, **kw) == 0.0
        assert time_allreduce(1e9, CORI_HASWELL, 32, **kw) == 0.0
        assert time_reduce(1e9, CORI_HASWELL, 32, **kw) == 0.0

    def test_single_node_has_no_volume_cost(self):
        """Intra-node collectives pay process latency only — the data never
        crosses the NIC."""
        latency_only = time_allreduce(8.0, CORI_HASWELL, 32)
        big = time_allreduce(1e9, CORI_HASWELL, 32)
        assert big == pytest.approx(latency_only)

    def test_more_threads_fewer_processes_cheaper_latency(self):
        """The paper's Section 6.3 observation: 16 OpenMP threads per rank
        reduce collective cost vs 4 threads at the same core count."""
        t4 = time_alltoall(8.0, CORI_HASWELL, 12288, threads_per_process=4)
        t16 = time_alltoall(8.0, CORI_HASWELL, 12288, threads_per_process=16)
        assert t16 < t4

    def test_alltoall_grows_with_nodes_for_fixed_total(self):
        t2 = time_alltoall(1e9, CORI_HASWELL, 64)
        t16 = time_alltoall(1e9, CORI_HASWELL, 512)
        # Aggregate bandwidth grows with nodes, so fixed-total alltoall
        # gets cheaper per node but latency grows; data term dominates here.
        assert t2 > t16

    def test_allreduce_latency_term(self):
        tiny = time_allreduce(8.0, CORI_HASWELL, 2048)
        assert tiny >= 2 * CORI_HASWELL.net_latency

    def test_allreduce_bandwidth_term_dominates_large(self):
        t = time_allreduce(1e9, CORI_HASWELL, 2048)
        assert t > 0.1  # ~2 GB over 8 GB/s links


class TestKmeans:
    def test_linear_in_clusters(self):
        t1 = time_kmeans(1e5, 512, 30, CORI_HASWELL, 1)
        t2 = time_kmeans(1e5, 1024, 30, CORI_HASWELL, 1)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_linear_in_iterations(self):
        t1 = time_kmeans(1e5, 512, 10, CORI_HASWELL, 1)
        t3 = time_kmeans(1e5, 512, 30, CORI_HASWELL, 1)
        assert t3 == pytest.approx(3 * t1, rel=0.01)


class TestDenseEig:
    def test_cubic_scaling(self):
        t1 = time_dense_eig(1000, CORI_HASWELL, 1)
        t2 = time_dense_eig(2000, CORI_HASWELL, 1)
        assert t2 == pytest.approx(8 * t1)

    def test_strong_scaling_saturates(self):
        """Past the 2-D grid limit extra cores do nothing."""
        n = 1024
        cap = (n / 64) ** 2  # 256
        t_at_cap = time_dense_eig(n, CORI_HASWELL, int(cap))
        t_beyond = time_dense_eig(n, CORI_HASWELL, 8 * int(cap))
        assert t_beyond == pytest.approx(t_at_cap)


class TestPairProduct:
    def test_bandwidth_bound_scales_with_nodes(self):
        t1 = time_pair_product(128, 128, 1e6, CORI_HASWELL, 32)
        t2 = time_pair_product(128, 128, 1e6, CORI_HASWELL, 64)
        assert t1 == pytest.approx(2 * t2)


def test_invalid_cores_rejected():
    with pytest.raises(ValueError):
        time_gemm(10, 10, 10, CORI_HASWELL, 0)
