"""Thread vs process SPMD backend benchmark (``repro bench-spmd``).

Measures the same rank program under both executors and emits
``BENCH_spmd.json``:

* **gil_bound** — a pure-Python per-rank workload (dict/loop churn that
  never releases the GIL) plus one small allreduce per step.  Threads
  serialize on the GIL here; forked processes do not — this is the
  workload the process backend exists for.
* **pipeline** — :func:`~repro.parallel.pipeline.pipelined_vhxc_rows` on
  a synthetic pair matrix: BLAS GEMMs (which release the GIL) plus the
  nonblocking per-block reduces, exercising the zero-copy slab transport
  and the compute/comm overlap.

For each (workload, backend, rank count) the report carries wall seconds,
speedup versus the same backend's 1-rank run, the process/thread ratio,
and — for the process backend — the transport split: logical bytes the
collectives would move on a real network, bytes that travelled as
zero-copy shared-memory views, and bytes that were pickled through pipes.

**Read the numbers against ``meta.cpu_count``.** Process-per-rank buys
wall-clock only when ranks can actually run concurrently; on a 1-CPU
container both backends time-slice one core and the process backend's
fork/IPC overhead makes it *slower*.  The report states this honestly:
``meets_2x_target`` is a bool on multi-core hosts and ``null`` with
``meets_2x_target_reason: "insufficient_cores"`` on single-core ones,
where a pass/fail verdict would be vacuous (``hardware_note`` spells out
how to read the numbers there).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.parallel import spmd_run
from repro.parallel.pipeline import pipelined_vhxc_rows

__all__ = [
    "format_summary",
    "run_spmd_bench",
    "write_report",
]


# -- rank programs -----------------------------------------------------------


def _gil_bound_program(comm, steps: int, work: int):
    """Pure-Python churn per step + one tiny allreduce (never drops the GIL)."""
    acc = 0.0
    for step in range(steps):
        table: dict[int, float] = {}
        for i in range(work):
            table[i & 255] = table.get(i & 255, 0.0) + (i ^ step) * 1e-9
        acc += sum(table.values())
        acc = float(comm.allreduce(np.array([acc]))[0])
    return acc


def _pipeline_program(comm, n_pairs: int, seed: int):
    """Row-block slabs -> pipelined GEMM + nonblocking per-block reduce."""
    rng = np.random.default_rng(seed)  # same draw on every rank
    z_full = rng.standard_normal((n_pairs, n_pairs))
    k_full = rng.standard_normal((n_pairs, n_pairs))
    lo = comm.rank * n_pairs // comm.size
    hi = (comm.rank + 1) * n_pairs // comm.size
    my_rows, _ = pipelined_vhxc_rows(
        comm, z_full[lo:hi], k_full[lo:hi], 1e-3
    )
    return float(my_rows.sum())


# -- measurement -------------------------------------------------------------


def _measure(workload: str, backend: str, n_ranks: int, params: dict) -> dict:
    if workload == "gil_bound":
        args = (params["steps"], params["work"])
        fn = _gil_bound_program
    else:
        args = (params["n_pairs"], params["seed"])
        fn = _pipeline_program
    t0 = time.perf_counter()
    results, traffic = spmd_run(
        n_ranks, fn, *args, return_traffic=True, backend=backend
    )
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "result_digest": float(np.sum(results)),
        "logical_bytes": traffic.total_bytes,
        "zero_copy_bytes": traffic.zero_copy_bytes,
        "pickled_bytes": traffic.pickled_bytes,
    }


def run_spmd_bench(*, smoke: bool = False, ranks=(1, 2, 4, 8)) -> dict:
    """Benchmark both backends over ``ranks``; returns a JSON-ready dict."""
    if smoke:
        params = {"steps": 2, "work": 20_000, "n_pairs": 96, "seed": 3}
        ranks = tuple(r for r in ranks if r <= 4)
    else:
        params = {"steps": 4, "work": 200_000, "n_pairs": 384, "seed": 3}

    workloads: dict[str, dict] = {}
    for workload in ("gil_bound", "pipeline"):
        runs: dict[str, dict] = {}
        for backend in ("thread", "process"):
            per_rank: dict[str, dict] = {}
            for n_ranks in ranks:
                per_rank[str(n_ranks)] = _measure(
                    workload, backend, n_ranks, params
                )
            base = per_rank[str(ranks[0])]["seconds"]
            for stats in per_rank.values():
                stats["speedup_vs_1rank"] = base / stats["seconds"]
            runs[backend] = per_rank
        digests = {
            b: [runs[b][str(r)]["result_digest"] for r in ranks] for b in runs
        }
        workloads[workload] = {
            "per_backend": runs,
            "process_vs_thread": {
                str(r): (
                    runs["thread"][str(r)]["seconds"]
                    / runs["process"][str(r)]["seconds"]
                )
                for r in ranks
            },
            "backends_agree": bool(
                np.allclose(digests["thread"], digests["process"])
            ),
        }

    cpu_count = os.cpu_count() or 1
    top_ranks = str(ranks[-1])
    gil_ratio = workloads["gil_bound"]["process_vs_thread"][top_ranks]
    # The 2x target is only *decidable* when at least two ranks can run
    # concurrently: on a single-CPU host every backend time-slices one
    # core, so a pass/fail bool would be vacuous either way.  Emit null
    # plus a machine-readable reason instead — downstream gates treat
    # null-with-reason as "not applicable", not as a failure.
    if cpu_count > 1:
        meets_2x: bool | None = bool(gil_ratio >= 2.0)
        meets_2x_reason = None
    else:
        meets_2x = None
        meets_2x_reason = "insufficient_cores"
    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": cpu_count,
            "ranks": list(ranks),
            "params": params,
        },
        "workloads": workloads,
        "meets_2x_target": meets_2x,
        "meets_2x_target_reason": meets_2x_reason,
        "hardware_note": (
            f"{cpu_count} CPU(s) available for {top_ranks} ranks: "
            + (
                "process-per-rank parallelism can beat the GIL"
                if cpu_count > 1
                else "all ranks time-slice one core, so process-per-rank "
                "cannot beat threads here regardless of the GIL — judge "
                "the backend by bit-identity and the zero-copy byte "
                "counts, and rerun on a multi-core host for wall-clock"
            )
        ),
    }


def format_summary(report: dict) -> str:
    """Terse human-readable digest of :func:`run_spmd_bench` output."""
    lines = [
        f"spmd bench ({report['meta']['mode']} mode, "
        f"{report['meta']['cpu_count']} cpus)"
    ]
    for workload, data in report["workloads"].items():
        for backend, per_rank in data["per_backend"].items():
            for ranks, stats in per_rank.items():
                extra = ""
                if stats["zero_copy_bytes"] or stats["pickled_bytes"]:
                    extra = (
                        f"  shm={stats['zero_copy_bytes']/1e6:.2f}MB"
                        f" pickled={stats['pickled_bytes']/1e6:.3f}MB"
                    )
                lines.append(
                    f"  {workload:<9s} {backend:<7s} P={ranks:>2s}"
                    f"  {stats['seconds']*1e3:9.1f} ms"
                    f"  x{stats['speedup_vs_1rank']:.2f} vs 1 rank{extra}"
                )
        ratios = ", ".join(
            f"P={r}: {v:.2f}x" for r, v in data["process_vs_thread"].items()
        )
        lines.append(
            f"  {workload}: process vs thread {ratios} "
            f"(agree={data['backends_agree']})"
        )
    target = report["meets_2x_target"]
    if target is None:
        reason = report.get("meets_2x_target_reason")
        target = f"n/a ({reason})"
    lines.append(f"  meets_2x_target={target}  [{report['hardware_note']}]")
    return "\n".join(lines)


def write_report(report: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
