"""Config objects: round-trip, immutability, validation, deprecation shims."""

import dataclasses
import warnings

import pytest

from repro import api
from repro.atoms import silicon_primitive_cell
from repro.core import LRTDDFTSolver
from repro.synthetic import synthetic_ground_state
from repro.utils.deprecation import reset_deprecation_warnings, warn_once


@pytest.fixture(scope="module")
def tiny_gs():
    return synthetic_ground_state(
        silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=4, seed=5
    )


@pytest.mark.parametrize(
    "cls", [api.SCFConfig, api.TDDFTConfig, api.ResilienceConfig, api.BatchConfig]
)
class TestRoundTrip:
    def test_default_round_trip(self, cls):
        cfg = cls()
        assert cls.from_dict(cfg.to_dict()) == cfg

    def test_modified_round_trip(self, cls):
        field = dataclasses.fields(cls)[0].name
        cfg = cls()
        d = cfg.to_dict()
        assert field in d
        assert cls.from_dict(d) == cfg

    def test_frozen(self, cls):
        cfg = cls()
        field = dataclasses.fields(cls)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(cfg, field, None)

    def test_unknown_key_rejected(self, cls):
        with pytest.raises(ValueError, match="unknown"):
            cls.from_dict({"definitely_not_a_field": 1})


class TestValidation:
    def test_scf_bad_mixer(self):
        with pytest.raises(ValueError, match="mixer"):
            api.SCFConfig(mixer="magic")

    def test_scf_bad_ecut(self):
        with pytest.raises(ValueError, match="ecut"):
            api.SCFConfig(ecut=-1.0)

    def test_tddft_bad_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            api.TDDFTConfig(method="quantum-leap")

    def test_tddft_bad_spin(self):
        with pytest.raises(ValueError, match="spin"):
            api.TDDFTConfig(spin="doublet")

    def test_resilience_bad_fallback(self):
        with pytest.raises(ValueError, match="selection_fallback"):
            api.ResilienceConfig(selection_fallback="prayer")

    def test_batch_nested_configs_rehydrate(self):
        cfg = api.BatchConfig(
            scf=api.SCFConfig(ecut=6.0, tol=1e-7),
            tddft=api.TDDFTConfig(n_excitations=3),
            n_ranks=2,
            spmd_backend="thread",
        )
        back = api.BatchConfig.from_dict(cfg.to_dict())
        assert back == cfg
        assert isinstance(back.scf, api.SCFConfig)
        assert isinstance(back.tddft, api.TDDFTConfig)
        assert back.scf.ecut == 6.0

    def test_batch_bad_extrapolation(self):
        with pytest.raises(ValueError, match="density_extrapolation"):
            api.BatchConfig(density_extrapolation="cubic")

    def test_batch_bad_drift_threshold(self):
        with pytest.raises(ValueError, match="isdf_drift_threshold"):
            api.BatchConfig(isdf_drift_threshold=2.0)

    def test_batch_bad_backend(self):
        with pytest.raises(ValueError, match="spmd_backend"):
            api.BatchConfig(spmd_backend="mpi")

    def test_batch_scf_must_be_config(self):
        with pytest.raises(ValueError, match="scf"):
            api.BatchConfig(scf={"ecut": 6.0})

    def test_scf_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            api.SCFConfig(precision="half")

    def test_tddft_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            api.TDDFTConfig(precision="fp32")

    def test_batch_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            api.BatchConfig(precision="mixed64")

    def test_replace(self):
        cfg = api.TDDFTConfig()
        other = cfg.replace(method="naive", n_excitations=3)
        assert other.method == "naive"
        assert other.n_excitations == 3
        assert cfg.method == "implicit-kmeans-isdf-lobpcg"

    def test_retry_policy_from_resilience(self):
        policy = api.ResilienceConfig(max_retries=5, backoff=0.5).retry_policy()
        assert policy.max_retries == 5
        assert policy.backoff == 0.5

    def test_checkpointer_disabled_without_dir(self):
        assert api.ResilienceConfig().checkpointer("scf") is None

    def test_checkpointer_tagged(self, tmp_path):
        ck = api.ResilienceConfig(checkpoint_dir=str(tmp_path)).checkpointer("scf")
        assert ck.tag == "scf"


class TestPrecisionThreading:
    def test_default_tier_is_strict64(self):
        assert api.SCFConfig().precision == "strict64"
        assert api.TDDFTConfig().precision == "strict64"
        assert api.BatchConfig().precision is None

    def test_batch_precision_pushes_down_to_both_stages(self):
        cfg = api.BatchConfig(precision="mixed")
        assert cfg.scf.precision == "mixed"
        assert cfg.tddft.precision == "mixed"

    def test_batch_none_preserves_nested_tiers(self):
        cfg = api.BatchConfig(
            scf=api.SCFConfig(precision="fast32"),
            tddft=api.TDDFTConfig(precision="mixed"),
        )
        assert cfg.scf.precision == "fast32"
        assert cfg.tddft.precision == "mixed"

    def test_precision_survives_the_dict_round_trip(self):
        cfg = api.TDDFTConfig(precision="mixed")
        assert api.TDDFTConfig.from_dict(cfg.to_dict()).precision == "mixed"


class TestDeprecationShims:
    def test_warn_once_is_once(self):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert warn_once("test:key", "legacy thing")
            assert not warn_once("test:key", "legacy thing")
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1

    def test_solve_tddft_legacy_kwargs_warn_exactly_once(self, tiny_gs):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.solve_tddft(tiny_gs, method="naive", n_excitations=2)
            api.solve_tddft(tiny_gs, method="naive", n_excitations=2)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "TDDFTConfig" in str(dep[0].message)

    def test_solver_legacy_kwargs_warn_exactly_once(self, tiny_gs):
        reset_deprecation_warnings()
        solver = LRTDDFTSolver(tiny_gs, seed=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solver.solve("naive", n_excitations=2)
            solver.solve("naive", n_excitations=2)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1

    def test_config_plus_legacy_kwargs_is_an_error(self, tiny_gs):
        with pytest.raises(ValueError, match="config"):
            api.solve_tddft(tiny_gs, api.TDDFTConfig(), n_excitations=2)

    def test_config_path_warns_once_for_the_function(self, tiny_gs):
        # Since the CalculationRequest redesign the *function itself* is the
        # deprecated surface: even the config path warns (exactly once),
        # pointing at CalculationRequest.
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.solve_tddft(
                tiny_gs, api.TDDFTConfig(method="naive", n_excitations=2)
            )
            api.solve_tddft(
                tiny_gs, api.TDDFTConfig(method="naive", n_excitations=2)
            )
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "CalculationRequest" in str(dep[0].message)

    def test_legacy_and_config_paths_agree(self, tiny_gs):
        reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = api.solve_tddft(tiny_gs, method="naive", n_excitations=3)
        modern = api.solve_tddft(
            tiny_gs, api.TDDFTConfig(method="naive", n_excitations=3)
        )
        import numpy as np

        np.testing.assert_array_equal(legacy.energies, modern.energies)
