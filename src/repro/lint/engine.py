"""The lint engine: rule registry, suppression comments, output formats.

A *file rule* is a named check over one parsed module; a *project rule*
(:class:`ProjectRule`) checks the whole program at once through the call
graph in :mod:`repro.lint.callgraph`.  The engine owns everything
rule-agnostic — file discovery, parsing, the suppression protocol, and the
two output formats consumed by humans (``text``) and by tooling (``json``).

Suppression protocol
--------------------
``# repro-lint: disable=rule-a,rule-b -- reason`` as a *trailing* comment
suppresses those rules on that line only; the same comment on a line of its
own suppresses them for the whole file.  ``disable=all`` matches every
rule.  The reason string after ``--`` is mandatory by convention (reviewed
suppressions must say why); the engine records findings suppressed without
one under the pseudo-rule ``suppression-without-reason`` so bare waivers
are themselves lint findings.  Suppressions that no longer match any live
finding are reported by :func:`check_suppressions` under the pseudo-rule
``stale-suppression`` (see ``repro lint --check-suppressions``).
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (callgraph imports us)
    from repro.lint.callgraph import Project

__all__ = [
    "Finding",
    "LintRule",
    "ProjectRule",
    "SourceModule",
    "all_project_rules",
    "all_rules",
    "check_suppressions",
    "dotted_name",
    "format_findings",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_project_rule",
    "register_rule",
    "split_rule_selection",
]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def dotted_name(node: ast.AST) -> str:
    """``np.linalg.solve`` for nested attributes, ``''`` when not name-like."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, *]+?)\s*(?:--\s*(?P<reason>\S.*))?$"
)


@dataclasses.dataclass(frozen=True)
class _SuppressionEntry:
    """One ``rule`` named by one suppression comment."""

    line: int  #: line of the comment itself
    rule: str
    reason: str
    file_level: bool


@dataclasses.dataclass
class _Suppressions:
    """Parsed suppression comments of one module."""

    #: rule -> reason (or "") for file-wide waivers.
    file_level: dict[str, str] = dataclasses.field(default_factory=dict)
    #: line -> {rule -> reason} for single-line waivers.
    by_line: dict[int, dict[str, str]] = dataclasses.field(default_factory=dict)
    #: (line, rules) of waivers missing a reason string.
    missing_reason: list[tuple[int, str]] = dataclasses.field(default_factory=list)
    #: every (line, rule) pair, for staleness auditing.
    entries: list[_SuppressionEntry] = dataclasses.field(default_factory=list)

    def covers(self, rule: str, line: int) -> bool:
        for table in (self.file_level, self.by_line.get(line, {})):
            if rule in table or "all" in table or "*" in table:
                return True
        return False


def _iter_comment_tokens(text: str) -> Iterator[tuple[int, int, str]]:
    """``(line, col, comment_text)`` for every real comment token.

    Tokenizing (rather than regex-scanning every line) keeps suppression
    syntax quoted inside strings/docstrings — like the protocol example in
    this module's own docstring — from parsing as a live suppression.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable tail: fall back silently; the lint pass itself will
        # report the syntax error.
        return


def _parse_suppressions(text: str) -> _Suppressions:
    sup = _Suppressions()
    lines = text.splitlines()
    for lineno, col, comment in _iter_comment_tokens(text):
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        reason = match.group("reason") or ""
        if not reason:
            sup.missing_reason.append((lineno, ",".join(rules)))
        source_line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        own_line = not source_line[:col].strip()
        target = sup.file_level if own_line else sup.by_line.setdefault(lineno, {})
        for rule in rules:
            target[rule] = reason
            sup.entries.append(
                _SuppressionEntry(
                    line=lineno, rule=rule, reason=reason, file_level=own_line
                )
            )
    return sup


@dataclasses.dataclass
class SourceModule:
    """One parsed python file handed to every rule."""

    path: str
    text: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()


class LintRule:
    """Base class for a per-file lint pass.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Finding` objects (the engine applies
    suppressions afterwards, rules never need to).
    """

    name: str = "abstract"
    description: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule:
    """Base class for a whole-program lint pass.

    Project rules see every module at once plus the call graph built over
    them (:class:`repro.lint.callgraph.Project`), so they can reason about
    reachability across files.  Findings still anchor to one file/line and
    obey that file's suppression comments, exactly like file rules.
    """

    name: str = "abstract-project"
    description: str = ""

    def check(
        self, project: "Project", modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, node: ast.AST, message: str, *, rule: str | None = None
    ) -> Finding:
        return Finding(
            rule=rule or self.name,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register_rule(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if rule.name in _REGISTRY or rule.name in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate lint rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def register_project_rule(rule_cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding one project-rule instance to the registry."""
    rule = rule_cls()
    if rule.name in _REGISTRY or rule.name in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate lint rule name {rule.name!r}")
    _PROJECT_REGISTRY[rule.name] = rule
    return rule_cls


def _load_builtin_rules() -> None:
    """Make ``lint_paths``/``get_rules`` see the built-in rules regardless
    of which ``repro.lint`` submodule the caller imported first."""
    from repro.lint import arrays, project_rules, rules  # noqa: F401


def all_rules() -> tuple[LintRule, ...]:
    _load_builtin_rules()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def all_project_rules() -> tuple[ProjectRule, ...]:
    _load_builtin_rules()
    return tuple(_PROJECT_REGISTRY[name] for name in sorted(_PROJECT_REGISTRY))


def get_rules(names: Sequence[str] | None = None) -> tuple[LintRule, ...]:
    """Resolve rule names to file-rule instances (``None`` = all file rules)."""
    if names is None:
        return all_rules()
    _load_builtin_rules()
    unknown = sorted(set(names) - set(_REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; available: {sorted(_REGISTRY)}"
        )
    return tuple(_REGISTRY[name] for name in names)


def split_rule_selection(
    names: Sequence[str] | None,
) -> tuple[tuple[LintRule, ...], tuple[ProjectRule, ...]]:
    """Split a mixed rule selection into (file rules, project rules).

    ``None`` selects everything.  Unknown names raise with the combined
    inventory so ``--select`` typos fail loudly.
    """
    _load_builtin_rules()
    if names is None:
        return all_rules(), all_project_rules()
    file_rules: list[LintRule] = []
    project_rules: list[ProjectRule] = []
    unknown = []
    for name in names:
        if name in _REGISTRY:
            file_rules.append(_REGISTRY[name])
        elif name in _PROJECT_REGISTRY:
            project_rules.append(_PROJECT_REGISTRY[name])
        else:
            unknown.append(name)
    if unknown:
        available = sorted({**_REGISTRY, **_PROJECT_REGISTRY})
        raise ValueError(f"unknown lint rule(s) {sorted(unknown)}; available: {available}")
    return tuple(file_rules), tuple(project_rules)


def rule_inventory() -> list[str]:
    """Sorted names of every registered rule, file and project alike."""
    _load_builtin_rules()
    return sorted({**_REGISTRY, **_PROJECT_REGISTRY})


def _parse_module(text: str, path: str) -> SourceModule | Finding:
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule="syntax-error",
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
        )
    return SourceModule(path=path, text=text, tree=tree)


def _missing_reason_findings(path: str, sup: _Suppressions) -> list[Finding]:
    return [
        Finding(
            rule="suppression-without-reason",
            path=path,
            line=lineno,
            col=1,
            message=(
                f"suppression of {rule_list!r} has no reason string; "
                "append ' -- <why this is safe>'"
            ),
        )
        for lineno, rule_list in sup.missing_reason
    ]


def lint_source(
    text: str,
    path: str = "<string>",
    rules: Sequence[str] | None = None,
    *,
    project: bool = False,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings sorted by line.

    ``project=True`` additionally runs the whole-program rules against a
    single-module project — useful for testing interprocedural rules on
    synthetic snippets; real multi-file analysis goes through
    :func:`lint_paths`.
    """
    parsed = _parse_module(text, path)
    if isinstance(parsed, Finding):
        return [parsed]
    file_rules, project_rules = split_rule_selection(rules)
    suppressions = _parse_suppressions(text)
    findings = [
        f
        for rule in file_rules
        for f in rule.check(parsed)
        if not suppressions.covers(f.rule, f.line)
    ]
    if project and project_rules:
        from repro.lint.callgraph import build_project

        graph = build_project([parsed])
        findings.extend(
            f
            for rule in project_rules
            for f in rule.check(graph, [parsed])
            if not suppressions.covers(f.rule, f.line)
        )
    findings.extend(_missing_reason_findings(path, suppressions))
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(
    path: str | Path,
    rules: Sequence[str] | None = None,
    *,
    project: bool = False,
) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path), rules, project=project)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files (skips caches)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield entry


def _parse_all(
    paths: Iterable[str | Path],
) -> tuple[list[SourceModule], dict[str, _Suppressions], list[Finding]]:
    """Parse every file once: modules, per-path suppressions, parse errors."""
    modules: list[SourceModule] = []
    suppressions: dict[str, _Suppressions] = {}
    errors: list[Finding] = []
    for path in iter_python_files(paths):
        text = path.read_text()
        parsed = _parse_module(text, str(path))
        if isinstance(parsed, Finding):
            errors.append(parsed)
            continue
        modules.append(parsed)
        suppressions[parsed.path] = _parse_suppressions(text)
    return modules, suppressions, errors


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[str] | None = None,
    *,
    project: bool = True,
) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories).

    Files are parsed once; file rules run per module, then the project
    rules run over the whole set (``project=False`` skips them).  Findings
    honour each file's suppression comments and come back sorted by
    ``(path, line, col, rule)``.
    """
    file_rules, project_rules = split_rule_selection(rules)
    modules, suppressions, findings = _parse_all(paths)
    for module in modules:
        sup = suppressions[module.path]
        findings.extend(
            f
            for rule in file_rules
            for f in rule.check(module)
            if not sup.covers(f.rule, f.line)
        )
        findings.extend(_missing_reason_findings(module.path, sup))
    if project and project_rules and modules:
        from repro.lint.callgraph import build_project

        graph = build_project(modules)
        for rule in project_rules:
            for f in rule.check(graph, modules):
                sup = suppressions.get(f.path)
                if sup is None or not sup.covers(f.rule, f.line):
                    findings.append(f)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def check_suppressions(paths: Iterable[str | Path]) -> list[Finding]:
    """Report suppression comments that no longer match any live finding.

    Every rule runs with suppressions *recorded but not applied*; a
    suppression entry is live when at least one raw finding in its scope
    (its line for trailing comments, the whole file for own-line comments)
    names its rule — or any rule, for ``all``/``*`` waivers.  Stale entries
    come back as ``stale-suppression`` findings so the gate in
    ``tools/run_checks.py`` can fail on waivers that outlived their bug.
    """
    file_rules, project_rules = split_rule_selection(None)
    modules, suppressions, findings = _parse_all(paths)
    raw_by_path: dict[str, list[Finding]] = {m.path: [] for m in modules}
    for module in modules:
        for rule in file_rules:
            raw_by_path[module.path].extend(rule.check(module))
    if project_rules and modules:
        from repro.lint.callgraph import build_project

        graph = build_project(modules)
        for rule in project_rules:
            for f in rule.check(graph, modules):
                if f.path in raw_by_path:
                    raw_by_path[f.path].append(f)
    stale: list[Finding] = findings  # parse errors pass through
    for module in modules:
        raw = raw_by_path[module.path]
        for entry in suppressions[module.path].entries:
            in_scope = [
                f for f in raw if entry.file_level or f.line == entry.line
            ]
            if entry.rule in ("all", "*"):
                live = bool(in_scope)
            else:
                live = any(f.rule == entry.rule for f in in_scope)
            if not live:
                scope = "file-level" if entry.file_level else "line"
                stale.append(
                    Finding(
                        rule="stale-suppression",
                        path=module.path,
                        line=entry.line,
                        col=1,
                        message=(
                            f"{scope} suppression of {entry.rule!r} no longer "
                            "matches any finding; delete the comment"
                        ),
                    )
                )
    return sorted(stale, key=lambda f: (f.path, f.line, f.col, f.rule))


def format_findings(
    findings: Sequence[Finding],
    fmt: str = "text",
    *,
    rules_enabled: Sequence[str] | None = None,
) -> str:
    """Render findings as ``text`` (one line each) or machine ``json``.

    ``rules_enabled`` (json only) embeds the active rule inventory in the
    payload so baseline tooling can detect silently-vanished rules, not
    just new findings.
    """
    if fmt == "json":
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        payload = {
            "findings": [f.as_dict() for f in findings],
            "counts_by_rule": dict(sorted(counts.items())),
            "total": len(findings),
        }
        if rules_enabled is not None:
            payload["rules_enabled"] = sorted(rules_enabled)
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt == "text":
        if not findings:
            return "repro-lint: no findings"
        lines = [f.render() for f in findings]
        lines.append(f"repro-lint: {len(findings)} finding(s)")
        return "\n".join(lines)
    raise ValueError(f"unknown format {fmt!r}; choose 'text' or 'json'")


# Typing helper for rule helpers that walk with a predicate.
NodePredicate = Callable[[ast.AST], bool]
