"""Hierarchical wall-clock timers.

The paper reports per-phase timings (K-Means / FFT / MPI / GEMM+Allreduce in
Figure 8); :class:`TimerRegistry` collects those phases with nested scopes so
the benchmark harness can print the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Timer:
    """Accumulating wall-clock timer for one named phase."""

    name: str
    total: float = 0.0
    count: int = 0
    _started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total += elapsed
        self.count += 1
        return elapsed

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name!r}, total={self.total:.6f}s, count={self.count})"


class TimerRegistry:
    """A registry of named timers with nested-scope support.

    Scope names compose with ``/``:  ``with reg.scope("hamiltonian"):`` then
    ``with reg.scope("fft"):`` accumulates under ``hamiltonian/fft``.
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}
        self._stack: list[str] = []

    def timer(self, name: str) -> Timer:
        """Return (creating if needed) the timer registered under ``name``."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    @contextmanager
    def scope(self, name: str) -> Iterator[Timer]:
        """Time a nested scope; the full path is joined with ``/``."""
        path = "/".join(self._stack + [name])
        t = self.timer(path)
        self._stack.append(name)
        t.start()
        try:
            yield t
        finally:
            t.stop()
            self._stack.pop()

    def total(self, name: str) -> float:
        """Total accumulated seconds under ``name`` (0.0 if never used)."""
        t = self._timers.get(name)
        return t.total if t is not None else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all totals, keyed by scope path."""
        return {name: t.total for name, t in self._timers.items()}

    def reset(self) -> None:
        self._timers.clear()
        self._stack.clear()

    def report(self, indent: int = 2) -> str:
        """Human-readable multi-line report sorted by scope path."""
        lines = []
        for name in sorted(self._timers):
            t = self._timers[name]
            depth = name.count("/")
            label = name.rsplit("/", 1)[-1]
            lines.append(
                f"{' ' * (indent * depth)}{label:<30s} {t.total:10.4f} s  (x{t.count})"
            )
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[Timer]:
    """Time an anonymous block: ``with timed() as t: ...; t.total``."""
    t = Timer("<anonymous>")
    t.start()
    try:
        yield t
    finally:
        if t.running:
            t.stop()
