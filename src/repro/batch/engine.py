"""The cross-calculation batch engine: warm-started trajectory pipelines.

Runs an ordered sequence of related structures through the full
SCF -> K-Means/ISDF -> LR-TDDFT pipeline, reusing everything reusable
between consecutive frames:

* converged densities/orbitals warm-start the next SCF
  (:class:`~repro.dft.scf.SCFWarmStart`, built by
  :class:`~repro.batch.warm.BatchWarmState`);
* converged K-Means centroids seed the next selection, and the
  interpolation points themselves are carried forward while the
  assignment drift stays under a threshold
  (:class:`~repro.core.driver.TDDFTWarmStart`);
* previous Casida eigenvectors seed the next LOBPCG solve;
* FFT plans (G-diagonal convolution kernels + half-spectrum slices) are
  shared across frames via :func:`repro.pw.fft.default_plan_cache`, since
  a common lattice means a common grid.

Frames shard across SPMD ranks (thread or process backend) in contiguous
chunks so each rank keeps its own warm chain; chunk heads run cold.
Identical frames (equal :func:`~repro.batch.trajectory.frame_fingerprint`)
are detected up front and replayed bit-identically without recomputing.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.batch.results import BatchResult, FrameRecord, FrameResult
from repro.batch.trajectory import frame_fingerprint
from repro.batch.warm import BatchWarmState
from repro.core.driver import LRTDDFTResult, LRTDDFTSolver
from repro.dft.groundstate import GroundState
from repro.dft.scf import SCFOptions
from repro.dft.scf import run_scf as _run_scf_core
from repro.utils.validation import require

__all__ = ["run_batch"]


def _frame_checkpoint(resilience, index: int):
    """Per-frame SCF checkpointer (frames must not share snapshot tags)."""
    if resilience is None or resilience.checkpoint_dir is None:
        return None
    return resilience.checkpointer(f"batch-scf-{index:04d}")


def _solve_frame(index, cell, config, resilience, state, rank):
    """Run one frame through SCF + LR-TDDFT, warm when ``state`` allows."""
    scf_warm = state.scf_warm_start() if state is not None else None
    t0 = time.perf_counter()
    gs = _run_scf_core(
        cell,
        SCFOptions(**config.scf.to_dict()),
        warm_start=scf_warm,
        checkpoint=_frame_checkpoint(resilience, index),
    )
    t1 = time.perf_counter()

    td = config.tddft
    solver = LRTDDFTSolver(
        gs,
        n_valence=td.n_valence,
        n_conduction=td.n_conduction,
        include_xc=td.include_xc,
        spin=td.spin,
        seed=td.seed,
    )
    tddft_warm = state.tddft_warm_start(solver) if state is not None else None
    frame_resilience = (
        resilience.replace(checkpoint_dir=None) if resilience is not None else None
    )
    result = solver.solve(td, resilience=frame_resilience, warm=tddft_warm)
    t2 = time.perf_counter()

    if state is not None:
        state.observe(gs, result)

    info = result.isdf.selection_info if result.isdf is not None else None
    record = FrameRecord(
        index=index,
        rank=rank,
        warm=scf_warm is not None or tddft_warm is not None,
        reused_identical=False,
        scf_iterations=len(gs.history),
        eigensolver_iterations=result.eigensolver_iterations,
        kmeans_iterations=0 if info is None else int(info.n_iter),
        isdf_reselected=result.isdf is None or info is not None,
        scf_converged=gs.converged,
        tddft_converged=result.converged,
        seconds_scf=t1 - t0,
        seconds_tddft=t2 - t1,
        total_energy=float(gs.total_energy),
        excitation_energies=tuple(float(w) for w in result.energies),
    )
    return FrameResult(record, gs, result)


def _warm_state(config, seed_ground_state=None):
    """A fresh warm chain, optionally pre-seeded with a cached ground state.

    Seeding observes ``seed_ground_state`` before any frame runs, so the
    chunk head starts from the cached density/orbitals instead of cold —
    the job-server cache reusing the batch machinery (ROADMAP item 5
    follow-up).  The seed must be *compatible* with frame 0 (same lattice,
    species, cutoff and band count — :func:`repro.serve.store.
    warm_compatible` is the canonical check); an incompatible seed fails
    loudly inside the SCF warm-start validation.
    """
    if not config.warm_start:
        return None
    state = BatchWarmState(
        density_extrapolation=config.density_extrapolation,
        isdf_drift_threshold=config.isdf_drift_threshold,
        residual_hint_floor=config.residual_hint_floor,
    )
    if seed_ground_state is not None:
        state.observe(seed_ground_state)
    return state


def _run_chunk(chunk, config, resilience, rank=0, on_result=None, seed_ground_state=None):
    """Run one rank's contiguous chunk with its own warm chain."""
    state = _warm_state(config, seed_ground_state)
    out = []
    for index, cell in chunk:
        frame = _solve_frame(index, cell, config, resilience, state, rank)
        if on_result is not None:
            on_result(frame if config.store_results else _strip(frame))
        out.append(frame)
    return out


def _strip(frame: FrameResult) -> FrameResult:
    return FrameResult(frame.record, None, None)


def _rank_program(comm, chunks, config, resilience, seed_payload=None):
    """SPMD rank body: run this rank's chunk, return serialized payloads.

    Results cross the rank boundary as ``to_dict`` payloads so the thread
    and process backends return byte-for-byte the same thing (the process
    backend must serialize anyway).  The seed ground state (if any) also
    crosses as a payload and only rank 0 uses it — rank 0 owns frame 0,
    the only chunk head adjacent to the cached structure.
    """
    seed = None
    if seed_payload is not None and comm.rank == 0:
        seed = GroundState.from_dict(seed_payload)
    frames = _run_chunk(
        chunks[comm.rank],
        config,
        resilience,
        rank=comm.rank,
        seed_ground_state=seed,
    )
    payload = []
    for frame in frames:
        payload.append(
            (
                frame.record.to_dict(),
                frame.ground_state.to_dict() if config.store_results else None,
                frame.tddft.to_dict() if config.store_results else None,
            )
        )
    return payload


def _contiguous_chunks(items, n_ranks):
    """Split ``items`` into ``n_ranks`` contiguous, near-equal chunks."""
    n = len(items)
    base, extra = divmod(n, n_ranks)
    chunks, start = [], 0
    for rank in range(n_ranks):
        size = base + (1 if rank < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def run_batch(
    cells,
    config=None,
    *,
    resilience=None,
    on_result=None,
    seed_ground_state=None,
) -> BatchResult:
    """Run a sequence of related structures with cross-frame reuse.

    Parameters
    ----------
    cells:
        Ordered iterable of :class:`~repro.pw.UnitCell` frames.  Warm
        starts exploit adjacency, so the order should be physically
        meaningful (trajectory order, not shuffled).
    config:
        :class:`~repro.api.BatchConfig` (defaults apply when ``None``).
    resilience:
        Optional :class:`~repro.api.ResilienceConfig`: enables per-frame
        SCF checkpoint/restart (tags are namespaced per frame index) and
        the usual degradation policies inside each solve.
    on_result:
        Streaming callback receiving each :class:`FrameResult` as it
        completes.  Serial runs stream in frame order; SPMD runs invoke
        the callback after the final gather (still in frame order).
    seed_ground_state:
        Optional converged :class:`~repro.dft.GroundState` used to seed
        frame 0's warm chain (e.g. the job server's nearest cached ground
        state), so the first frame no longer runs cold.  Must be
        warm-compatible with frame 0 (same lattice, species, cutoff, band
        count); ignored when ``warm_start`` is off.  With ``n_ranks > 1``
        only rank 0's chunk head is seeded.

    Returns
    -------
    :class:`~repro.batch.results.BatchResult` with per-frame records and
    (when ``store_results``) the full result objects.

    Notes
    -----
    With ``n_ranks > 1`` the *unique* frames are split into contiguous
    chunks, one warm chain per rank — each chunk head runs cold, so
    speedup from warm-starting degrades gracefully with rank count while
    the frames themselves run concurrently.  Cross-rank results round-trip
    through ``to_dict``/``from_dict`` on both SPMD backends, keeping the
    two backends' outputs identical.
    """
    from repro.api.config import BatchConfig

    config = config or BatchConfig()
    require(
        isinstance(config, BatchConfig),
        f"config must be a BatchConfig, got {type(config).__name__}",
    )
    cells = list(cells)
    require(len(cells) > 0, "run_batch needs at least one frame")

    # Identical-frame detection: a later frame whose fingerprint matches an
    # earlier one replays that frame's results bit-identically.
    alias: dict[int, int] = {}
    unique_indices: list[int] = []
    if config.reuse_identical_frames:
        scf_payload = config.scf.to_dict()
        td_payload = config.tddft.to_dict()
        first_of: dict[str, int] = {}
        for i, cell in enumerate(cells):
            fp = frame_fingerprint(cell, scf_payload, td_payload)
            if fp in first_of:
                alias[i] = first_of[fp]
            else:
                first_of[fp] = i
                unique_indices.append(i)
    else:
        unique_indices = list(range(len(cells)))

    work = [(i, cells[i]) for i in unique_indices]
    computed: dict[int, FrameResult] = {}

    if config.n_ranks == 1:
        # Serial: stream strictly in frame order, replaying duplicates
        # inline (aliases only ever point backward).
        warm_state = _warm_state(config, seed_ground_state)
        ordered: list[FrameResult] = []
        for i, cell in enumerate(cells):
            if i in alias:
                frame = _replay(computed[alias[i]], i)
            else:
                frame = _solve_frame(i, cell, config, resilience, warm_state, 0)
                computed[i] = frame
            ordered.append(frame)
            if on_result is not None:
                on_result(frame if config.store_results else _strip(frame))
        frames = ordered
    else:
        from repro.parallel.executor import spmd_run

        chunks = _contiguous_chunks(work, config.n_ranks)
        seed_payload = (
            seed_ground_state.to_dict() if seed_ground_state is not None else None
        )
        per_rank = spmd_run(
            config.n_ranks,
            _rank_program,
            chunks,
            config,
            resilience,
            seed_payload,
            backend=config.spmd_backend,
        )
        for rank_payload in per_rank:
            for record_d, gs_d, td_d in rank_payload:
                record = FrameRecord.from_dict(record_d)
                computed[record.index] = FrameResult(
                    record,
                    GroundState.from_dict(gs_d) if gs_d is not None else None,
                    LRTDDFTResult.from_dict(td_d) if td_d is not None else None,
                )
        frames = []
        for i in range(len(cells)):
            frame = _replay(computed[alias[i]], i) if i in alias else computed[i]
            frames.append(frame)
            if on_result is not None:
                on_result(frame if config.store_results else _strip(frame))

    if not config.store_results:
        frames = [_strip(f) for f in frames]
    return BatchResult(
        records=tuple(f.record for f in frames),
        results=tuple(frames),
        n_ranks=config.n_ranks,
        spmd_backend=config.spmd_backend or "thread",
        warm_start=config.warm_start,
    )


def _replay(source: FrameResult, index: int) -> FrameResult:
    """A bit-identical replay record for a duplicate frame (no work done)."""
    record = replace(
        source.record,
        index=index,
        reused_identical=True,
        warm=False,
        scf_iterations=0,
        eigensolver_iterations=0,
        kmeans_iterations=0,
        isdf_reselected=False,
        seconds_scf=0.0,
        seconds_tddft=0.0,
    )
    return FrameResult(record, source.ground_state, source.tddft)
