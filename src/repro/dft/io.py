"""Ground-state persistence: save/load converged states as ``.npz``.

The SCF is the expensive step of the pipeline; persisting its result lets
LR-TDDFT/RT-TDDFT studies (rank sweeps, kernel ablations) re-run without
redoing it — the same role PWDFT's wavefunction files play for the paper's
experiments.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.dft.groundstate import GroundState
from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell
from repro.utils.validation import require

#: Format version written into every file; bump on layout changes.
FORMAT_VERSION = 1


def save_ground_state(gs: GroundState, path: str | pathlib.Path) -> pathlib.Path:
    """Write a :class:`GroundState` to ``path`` (``.npz`` appended if absent).

    Everything needed to reconstruct the state is stored: cell geometry,
    cutoff, energies, real-space orbitals, occupations and density.  The
    basis itself is rebuilt on load (it is deterministic in cell + ecut).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "format_version": FORMAT_VERSION,
        "species": list(gs.basis.cell.species),
        "ecut": gs.basis.ecut,
        "total_energy": gs.total_energy,
        "converged": bool(gs.converged),
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        lattice=gs.basis.cell.lattice,
        fractional_positions=gs.basis.cell.fractional_positions,
        energies=gs.energies,
        orbitals_real=gs.orbitals_real,
        occupations=gs.occupations,
        density=gs.density,
    )
    return path


def load_ground_state(path: str | pathlib.Path) -> GroundState:
    """Read a :class:`GroundState` written by :func:`save_ground_state`.

    The FFT grid is rebuilt from the stored cell + cutoff and verified
    against the stored orbital shapes (a mismatch means the file was
    produced by an incompatible grid rule).
    """
    path = pathlib.Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        require(
            meta.get("format_version") == FORMAT_VERSION,
            f"unsupported ground-state file version "
            f"{meta.get('format_version')!r}",
        )
        cell = UnitCell(
            data["lattice"],
            tuple(meta["species"]),
            data["fractional_positions"],
        )
        basis = PlaneWaveBasis(cell, float(meta["ecut"]))
        orbitals = data["orbitals_real"]
        require(
            orbitals.shape[1] == basis.n_r,
            f"stored orbitals have {orbitals.shape[1]} grid points but the "
            f"rebuilt basis has {basis.n_r}; incompatible grid rule",
        )
        return GroundState(
            basis=basis,
            energies=data["energies"],
            orbitals_real=orbitals,
            occupations=data["occupations"],
            density=data["density"],
            total_energy=float(meta["total_energy"]),
            converged=bool(meta["converged"]),
        )
