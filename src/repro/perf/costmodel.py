"""Per-kernel cost functions: seconds from problem sizes + machine spec.

Compute kernels follow roofline-style ``flops / (cores x peak x
efficiency)`` with parallelism caps where the algorithm limits it (batch
FFTs cannot use more cores than batch entries; ScaLAPACK eigensolvers stop
scaling past a matrix-size-dependent grid).  Collectives use the alpha-beta
model at node granularity (ranks on one node share the NIC).
"""

from __future__ import annotations

import numpy as np

from repro.perf.machine import MachineSpec
from repro.utils.validation import check_positive


def time_gemm(
    m: float, n: float, k: float, spec: MachineSpec, cores: int
) -> float:
    """Dense ``C(m,n) += A(m,k) B(k,n)``: ``2 m n k`` flops at GEMM rate."""
    check_positive(cores, "cores")
    flops = 2.0 * m * n * k
    return flops / (spec.peak_flops(cores) * spec.gemm_efficiency)


def time_pair_product(
    n_v: float, n_c: float, n_r: float, spec: MachineSpec, cores: int
) -> float:
    """Face-splitting product: one multiply per output element, but
    bandwidth-bound — modeled by streaming the output once per node."""
    bytes_moved = 8.0 * n_v * n_c * n_r * 2.0  # write + one read pass
    nodes = spec.nodes(cores)
    return bytes_moved / (nodes * spec.mem_bw_per_node)


def time_fft_batch(
    n_batch: float, grid_points: float, spec: MachineSpec, cores: int
) -> float:
    """``n_batch`` independent 3-D FFTs of ``grid_points`` each.

    Parallelism is over the batch (the column-block layout of Fig 3a), so
    at most ``n_batch`` cores help.
    """
    check_positive(cores, "cores")
    effective = min(cores, max(n_batch, 1.0))
    flops = n_batch * 5.0 * grid_points * np.log2(max(grid_points, 2.0))
    return flops / (effective * spec.flops_per_core * spec.fft_efficiency)


def _participants(spec: MachineSpec, cores: int, threads_per_process: int) -> int:
    """MPI participants of a collective under the hybrid layout.

    The paper binds ``threads_per_process`` OpenMP threads to each MPI rank
    (Section 6.1 uses 4, the Si_4096 runs use 16); latency terms scale with
    the *process* count, which is why "increasing the number of OpenMP
    threads ... can straightforwardly reduce the communicational cost"
    (Section 6.3).  Data-volume terms stay bounded by the per-node NIC.
    """
    if threads_per_process <= 0:
        raise ValueError("threads_per_process must be positive")
    return max(1, cores // threads_per_process)


def time_alltoall(
    total_bytes: float,
    spec: MachineSpec,
    cores: int,
    *,
    threads_per_process: int = 4,
) -> float:
    """Personalized all-to-all of ``total_bytes`` aggregate payload."""
    nodes = spec.nodes(cores)
    procs = _participants(spec, cores, threads_per_process)
    if nodes == 1 and procs == 1:
        return 0.0
    off_node = total_bytes * max(nodes - 1, 0) / max(nodes, 1)
    per_node = off_node / max(nodes, 1)
    return (procs - 1) * spec.net_latency + per_node / spec.net_bw_per_node


def time_allreduce(
    nbytes: float,
    spec: MachineSpec,
    cores: int,
    *,
    threads_per_process: int = 4,
) -> float:
    """Ring allreduce of an ``nbytes`` buffer (replicated result)."""
    nodes = spec.nodes(cores)
    procs = _participants(spec, cores, threads_per_process)
    if nodes == 1 and procs == 1:
        return 0.0
    volume = (
        (2.0 * nbytes * (nodes - 1) / nodes) / spec.net_bw_per_node
        if nodes > 1
        else 0.0
    )
    return 2.0 * np.log2(max(procs, 2)) * spec.net_latency + volume


def time_reduce(
    nbytes: float,
    spec: MachineSpec,
    cores: int,
    *,
    threads_per_process: int = 4,
) -> float:
    """Tree reduce to one root."""
    nodes = spec.nodes(cores)
    procs = _participants(spec, cores, threads_per_process)
    if nodes == 1 and procs == 1:
        return 0.0
    volume = nbytes / spec.net_bw_per_node if nodes > 1 else 0.0
    return np.log2(max(procs, 2)) * spec.net_latency + volume


def time_kmeans(
    n_points: float,
    n_clusters: float,
    iters: int,
    spec: MachineSpec,
    cores: int,
    *,
    threads_per_process: int = 4,
) -> float:
    """Weighted Lloyd iterations over ``n_points`` (pruned) candidates.

    Per iteration: the classification GEMM (``2 n_points n_clusters d``
    with d = 3 coordinates, plus the argmin pass) and one small Allreduce.
    """
    flops_per_iter = 8.0 * n_points * n_clusters
    compute = iters * flops_per_iter / (
        spec.peak_flops(cores) * spec.kmeans_efficiency
    )
    comm = iters * time_allreduce(
        n_clusters * 5 * 8.0, spec, cores,
        threads_per_process=threads_per_process,
    )
    return compute + comm


def time_dense_eig(n: float, spec: MachineSpec, cores: int) -> float:
    """ScaLAPACK SYEVD: ~10 n^3 flops with bounded strong scaling.

    The 2-D process grid stops helping once local blocks shrink below the
    algorithmic blocking; modeled by capping effective cores at
    ``(n / 64)^2``.
    """
    effective = max(1.0, min(float(cores), (n / 64.0) ** 2))
    flops = 10.0 * n**3
    return flops / (effective * spec.flops_per_core * spec.eig_efficiency)
