#!/usr/bin/env python
"""ISDF compression anatomy: K-Means vs QRCP point selection (Figure 2).

Visualizes where the weighted K-Means clustering places interpolation
points relative to the orbital-pair weight function (paper Figure 2 shows
exactly this: interpolation points on top of a projected excitation
wavefunction), and sweeps the ISDF rank to show the accuracy/cost trade.

    python examples/isdf_compression.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import LRTDDFTSolver, run_scf, water_molecule
from repro.constants import ANGSTROM_TO_BOHR
from repro.core import isdf_decompose, pair_weights, select_points_kmeans
from repro.utils.rng import default_rng


def projection_plot(weights, points_xy, chosen_xy, shape_xy, extent):
    """ASCII map: weight density (shades) + chosen points (O)."""
    nx, ny = 48, 24
    img = np.zeros((ny, nx))
    ix = np.clip((points_xy[:, 0] / extent[0] * nx).astype(int), 0, nx - 1)
    iy = np.clip((points_xy[:, 1] / extent[1] * ny).astype(int), 0, ny - 1)
    np.add.at(img, (iy, ix), weights)
    img /= max(img.max(), 1e-300)
    img **= 0.25  # compress the dynamic range so the tails are visible
    shades = " .:-=+*#@"
    canvas = [[shades[min(8, int(8 * img[y, x]))] for x in range(nx)] for y in range(ny)]
    for x, y in chosen_xy:
        cx = min(nx - 1, int(x / extent[0] * nx))
        cy = min(ny - 1, int(y / extent[1] * ny))
        canvas[cy][cx] = "O"
    return "\n".join("|" + "".join(row) + "|" for row in canvas)


def main() -> None:
    print("=== Ground state: H2O (the weight function is strongly localized) ===")
    cell = water_molecule(box=8.0 * ANGSTROM_TO_BOHR)
    gs = run_scf(cell, ecut=10.0, n_bands=8, tol=1e-7, seed=0)
    psi_v, _, psi_c, _ = gs.select_transition_space()
    grid = gs.basis.grid

    weights = pair_weights(psi_v, psi_c)
    pruned = (weights >= 1e-6 * weights.max()).sum()
    print(f"pair weights: {weights.size} grid points, {pruned} survive the "
          f"1e-6 pruning threshold ({pruned / weights.size:.1%}) — the "
          f"paper's N_r' << N_r observation")

    n_mu = 15  # same count as the paper's Figure 2
    result = select_points_kmeans(
        psi_v, psi_c, n_mu, grid_points=grid.cartesian_points,
        rng=default_rng(0),
    )
    pts = grid.cartesian_points
    chosen = pts[result.indices]
    print(f"\nFigure 2 analogue: weight function (shades) and the {n_mu} "
          "K-Means interpolation points (O), projected on x-z:")
    extent = (cell.lengths[0], cell.lengths[2])
    print(projection_plot(
        weights, pts[:, [0, 2]], chosen[:, [0, 2]], None, extent
    ))

    print("\n=== Rank sweep: ISDF error and excitation-energy error ===")
    solver = LRTDDFTSolver(gs, seed=0)
    reference = solver.solve("naive", n_excitations=3)
    n_cv = solver.n_pairs
    print(f"{'N_mu':>6s} {'N_mu/N_cv':>10s} {'ISDF Frob err':>14s} "
          f"{'energy rel err':>15s} {'kmeans':>8s} {'qrcp':>8s}")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        n_mu = max(3, int(fraction * n_cv))
        t0 = time.perf_counter()
        isdf = isdf_decompose(
            psi_v, psi_c, n_mu, method="kmeans",
            grid_points=grid.cartesian_points, rng=default_rng(1),
        )
        t_k = time.perf_counter() - t0
        t0 = time.perf_counter()
        isdf_decompose(psi_v, psi_c, n_mu, method="qrcp", rng=default_rng(1))
        t_q = time.perf_counter() - t0
        frob = isdf.relative_error(psi_v, psi_c)
        res = solver.solve(
            "implicit-kmeans-isdf-lobpcg", n_excitations=3, n_mu=n_mu, tol=1e-9
        )
        err = np.abs(
            (res.energies - reference.energies[:3]) / reference.energies[:3]
        ).max()
        print(f"{n_mu:6d} {fraction:10.2f} {frob:14.3e} {err:15.3e} "
              f"{t_k:7.3f}s {t_q:7.3f}s")
    print("\nError falls monotonically with rank and vanishes at full rank;")
    print("K-Means selection stays cheap as the rank grows (paper Table 3).")


if __name__ == "__main__":
    main()
