"""Kleinman-Bylander separable application of the non-local pseudopotential.

For every atom and every channel ``(l, i, m)`` we assemble the projector
vector over the plane-wave sphere

    beta_G = Omega^{-1/2} (-i)^l Y_lm(G_hat) R_il(|G|) exp(-i G . tau),

so the non-local operator acts as ``V_nl psi = beta @ (h * (beta^H psi))`` —
two skinny GEMMs, exactly how PWDFT applies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pseudo.hgh import HGHParameters, get_pseudopotential, projector_radial_recip
from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell


def _real_spherical_harmonics(l: int, g_vectors: np.ndarray) -> np.ndarray:
    """Real Y_lm over a set of G-vectors, shape ``(2l+1, n_g)``.

    Only s and p channels are needed by the H/C/O/Si table.
    The ``G = 0`` direction is treated as the z-axis (the radial part of any
    l > 0 projector vanishes there anyway).
    """
    n_g = g_vectors.shape[0]
    if l == 0:
        return np.full((1, n_g), 0.5 / np.sqrt(np.pi))
    if l == 1:
        norms = np.linalg.norm(g_vectors, axis=1)
        safe = np.where(norms > 1e-12, norms, 1.0)
        unit = g_vectors / safe[:, None]
        unit[norms <= 1e-12] = np.array([0.0, 0.0, 1.0])
        pref = np.sqrt(3.0 / (4.0 * np.pi))
        return pref * unit.T  # rows: x, y, z
    raise NotImplementedError(f"spherical harmonics for l={l} not implemented")


@dataclass(frozen=True)
class NonlocalProjectors:
    """All KB projectors of a cell packed as one matrix.

    Attributes
    ----------
    beta:
        ``(N_pw, n_proj)`` complex projector matrix.
    h:
        ``(n_proj,)`` channel strengths (the HGH ``h_ii`` values).
    labels:
        ``(atom_index, symbol, l, i, m)`` per projector column, for
        diagnostics.
    """

    beta: np.ndarray
    h: np.ndarray
    labels: tuple[tuple[int, str, int, int, int], ...]

    @property
    def n_projectors(self) -> int:
        return self.beta.shape[1]

    def apply(self, coeffs: np.ndarray) -> np.ndarray:
        """``V_nl @ psi`` for coefficients ``(..., N_pw)``."""
        if self.n_projectors == 0:
            return np.zeros_like(coeffs)
        overlaps = coeffs @ self.beta.conj()  # (..., n_proj)
        return (overlaps * self.h) @ self.beta.T

    def energy_weights(self, coeffs: np.ndarray) -> np.ndarray:
        """Per-band non-local energy ``<psi| V_nl |psi>`` (real)."""
        overlaps = coeffs @ self.beta.conj()
        return np.einsum("...p,p,...p->...", overlaps.conj(), self.h, overlaps).real


def build_projectors(
    basis: PlaneWaveBasis, cell: UnitCell | None = None
) -> NonlocalProjectors:
    """Assemble the KB projector matrix for every atom in ``cell``.

    ``cell`` defaults to ``basis.cell``; passing it explicitly supports
    frozen-geometry perturbation tests.
    """
    cell = basis.cell if cell is None else cell
    g_sphere = basis.gvectors.g_sphere
    g_norm = np.sqrt(basis.gvectors.g2_sphere)
    inv_sqrt_volume = 1.0 / np.sqrt(basis.volume)

    columns: list[np.ndarray] = []
    strengths: list[float] = []
    labels: list[tuple[int, str, int, int, int]] = []

    pseudo_cache: dict[str, HGHParameters] = {}
    for atom_index, symbol in enumerate(cell.species):
        params = pseudo_cache.setdefault(symbol, get_pseudopotential(symbol))
        if not params.projectors:
            continue
        phase = basis.gvectors.structure_factor_sphere(
            cell.fractional_positions[atom_index]
        )
        for l, (_, h_list) in sorted(params.projectors.items()):
            ylm = _real_spherical_harmonics(l, g_sphere)
            for i, h in enumerate(h_list, start=1):
                if abs(h) < 1e-14:
                    continue
                radial = projector_radial_recip(params, l, i, g_norm)
                base = ((-1j) ** l) * inv_sqrt_volume * radial * phase
                for m in range(2 * l + 1):
                    columns.append(base * ylm[m])
                    strengths.append(h)
                    labels.append((atom_index, symbol, l, i, m - l))

    if columns:
        beta = np.column_stack(columns)
        h = np.asarray(strengths, dtype=float)
    else:
        beta = np.zeros((basis.n_pw, 0), dtype=complex)
        h = np.zeros(0)
    return NonlocalProjectors(beta, h, tuple(labels))
