"""Tests for the plane-wave basis orbital conventions."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.pw import PlaneWaveBasis, UnitCell
from repro.utils.rng import default_rng


@pytest.fixture()
def basis():
    return PlaneWaveBasis(silicon_primitive_cell(), ecut=8.0)


def test_invalid_ecut():
    with pytest.raises(ValueError):
        PlaneWaveBasis(UnitCell.cubic(5.0), ecut=-1.0)


def test_kinetic_diagonal_nonnegative_and_bounded(basis):
    assert (basis.kinetic_diagonal >= 0).all()
    assert (basis.kinetic_diagonal <= basis.ecut + 1e-9).all()


def test_to_real_normalization(basis):
    """Unit coefficient vector => unit L2 norm in real space."""
    rng = default_rng(0)
    c = basis.random_coefficients(1, rng)
    psi = basis.to_real(c)
    norm = (np.abs(psi[0]) ** 2).sum() * basis.grid.dv
    assert norm == pytest.approx(1.0)


def test_roundtrip_within_sphere(basis):
    rng = default_rng(1)
    c = basis.random_coefficients(4, rng)
    c2 = basis.to_recip(basis.to_real(c))
    np.testing.assert_allclose(c2, c, atol=1e-12)


def test_to_recip_projects_out_high_g(basis):
    """Fields outside the sphere are discarded by to_recip (projection)."""
    rng = default_rng(2)
    noise = rng.standard_normal(basis.n_r)
    c = basis.to_recip(noise.astype(complex))
    psi = basis.to_real(c)
    c2 = basis.to_recip(psi)
    np.testing.assert_allclose(c2, c, atol=1e-12)


def test_constant_orbital_coefficient(basis):
    """psi = 1/sqrt(Omega) corresponds to c = e_0 (the G=0 coefficient)."""
    psi = np.full(basis.n_r, 1.0 / np.sqrt(basis.volume), dtype=complex)
    c = basis.to_recip(psi)
    assert c[0] == pytest.approx(1.0)
    np.testing.assert_allclose(c[1:], 0.0, atol=1e-12)


def test_random_coefficients_are_normalized(basis):
    rng = default_rng(3)
    c = basis.random_coefficients(5, rng)
    np.testing.assert_allclose(np.linalg.norm(c, axis=1), 1.0, atol=1e-12)


def test_random_coefficients_deterministic(basis):
    a = basis.random_coefficients(3, default_rng(7))
    b = basis.random_coefficients(3, default_rng(7))
    np.testing.assert_array_equal(a, b)


def test_describe_mentions_sizes(basis):
    text = basis.describe()
    assert str(basis.n_pw) in text
    assert "Ecut" in text


def test_batched_to_real_matches_loop(basis):
    rng = default_rng(4)
    c = basis.random_coefficients(3, rng)
    batched = basis.to_real(c)
    for i in range(3):
        np.testing.assert_allclose(batched[i], basis.to_real(c[i]))
