"""Atomic data and structure builders for the paper's test systems."""

from repro.atoms.elements import Element, get_element
from repro.atoms.xyz import read_xyz, write_xyz
from repro.atoms.structures import (
    bulk_silicon,
    graphene_bilayer,
    graphene_monolayer,
    silicon_conventional_cell,
    silicon_label,
    silicon_primitive_cell,
    twisted_bilayer_graphene,
    water_molecule,
)

__all__ = [
    "Element",
    "get_element",
    "bulk_silicon",
    "silicon_conventional_cell",
    "silicon_primitive_cell",
    "silicon_label",
    "water_molecule",
    "graphene_monolayer",
    "graphene_bilayer",
    "twisted_bilayer_graphene",
    "read_xyz",
    "write_xyz",
]
