"""Ablations of the design choices DESIGN.md calls out.

1. Weight-pruning threshold (Section 4.2's N_r' trick): candidates kept vs
   selection quality.
2. ISDF rank sweep: accuracy vs N_mu (the c in N_mu = c N_e).
3. LOBPCG preconditioner (Eq. 17) on/off: iteration counts.
4. Pipelined GEMM+Reduce vs monolithic GEMM+Allreduce (Figures 4-5):
   per-rank memory and traffic.
5. K-Means initialization policy: greedy-weight vs weighted k-means++.
"""

import numpy as np
import pytest

from repro.core import (
    HxcKernel,
    ImplicitCasidaOperator,
    LRTDDFTSolver,
    isdf_decompose,
    pair_products,
    select_points_kmeans,
)
from repro.eigen import lobpcg
from repro.parallel import (
    BlockDistribution1D,
    distributed_build_vhxc,
    pipelined_vhxc_rows,
    spmd_run,
)
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def solver(si8_state):
    return LRTDDFTSolver(si8_state, seed=1)


def test_ablation_prune_threshold(benchmark, si8_state, save_table):
    gs = si8_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    grid_points = gs.basis.grid.cartesian_points

    def sweep():
        rows = []
        for threshold in (1e-8, 1e-4, 1e-2, 1e-1):
            res = select_points_kmeans(
                psi_v, psi_c, 32, grid_points=grid_points,
                prune_threshold=threshold, rng=default_rng(0),
            )
            rows.append((threshold, res.candidate_indices.size, res.inertia))
        return rows

    rows = benchmark(sweep)
    lines = [
        "Ablation — K-Means weight-pruning threshold",
        "",
        f"{'threshold':>10s} {'candidates':>11s} {'inertia':>12s}",
    ]
    for threshold, n_cand, inertia in rows:
        lines.append(f"{threshold:10.0e} {n_cand:11d} {inertia:12.4e}")
    save_table("ablation_prune", "\n".join(lines))

    counts = [r[1] for r in rows]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[-1] < counts[0]


def test_ablation_rank_sweep(benchmark, solver, save_table):
    reference = solver.solve("naive", n_excitations=4)

    def sweep():
        rows = []
        for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
            n_mu = max(4, int(fraction * solver.n_pairs))
            res = solver.solve(
                "implicit-kmeans-isdf-lobpcg", n_excitations=4,
                n_mu=n_mu, tol=1e-9,
            )
            err = np.abs(
                (res.energies - reference.energies[:4]) / reference.energies[:4]
            ).max()
            rows.append((fraction, n_mu, err))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation — ISDF rank (accuracy vs N_mu / N_cv)",
        "",
        f"{'fraction':>9s} {'N_mu':>6s} {'max rel err':>12s}",
    ]
    for fraction, n_mu, err in rows:
        lines.append(f"{fraction:9.2f} {n_mu:6d} {err:12.3e}")
    save_table("ablation_rank", "\n".join(lines))

    errs = [r[2] for r in rows]
    assert errs[-1] < 1e-6  # full rank: exact
    assert errs[0] > errs[-1]  # error decreases overall with rank


def test_ablation_preconditioner(benchmark, si8_state, save_table):
    """Eq. 17's preconditioner must cut LOBPCG iterations."""
    gs = si8_state
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    isdf = isdf_decompose(
        psi_v, psi_c, 64, method="kmeans",
        grid_points=gs.basis.grid.cartesian_points, rng=default_rng(0),
    )
    op = ImplicitCasidaOperator(isdf, eps_v, eps_c, kernel)
    rng = default_rng(1)
    x0 = rng.standard_normal((op.n_pairs, 6))

    def run():
        with_prec = lobpcg(
            op.apply, x0, preconditioner=op.preconditioner,
            tol=1e-8, max_iter=400,
        )
        without = lobpcg(op.apply, x0, tol=1e-8, max_iter=400)
        return with_prec, without

    with_prec, without = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — LOBPCG preconditioner (paper Eq. 17)",
        "",
        f"with preconditioner:    {with_prec.iterations:4d} iterations "
        f"(converged={with_prec.converged})",
        f"without preconditioner: {without.iterations:4d} iterations "
        f"(converged={without.converged})",
    ]
    save_table("ablation_preconditioner", "\n".join(lines))
    assert with_prec.converged
    assert with_prec.iterations < without.iterations


def test_ablation_pipelined_reduce(benchmark, si8_state, save_table):
    """Figures 4-5: pipelined per-block Reduce vs monolithic Allreduce."""
    gs = si8_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    n_ranks = 4
    dist = BlockDistribution1D(gs.basis.n_r, n_ranks)
    z = pair_products(psi_v, psi_c)
    k = kernel.apply(z.T).T
    n_pairs = z.shape[1]

    def monolithic(comm):
        sl = dist.local_slice(comm.rank)
        distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

    def pipelined(comm):
        sl = dist.local_slice(comm.rank)
        rows, _ = pipelined_vhxc_rows(comm, z[sl], k[sl], kernel.basis.grid.dv)
        return rows.shape

    def run():
        _, mono = spmd_run(n_ranks, monolithic, return_traffic=True)
        shapes, pipe = spmd_run(n_ranks, pipelined, return_traffic=True)
        return mono, pipe, shapes

    mono, pipe, shapes = benchmark.pedantic(run, rounds=1, iterations=1)
    mono_reduce = mono.bytes_by_op.get("allreduce", 0)
    pipe_reduce = pipe.bytes_by_op.get("reduce", 0)
    lines = [
        "Ablation — pipelined GEMM+Reduce vs monolithic GEMM+Allreduce",
        "",
        f"monolithic allreduce volume: {mono_reduce / 1e6:8.2f} MB "
        f"(full V_Hxc on every rank)",
        f"pipelined reduce volume:     {pipe_reduce / 1e6:8.2f} MB "
        f"(owner-only rows)",
        f"per-rank V_Hxc storage:      {n_pairs}x{n_pairs} -> "
        f"{shapes[0][0]}x{shapes[0][1]} rows per rank",
    ]
    save_table("ablation_pipeline", "\n".join(lines))
    # The pipelined scheme stores 1/P of the matrix per rank...
    assert shapes[0][0] == pytest.approx(n_pairs / n_ranks, abs=1)
    # ...and moves less reduction volume than the replicate-everywhere path.
    assert pipe_reduce < mono_reduce


def test_ablation_hybrid_threads(benchmark, save_table):
    """Section 6.3: binding more OpenMP threads per MPI rank reduces the
    collective cost at extreme scale (the paper's Si_4096 runs use 16)."""
    from repro.data.calibration import CALIBRATED_SPEC
    from repro.perf import time_alltoall

    def sweep():
        return {
            tpp: time_alltoall(
                8.0 * 4574296 * 768, CALIBRATED_SPEC, 12288,
                threads_per_process=tpp,
            )
            for tpp in (1, 4, 16, 32)
        }

    times = benchmark(sweep)
    lines = [
        "Ablation — hybrid MPI/OpenMP layout (Si_4096 alltoall @ 12,288 cores)",
        "",
        f"{'threads/rank':>13s} {'processes':>10s} {'alltoall (s)':>13s}",
    ]
    for tpp, t in times.items():
        lines.append(f"{tpp:13d} {12288 // tpp:10d} {t:13.4f}")
    save_table("ablation_hybrid", "\n".join(lines))
    values = list(times.values())
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_ablation_kmeans_init(benchmark, si8_state, save_table):
    gs = si8_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    grid_points = gs.basis.grid.cartesian_points

    def run():
        out = {}
        for init in ("greedy-weight", "plusplus"):
            res = select_points_kmeans(
                psi_v, psi_c, 32, grid_points=grid_points, init=init,
                rng=default_rng(3),
            )
            out[init] = (res.inertia, res.n_iter, res.converged)
        return out

    results = benchmark(run)
    lines = [
        "Ablation — K-Means initialization policy",
        "",
        f"{'init':<16s} {'inertia':>12s} {'iterations':>11s} {'converged':>10s}",
    ]
    for init, (inertia, n_iter, converged) in results.items():
        lines.append(f"{init:<16s} {inertia:12.4e} {n_iter:11d} {converged!s:>10s}")
    save_table("ablation_kmeans_init", "\n".join(lines))
    for inertia, _, converged in results.values():
        assert converged
        assert np.isfinite(inertia)
