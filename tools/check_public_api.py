#!/usr/bin/env python
"""Snapshot test for the exported ``repro.api`` surface.

Describes every name in ``repro.api.__all__`` (kind, dataclass fields with
default reprs, callable signatures) and diffs the description against the
committed manifest ``tools/public_api_manifest.json``.  An unreviewed change
to the public facade — removed export, changed default, changed signature —
shows up as a diff and fails CI.

Usage::

    python tools/check_public_api.py            # verify (exit 1 on drift)
    python tools/check_public_api.py --update   # re-bless the manifest
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
MANIFEST_PATH = os.path.join(_TOOLS_DIR, "public_api_manifest.json")
_SRC_DIR = os.path.join(os.path.dirname(_TOOLS_DIR), "src")


def _field_default(f: dataclasses.Field) -> str:
    if f.default is not dataclasses.MISSING:
        return repr(f.default)
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return "<factory>"
    return "<required>"


def describe_api(module_name: str = "repro.api") -> dict:
    """A JSON-able description of the module's exported surface."""
    if _SRC_DIR not in sys.path:
        sys.path.insert(0, _SRC_DIR)
    api = importlib.import_module(module_name)
    surface: dict[str, dict] = {}
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj) and dataclasses.is_dataclass(obj):
            surface[name] = {
                "kind": "dataclass",
                "fields": {
                    f.name: _field_default(f) for f in dataclasses.fields(obj)
                },
            }
        elif inspect.isclass(obj):
            surface[name] = {"kind": "class"}
        elif callable(obj):
            surface[name] = {
                "kind": "function",
                "signature": str(inspect.signature(obj)),
            }
        else:
            surface[name] = {"kind": type(obj).__name__}
    return surface


def diff_surfaces(expected: dict, actual: dict) -> list[str]:
    """Human-readable drift lines (empty = surfaces match)."""
    problems: list[str] = []
    for name in sorted(set(expected) - set(actual)):
        problems.append(f"removed export: {name}")
    for name in sorted(set(actual) - set(expected)):
        problems.append(f"new unblessed export: {name}")
    for name in sorted(set(expected) & set(actual)):
        if expected[name] != actual[name]:
            problems.append(
                f"changed: {name}\n  manifest: {expected[name]}\n"
                f"  current:  {actual[name]}"
            )
    return problems


def check(manifest_path: str | None = None) -> list[str]:
    """Drift lines between the committed manifest and the live surface."""
    manifest_path = manifest_path or MANIFEST_PATH
    if not os.path.exists(manifest_path):
        return [f"manifest missing: {manifest_path} (run with --update)"]
    with open(manifest_path) as fh:
        expected = json.load(fh)
    return diff_surfaces(expected, describe_api())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the manifest from the current surface",
    )
    args = parser.parse_args(argv)
    if args.update:
        surface = describe_api()
        with open(MANIFEST_PATH, "w") as fh:
            json.dump(surface, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {MANIFEST_PATH} ({len(surface)} exports)")
        return 0
    problems = check()
    if problems:
        print("public API drift detected:")
        for p in problems:
            print(f"- {p}")
        print("\nif intentional, re-bless with: python tools/check_public_api.py --update")
        return 1
    print("public API matches the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
