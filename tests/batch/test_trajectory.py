"""Trajectory generation and frame fingerprinting for the batch engine."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.batch import frame_fingerprint, perturbed_trajectory


@pytest.fixture(scope="module")
def cell():
    return silicon_primitive_cell()


class TestPerturbedTrajectory:
    def test_deterministic(self, cell):
        a = perturbed_trajectory(cell, 5, amplitude=0.02, seed=3)
        b = perturbed_trajectory(cell, 5, amplitude=0.02, seed=3)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(
                fa.fractional_positions, fb.fractional_positions
            )

    def test_shared_lattice_and_species(self, cell):
        frames = perturbed_trajectory(cell, 4, seed=0)
        assert len(frames) == 4
        for frame in frames:
            np.testing.assert_array_equal(frame.lattice, cell.lattice)
            assert tuple(frame.species) == tuple(cell.species)
            assert np.all(frame.fractional_positions >= 0.0)
            assert np.all(frame.fractional_positions < 1.0)

    def test_consecutive_frames_close_but_distinct(self, cell):
        frames = perturbed_trajectory(cell, 3, amplitude=0.01, period=16.0, seed=1)
        d01 = np.abs(frames[1].fractional_positions - frames[0].fractional_positions)
        assert d01.max() > 0.0
        # Smooth trajectory: per-frame steps stay well under the amplitude
        # scale (sin increments over 1/16 of a period).
        assert d01.max() < 0.05

    def test_zero_amplitude_freezes_atoms(self, cell):
        frames = perturbed_trajectory(cell, 3, amplitude=0.0, seed=0)
        np.testing.assert_array_equal(
            frames[0].fractional_positions, frames[2].fractional_positions
        )

    def test_seed_changes_trajectory(self, cell):
        a = perturbed_trajectory(cell, 2, seed=0)[1]
        b = perturbed_trajectory(cell, 2, seed=1)[1]
        assert np.abs(a.fractional_positions - b.fractional_positions).max() > 0

    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_frames=0), dict(n_frames=2, amplitude=-0.1),
         dict(n_frames=2, period=0.0)],
    )
    def test_validation(self, cell, kwargs):
        n_frames = kwargs.pop("n_frames")
        with pytest.raises(ValueError):
            perturbed_trajectory(cell, n_frames, **kwargs)


class TestFrameFingerprint:
    def test_equal_inputs_equal_digest(self, cell):
        frames = perturbed_trajectory(cell, 2, seed=5)
        again = perturbed_trajectory(cell, 2, seed=5)
        assert frame_fingerprint(frames[0]) == frame_fingerprint(again[0])

    def test_sensitive_to_positions(self, cell):
        frames = perturbed_trajectory(cell, 2, amplitude=0.01, seed=5)
        assert frame_fingerprint(frames[0]) != frame_fingerprint(frames[1])

    def test_sensitive_to_payloads(self, cell):
        assert frame_fingerprint(cell, {"ecut": 10.0}) != frame_fingerprint(
            cell, {"ecut": 12.0}
        )
        assert frame_fingerprint(cell, {"ecut": 10.0}) == frame_fingerprint(
            cell, {"ecut": 10.0}
        )
