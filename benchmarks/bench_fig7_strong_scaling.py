"""Paper Figure 7: strong scaling of three versions on Si_1000.

Also covers the Section 6.3 Si_4096 extreme-scale points (8,192 and 12,288
cores, 87.34% efficiency).

Two layers: the calibrated cost model regenerates the figure at the paper's
core counts, and the real SPMD runtime measures strong scaling of the
actual distributed Algorithm 1 at small virtual-rank counts.
"""

import time

import numpy as np
import pytest

from repro.atoms import bulk_silicon
from repro.core import HxcKernel
from repro.data.calibration import (
    CALIBRATED_SPEC,
    STRONG_SCALING_CORES,
    paper_workload,
)
from repro.data.paper_reference import (
    PAPER_NAIVE_EFFICIENCY_FLOOR,
    PAPER_SI4096_STRONG,
)
from repro.parallel import BlockDistribution1D, distributed_build_vhxc, spmd_run
from repro.perf import parallel_efficiency, strong_scaling_series
from repro.synthetic import synthetic_ground_state

VERSIONS = ("naive", "kmeans-isdf", "implicit-kmeans-isdf-lobpcg")


def test_fig7_modeled(benchmark, save_table):
    w = paper_workload(1000)
    cores = list(STRONG_SCALING_CORES)

    def run():
        return {
            v: strong_scaling_series(v, w, cores, CALIBRATED_SPEC)
            for v in VERSIONS
        }

    series = benchmark(run)

    lines = [
        "Figure 7 — strong scaling, Si_1000 (modeled wall-clock, seconds)",
        "",
        f"{'version':<30s}" + "".join(f"{c:>9d}" for c in cores)
        + f"{'eff@2048':>10s}",
    ]
    for version, times in series.items():
        effs = parallel_efficiency(times, cores)
        lines.append(
            f"{version:<30s}"
            + "".join(f"{t.total:9.2f}" for t in times)
            + f"{effs[-1]:9.0%}"
        )
    lines += [
        "",
        "Section 6.3 — Si_4096 at extreme scale (modeled vs paper):",
    ]
    w4096 = paper_workload(4096)
    big = strong_scaling_series(
        "implicit-kmeans-isdf-lobpcg", w4096, [8192, 12288], CALIBRATED_SPEC
    )
    for (c, t_ref), t in zip(PAPER_SI4096_STRONG.items(), big):
        lines.append(f"  {c:6d} cores: model {t.total:6.2f} s, paper {t_ref:6.2f} s")
    eff = parallel_efficiency(big, [8192, 12288])[1]
    lines.append(f"  efficiency 8,192 -> 12,288: model {eff:.1%}, paper 87.3%")
    save_table("fig7_strong_scaling", "\n".join(lines))

    naive_eff = parallel_efficiency(series["naive"], cores)
    assert naive_eff[-1] >= PAPER_NAIVE_EFFICIENCY_FLOOR
    for version in VERSIONS:
        totals = [t.total for t in series[version]]
        assert all(a > b for a, b in zip(totals, totals[1:]))
    # Optimized beats naive at every core count (Figure 7's vertical gap).
    for t_naive, t_opt in zip(
        series["naive"], series["implicit-kmeans-isdf-lobpcg"]
    ):
        assert t_opt.total < t_naive.total
    assert 0.6 < eff <= 1.0


def test_fig7_real_spmd_scaling(benchmark, save_table):
    """Strong scaling of the real distributed Algorithm 1 on virtual ranks.

    Thread-level speedup is bounded by shared-memory bandwidth, so the
    assertion is correctness-plus-no-blowup rather than ideal speedup; the
    measured series is recorded for the report.
    """
    gs = synthetic_ground_state(
        bulk_silicon(8), ecut=6.0, n_valence=16, n_conduction=12, seed=9
    )
    psi_v, _, psi_c, _ = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)

    def run_at(n_ranks: int) -> float:
        dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            return distributed_build_vhxc(
                comm, psi_v[:, sl], psi_c[:, sl], kernel, dist
            )

        t0 = time.perf_counter()
        spmd_run(n_ranks, prog)
        return time.perf_counter() - t0

    ranks = (1, 2, 4, 8)
    times = {p: min(run_at(p) for _ in range(3)) for p in ranks}
    benchmark.pedantic(lambda: run_at(4), rounds=1, iterations=1)

    lines = [
        "Figure 7 (real SPMD, virtual ranks) — distributed V_Hxc build",
        "",
        f"{'ranks':>6s} {'time (s)':>10s} {'vs 1 rank':>10s}",
    ]
    for p in ranks:
        lines.append(f"{p:6d} {times[p]:10.4f} {times[1] / times[p]:10.2f}x")
    save_table("fig7_real_spmd", "\n".join(lines))

    # No pathological slowdown from the runtime itself.
    assert times[8] < 4.0 * times[1]
