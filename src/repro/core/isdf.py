"""The ISDF decomposition driver (Section 4.1, Figure 1).

Bundles point selection (QRCP or K-Means) with the least-squares fit into a
single result object:

    psi_v(r) psi_c(r)  ~=  sum_mu zeta_mu(r) * psi_v(r_mu) psi_c(r_mu)

i.e. ``Z ~= Theta C`` with ``Theta`` the interpolation vectors (auxiliary
basis functions) and ``C`` the separable coefficient tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitting import coefficient_matrix, fit_interpolation_vectors
from repro.core.kmeans import select_points_kmeans
from repro.core.pair_products import pair_products
from repro.core.qrcp import select_points_qrcp
from repro.utils.hot import array_contract
from repro.utils.rng import default_rng
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require

#: How K-Means point selection fails in practice: degenerate clusters or
#: weights (ValueError), numerical breakdown (ArithmeticError, LinAlgError)
#: or a backend fault surfacing as RuntimeError.  Injected faults, aborts
#: and programming errors must propagate rather than silently triggering
#: the QRCP fallback.
_SELECTION_FAILURES = (
    RuntimeError,
    ValueError,
    ArithmeticError,
    np.linalg.LinAlgError,
)


def default_rank(n_v: int, n_c: int, n_r: int, rank_factor: float = 10.0) -> int:
    """Paper-style default rank ``N_mu ~= rank_factor * sqrt(N_v N_c)``.

    (Table 4 note: ``N_mu ~= 10 x N_e`` with ``N_v ~= N_c ~= N_e``.)
    Clipped to ``min(N_r, N_v * N_c)`` where the decomposition is exact.
    """
    n_mu = int(np.ceil(rank_factor * np.sqrt(n_v * n_c)))
    return max(1, min(n_mu, n_r, n_v * n_c))


@dataclass(frozen=True)
class ISDFDecomposition:
    """Result of an ISDF compression of the pair products.

    Attributes
    ----------
    indices:
        ``(N_mu,)`` interpolation-point indices into the grid.
    theta:
        ``(N_r, N_mu)`` interpolation vectors (auxiliary basis functions).
    psi_v_mu / psi_c_mu:
        Orbital values at the interpolation points — the separable factors
        of ``C`` (kept factored so the implicit method never builds
        ``N_mu x N_cv`` unless asked).
    method:
        Point-selection method used ("kmeans" / "qrcp").
    selection_info:
        Method-specific result object (KMeansResult / QRCPResult).
    """

    indices: np.ndarray
    theta: np.ndarray
    psi_v_mu: np.ndarray
    psi_c_mu: np.ndarray
    method: str
    selection_info: object | None = None

    @property
    def n_mu(self) -> int:
        return int(self.indices.size)

    @property
    def n_pairs(self) -> int:
        return self.psi_v_mu.shape[0] * self.psi_c_mu.shape[0]

    def coefficients(self) -> np.ndarray:
        """Materialize ``C`` of shape ``(N_mu, N_cv)``."""
        c = self.psi_v_mu.T[:, :, None] * self.psi_c_mu.T[:, None, :]
        return c.reshape(self.n_mu, -1)

    @array_contract(
        shapes={"x": ("n_pairs", "n_rhs")},
        dtypes={"x": ("float64", "complex128")},
        contiguous=("x",),
    )
    def apply_c(self, x: np.ndarray) -> np.ndarray:
        """``C @ X`` for ``X`` of shape ``(N_cv, k)`` without forming C.

        Reshapes ``X`` to ``(N_v, N_c, k)`` and contracts the orbital
        factors: ``(C X)[mu, k] = sum_vc psi_v(mu) psi_c(mu) X[vc, k]``.
        """
        n_v = self.psi_v_mu.shape[0]
        n_c = self.psi_c_mu.shape[0]
        x3 = x.reshape(n_v, n_c, -1)
        # First contract conduction, then valence: O((N_v + 1) N_c N_mu k).
        t = np.einsum("cm,vck->vmk", self.psi_c_mu, x3, optimize=True)
        return np.einsum("vm,vmk->mk", self.psi_v_mu, t, optimize=True)

    @array_contract(
        shapes={"y": ("n_mu", "n_rhs")},
        dtypes={"y": ("float64", "complex128")},
        contiguous=("y",),
    )
    def apply_ct(self, y: np.ndarray) -> np.ndarray:
        """``C^T @ Y`` for ``Y`` of shape ``(N_mu, k)`` without forming C."""
        t = np.einsum("vm,mk->vmk", self.psi_v_mu, y, optimize=True)
        out = np.einsum("cm,vmk->vck", self.psi_c_mu, t, optimize=True)
        return out.reshape(self.n_pairs, -1)

    def reconstruct(self) -> np.ndarray:
        """Materialize the rank-``N_mu`` approximation ``Theta C``.

        ``O(N_r N_cv)`` memory — diagnostics/small systems only.
        """
        return self.theta @ self.coefficients()

    def to_dict(self) -> dict:
        """Serializable payload (``selection_info`` is intentionally dropped:
        it is a diagnostics object, not part of the decomposition)."""
        return {
            "indices": self.indices,
            "theta": self.theta,
            "psi_v_mu": self.psi_v_mu,
            "psi_c_mu": self.psi_c_mu,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ISDFDecomposition":
        return cls(
            indices=np.array(data["indices"]),
            theta=np.array(data["theta"]),
            psi_v_mu=np.array(data["psi_v_mu"]),
            psi_c_mu=np.array(data["psi_c_mu"]),
            method=str(data["method"]),
            selection_info=None,
        )

    def relative_error(self, psi_v: np.ndarray, psi_c: np.ndarray) -> float:
        """Frobenius error ``||Z - Theta C|| / ||Z||`` (forms Z; small only)."""
        z = pair_products(psi_v, psi_c)
        diff = z - self.reconstruct()
        denom = float(np.linalg.norm(z))
        return float(np.linalg.norm(diff)) / max(denom, 1e-300)

    def relative_error_cheap(self, psi_v: np.ndarray, psi_c: np.ndarray) -> float:
        """Exact Frobenius error *without* materializing ``Z``.

        For the least-squares fit ``Theta = Z C^T (C C^T)^{-1}`` the
        residual norm has a closed form:

            ||Z - Theta C||_F^2 = ||Z||_F^2 - tr[(C C^T)^{-1} (Z C^T)^T (Z C^T)],

        and both ingredients are separable: ``||Z||_F^2`` is the sum of the
        pair weights (Eq. 14), and ``Z C^T`` is the Hadamard Gram product
        already used by the fit.  Cost ``O(N_r N_mu (N_v + N_c) + N_r
        N_mu^2)`` — usable at production scale, unlike
        :meth:`relative_error`.

        Note: exact only for the *unregularized* fit; the default ridge
        perturbs Theta by ``O(ridge x cond^2)``, so tiny discrepancies vs
        :meth:`relative_error` appear for ill-conditioned point sets.
        """
        from repro.core.pair_products import pair_weights

        z_norm_sq = float(pair_weights(psi_v, psi_c).sum())
        v_pts = psi_v[:, self.indices]
        c_pts = psi_c[:, self.indices]
        zct = (psi_v.T @ v_pts) * (psi_c.T @ c_pts)  # (N_r, N_mu)
        cct = (v_pts.T @ v_pts) * (c_pts.T @ c_pts)  # (N_mu, N_mu)
        gram = zct.T @ zct
        # tr[(C C^T)^{-1} gram] via a solve (pseudo-inverse on deficiency).
        try:
            solved = np.linalg.solve(cct, gram)
        except np.linalg.LinAlgError:
            solved = np.linalg.lstsq(cct, gram, rcond=None)[0]
        projected = float(np.trace(solved))
        residual_sq = max(z_norm_sq - projected, 0.0)
        return float(np.sqrt(residual_sq / max(z_norm_sq, 1e-300)))


def isdf_decompose(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    n_mu: int | None = None,
    *,
    method: str = "kmeans",
    grid_points: np.ndarray | None = None,
    rank_factor: float = 10.0,
    rng: np.random.Generator | None = None,
    timers: TimerRegistry | None = None,
    fallback: str | None = None,
    checkpoint=None,
    indices: np.ndarray | None = None,
    precision=None,
    **selection_kwargs,
) -> ISDFDecomposition:
    """Run point selection + least-squares fit.

    Parameters
    ----------
    method:
        ``"kmeans"`` (Section 4.2, default) or ``"qrcp"`` (Section 4.1.1).
    grid_points:
        ``(N_r, 3)`` Cartesian grid coordinates; required for K-Means.
    n_mu:
        Rank; defaults to :func:`default_rank` with ``rank_factor``.
    indices:
        Explicit interpolation-point indices — skips point selection
        entirely and only runs the least-squares fit against the new
        orbitals.  This is the cross-calculation reuse path: for a small
        structural perturbation the selected points barely move, so a batch
        engine carries them forward until a drift check says otherwise.
        A checkpoint resume (below) takes precedence.
    fallback:
        ``"qrcp"`` re-selects points with randomized QRCP when the K-Means
        clustering fails to converge (or raises) — the graceful-degradation
        policy of :class:`repro.api.ResilienceConfig`.  ``None`` (default)
        keeps the historical fail-fast behavior.
    checkpoint:
        Optional :class:`~repro.resilience.checkpoint.LoopCheckpointer`;
        the pipeline snapshots each completed stage (0 = point selection,
        1 = interpolation-vector fit) so a restarted decomposition reuses
        the selected points (and, when present, the fitted vectors)
        instead of recomputing.  ``selection_info`` is ``None`` on a
        resumed result.
    precision:
        A precision mode string or :class:`repro.precision.PrecisionConfig`,
        forwarded to the K-Means selection (fp32 classification with fp64
        accumulators and a converged-assignment recheck) and the
        least-squares fit (fp32 tall-skinny GEMMs with a sampled fp64
        residual check).  QRCP selection always runs in fp64.
    selection_kwargs:
        Forwarded to the point selector (e.g. ``prune_threshold``,
        ``sketch``, ``oversample``).
    """
    timers = timers or TimerRegistry()
    rng = rng or default_rng()
    n_v, n_r = psi_v.shape
    n_c = psi_c.shape[0]
    if n_mu is None:
        n_mu = default_rank(n_v, n_c, n_r, rank_factor)
    require(0 < n_mu <= min(n_r, n_v * n_c), f"invalid n_mu={n_mu}")
    require(
        fallback in (None, "qrcp"),
        f"unknown selection fallback {fallback!r}; only 'qrcp' is supported",
    )

    reused = indices
    if reused is not None:
        reused = np.asarray(reused, dtype=np.int64)
        require(reused.ndim == 1 and reused.size > 0, "indices must be 1-D, non-empty")
        require(
            int(reused.min()) >= 0 and int(reused.max()) < n_r,
            f"indices out of range for N_r={n_r}",
        )

    indices = theta = info = None
    method_used = method
    resumed = checkpoint.resume() if checkpoint is not None else None
    if resumed is not None:
        _, state = resumed
        indices = np.array(state["indices"])
        method_used = str(state["method"])
        if state.get("theta") is not None:
            theta = np.array(state["theta"])

    if indices is None and reused is not None:
        indices = np.sort(np.unique(reused))

    if indices is None:
        if method == "kmeans":
            require(grid_points is not None, "kmeans selection needs grid_points")
            with timers.scope("isdf/select_kmeans"):
                try:
                    info = select_points_kmeans(
                        psi_v, psi_c, n_mu, grid_points=grid_points, rng=rng,
                        precision=precision, **selection_kwargs,
                    )
                    selection_ok = info.converged
                    indices = info.indices
                except _SELECTION_FAILURES:
                    if fallback is None:
                        raise
                    selection_ok = False
            if not selection_ok and fallback == "qrcp":
                with timers.scope("isdf/select_qrcp_fallback"):
                    info = select_points_qrcp(psi_v, psi_c, n_mu, rng=rng)
                indices = np.sort(info.indices)
                method_used = "qrcp"
        elif method == "qrcp":
            with timers.scope("isdf/select_qrcp"):
                info = select_points_qrcp(
                    psi_v, psi_c, n_mu, rng=rng, **selection_kwargs
                )
            indices = np.sort(info.indices)
        else:
            raise ValueError(f"unknown ISDF method {method!r}")
        if checkpoint is not None:
            checkpoint.save(
                0,
                {"indices": indices, "method": method_used, "theta": None},
                force=True,
            )

    if theta is None:
        with timers.scope("isdf/fit"):
            theta = fit_interpolation_vectors(
                psi_v, psi_c, indices, precision=precision
            )
        if checkpoint is not None:
            checkpoint.save(
                1,
                {"indices": indices, "method": method_used, "theta": theta},
                force=True,
            )

    return ISDFDecomposition(
        indices=indices,
        theta=theta,
        psi_v_mu=psi_v[:, indices].copy(),
        psi_c_mu=psi_c[:, indices].copy(),
        method=method_used,
        selection_info=info,
    )
