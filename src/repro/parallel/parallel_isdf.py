"""Fully distributed ISDF and the end-to-end optimized LR-TDDFT pipeline.

This ties every distributed kernel of the paper together, start to finish,
with the orbitals arriving row-block distributed over grid points and
*nothing* of size ``O(N_r)`` ever gathered:

1. pair weights — local (Eq. 14 is separable),
2. weighted K-Means — :func:`repro.parallel.parallel_kmeans.distributed_kmeans`,
3. orbital values at the interpolation points — one small Allgather
   (``(N_v + N_c) x N_mu`` floats),
4. interpolation-vector fit — local Hadamard-GEMMs over the owned grid
   rows, replicated ``N_mu x N_mu`` Cholesky (Eq. 10),
5. projected kernel ``Vtilde`` — the Algorithm 1 transpose/FFT pattern
   (:func:`repro.parallel.parallel_lrtddft.distributed_isdf_vtilde`),
6. implicit LOBPCG over pair-distributed Ritz vectors
   (:func:`repro.parallel.parallel_lobpcg.distributed_lobpcg`).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockDistribution1D
from repro.parallel.parallel_kmeans import distributed_kmeans
from repro.parallel.parallel_lobpcg import distributed_lobpcg
from repro.parallel.parallel_lrtddft import distributed_isdf_vtilde
from repro.utils.validation import require


def _gather_point_values(
    comm: Communicator,
    psi_local: np.ndarray,
    indices: np.ndarray,
    grid_dist: BlockDistribution1D,
) -> np.ndarray:
    """Orbital values at global grid indices from row-distributed orbitals.

    Each rank contributes the columns it owns; one Allreduce of the small
    ``(n_bands, N_mu)`` matrix assembles the rest.
    """
    sl = grid_dist.local_slice(comm.rank)
    values = np.zeros((psi_local.shape[0], indices.size))
    mine = (indices >= sl.start) & (indices < sl.stop)
    if mine.any():
        values[:, mine] = psi_local[:, indices[mine] - sl.start]
    return comm.allreduce(values)


def distributed_select_points_kmeans(
    comm: Communicator,
    psi_v_local: np.ndarray,
    psi_c_local: np.ndarray,
    n_mu: int,
    grid_points_local: np.ndarray,
    grid_dist: BlockDistribution1D,
    *,
    prune_threshold: float = 1e-6,
    max_iter: int = 100,
) -> np.ndarray:
    """Distributed Section 4.2: weights -> prune -> K-Means -> global indices.

    Returns the sorted global grid indices of the interpolation points
    (identical on every rank).
    """
    weights_local = np.einsum("vr,vr->r", psi_v_local, psi_v_local) * np.einsum(
        "cr,cr->r", psi_c_local, psi_c_local
    )
    w_max = comm.allreduce(np.array([weights_local.max() if weights_local.size else 0.0]), op="max")[0]
    require(w_max > 0.0, "pair weights vanish everywhere")

    keep_local = np.flatnonzero(weights_local >= prune_threshold * w_max)
    my_offset = grid_dist.displacement(comm.rank)
    keep_global = keep_local + my_offset

    # Candidate set is row-distributed but unevenly; rebuild a distribution
    # by exchanging counts (allgather of ints).
    counts = comm.allgather(int(keep_local.size))
    n_candidates = sum(counts)
    require(n_candidates >= n_mu, "pruning left fewer candidates than n_mu")

    cand_points = grid_points_local[keep_local]
    cand_weights = weights_local[keep_local]

    # distributed_kmeans expects a BlockDistribution1D-compatible split; we
    # adapt by passing an exact-count distribution via a tiny shim object.
    class _ExactDist:
        n_global = n_candidates
        n_ranks = comm.size

        @staticmethod
        def count(rank: int) -> int:
            return counts[rank]

        @staticmethod
        def displacement(rank: int) -> int:
            return sum(counts[:rank])

    centroids, labels, _, _, _ = distributed_kmeans(
        comm, cand_points, cand_weights, n_mu, _ExactDist(), max_iter=max_iter
    )

    # Representative per cluster: globally nearest candidate (weighted by
    # squared distance; ties broken by global index). One allreduce of the
    # (n_mu, 2) best-distance/index table in two passes.
    if cand_points.size:
        deltas = cand_points[:, None, :] - centroids[None, :, :]
        d2 = np.einsum("pkd,pkd->pk", deltas, deltas)
    else:
        d2 = np.zeros((0, n_mu))
    best_d = np.full(n_mu, np.inf)
    best_idx = np.full(n_mu, np.iinfo(np.int64).max, dtype=np.int64)
    for k in range(n_mu):
        members = np.flatnonzero(labels == k)
        if members.size:
            j = members[np.argmin(d2[members, k])]
            best_d[k] = d2[j, k]
            best_idx[k] = keep_global[j]
    global_best_d = comm.allreduce(best_d, op="min")
    # A rank's candidate wins only if it matches the global best distance;
    # ties resolve to the lowest global index.
    candidate_idx = np.where(
        np.isclose(best_d, global_best_d, rtol=0.0, atol=0.0),
        best_idx,
        np.iinfo(np.int64).max,
    )
    winners = comm.allreduce(candidate_idx, op="min")
    require(
        (winners < np.iinfo(np.int64).max).all(),
        "a cluster ended up with no representative",
    )
    return np.sort(np.unique(winners))


def distributed_fit_theta(
    comm: Communicator,
    psi_v_local: np.ndarray,
    psi_c_local: np.ndarray,
    indices: np.ndarray,
    grid_dist: BlockDistribution1D,
    *,
    regularization: float = 1e-12,
) -> np.ndarray:
    """Row-distributed interpolation vectors ``Theta_local`` (Eq. 10).

    Local work: two Hadamard tall-skinny GEMMs over the owned grid rows;
    global work: one Allreduce of the ``(n_bands, N_mu)`` point values
    (inside :func:`_gather_point_values`) and the replicated ``N_mu x N_mu``
    Cholesky.
    """
    v_pts = _gather_point_values(comm, psi_v_local, indices, grid_dist)
    c_pts = _gather_point_values(comm, psi_c_local, indices, grid_dist)

    p_v = psi_v_local.T @ v_pts  # (my_rows, N_mu)
    p_c = psi_c_local.T @ c_pts
    zct_local = p_v * p_c

    gram = (v_pts.T @ v_pts) * (c_pts.T @ c_pts)
    scale = float(np.trace(gram)) / max(gram.shape[0], 1)
    gram = gram + regularization * max(scale, 1e-300) * np.eye(gram.shape[0])
    chol = sla.cho_factor(gram, lower=False)
    return sla.cho_solve(chol, zct_local.T).T


def distributed_optimized_lrtddft(
    comm: Communicator,
    psi_v_local: np.ndarray,
    psi_c_local: np.ndarray,
    eps_v: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    grid_dist: BlockDistribution1D,
    n_mu: int,
    n_excitations: int,
    *,
    grid_points_local: np.ndarray,
    prune_threshold: float = 1e-6,
    tol: float = 1e-9,
    max_iter: int = 300,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's version (5), fully distributed end to end.

    Returns ``(energies, x_local)`` where ``x_local`` holds this rank's
    rows (pair-distributed) of the excitation wavefunctions.
    """
    indices = distributed_select_points_kmeans(
        comm, psi_v_local, psi_c_local, n_mu, grid_points_local, grid_dist,
        prune_threshold=prune_threshold,
    )
    theta_local = distributed_fit_theta(
        comm, psi_v_local, psi_c_local, indices, grid_dist
    )
    vtilde = distributed_isdf_vtilde(comm, theta_local, kernel, grid_dist)

    # Pair-space quantities: C stays factored from the replicated point
    # values (small), and LOBPCG runs over pair-distributed vectors.
    v_pts = _gather_point_values(comm, psi_v_local, indices, grid_dist)
    c_pts = _gather_point_values(comm, psi_c_local, indices, grid_dist)
    n_v, n_c = v_pts.shape[0], c_pts.shape[0]
    n_pairs = n_v * n_c
    c_full = (
        v_pts.T[:, :, None] * c_pts.T[:, None, :]
    ).reshape(indices.size, n_pairs)

    d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
    pair_dist = BlockDistribution1D(n_pairs, comm.size)
    sl = pair_dist.local_slice(comm.rank)
    d_local = d[sl]
    c_local = np.ascontiguousarray(c_full[:, sl])

    def apply_local(x_local: np.ndarray) -> np.ndarray:
        cx = comm.allreduce(c_local @ x_local)
        return d_local[:, None] * x_local + 2.0 * (c_local.T @ (vtilde @ cx))

    def precond_local(r_local: np.ndarray, theta: np.ndarray) -> np.ndarray:
        denom = np.maximum(np.abs(d_local[:, None] - theta[None, :]), 1e-2)
        return r_local / denom

    # Deterministic start: unit vectors on the globally lowest transitions.
    k = n_excitations
    lowest = np.argsort(d)[:k]
    x0_local = np.zeros((d_local.shape[0], k))
    for col, global_row in enumerate(lowest):
        if sl.start <= global_row < sl.stop:
            x0_local[global_row - sl.start, col] = 1.0
    rng = np.random.default_rng(seed)
    # Same global perturbation on every rank, sliced locally.
    noise = 1e-3 * rng.standard_normal((n_pairs, k))
    x0_local += noise[sl]

    res = distributed_lobpcg(
        comm, apply_local, x0_local,
        preconditioner_local=precond_local, tol=tol, max_iter=max_iter,
    )
    return res.eigenvalues, res.eigenvectors
