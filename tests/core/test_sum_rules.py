"""Physical sum rules and global consistency checks on the spectra."""

import numpy as np
import pytest

from repro.core import LRTDDFTSolver, oscillator_strengths, transition_dipoles


class TestThomasReicheKuhn:
    """The TRK sum rule: sum_n f_n -> N_electrons in a complete basis.

    With a truncated conduction space the sum undershoots; it must stay
    positive, below N_e, and grow as the space opens.
    """

    def test_sum_positive_and_bounded(self, water_ground_state):
        solver = LRTDDFTSolver(water_ground_state, seed=0)
        res = solver.solve("naive")
        dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
        f = oscillator_strengths(res.energies, res.wavefunctions, dip)
        total = f.sum()
        assert 0.0 < total < water_ground_state.n_electrons

    def test_sum_grows_with_conduction_space(self, si2_ground_state):
        totals = []
        for n_c in (2, 4, 6):
            solver = LRTDDFTSolver(si2_ground_state, n_conduction=n_c, seed=0)
            res = solver.solve("naive")
            dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
            f = oscillator_strengths(res.energies, res.wavefunctions, dip)
            totals.append(f.sum())
        assert totals[0] < totals[-1]


class TestSpectralConsistency:
    def test_isdf_preserves_total_oscillator_strength(self, water_ground_state):
        """Compression must not create or destroy spectral weight beyond
        its energy error band."""
        solver = LRTDDFTSolver(water_ground_state, seed=0)
        dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
        naive = solver.solve("naive")
        f_naive = oscillator_strengths(naive.energies, naive.wavefunctions, dip)
        isdf = solver.solve("kmeans-isdf")
        f_isdf = oscillator_strengths(isdf.energies, isdf.wavefunctions, dip)
        assert f_isdf.sum() == pytest.approx(f_naive.sum(), rel=0.05)

    def test_energies_bounded_by_transition_window(self, si2_ground_state):
        """TDA eigenvalues live within [min D - ||2K||, max D + ||2K||];
        loosely: all positive and below twice the largest KS transition."""
        solver = LRTDDFTSolver(si2_ground_state, seed=0)
        res = solver.solve("naive")
        from repro.core.pair_products import pair_energies

        d = pair_energies(solver.eps_v, solver.eps_c)
        assert (res.energies > 0).all()
        assert res.energies.max() < 2.0 * d.max()

    def test_hermiticity_of_full_spectrum(self, si2_ground_state):
        """All N_cv eigenvalues are real and the eigenvectors unitary."""
        solver = LRTDDFTSolver(si2_ground_state, seed=0)
        res = solver.solve("naive")
        assert res.energies.shape[0] == solver.n_pairs
        gram = res.wavefunctions.T @ res.wavefunctions
        np.testing.assert_allclose(gram, np.eye(solver.n_pairs), atol=1e-10)
