"""Microbenchmarks of the SPMD runtime and the distributed pipelines.

Not a paper artifact per se, but the substrate the Algorithm 1 benches
stand on: collective latency/throughput of the virtual-rank runtime and
the end-to-end distributed solves.
"""

import numpy as np
import pytest

from repro.core import HxcKernel
from repro.parallel import (
    BlockDistribution1D,
    distributed_build_vhxc,
    distributed_kmeans,
    spmd_run,
)
from repro.core.pair_products import pair_weights
from repro.utils.rng import default_rng


def test_bench_allreduce(benchmark):
    payload = np.ones(1 << 16)

    def run():
        return spmd_run(4, lambda comm: comm.allreduce(payload))

    results = benchmark(run)
    np.testing.assert_array_equal(results[0], 4.0 * payload)


def test_bench_alltoall_transpose(benchmark):
    rng = default_rng(0)
    matrix = rng.standard_normal((4096, 64))
    from repro.parallel import transpose_to_column_block

    row_dist = BlockDistribution1D(4096, 4)
    col_dist = BlockDistribution1D(64, 4)

    def prog(comm):
        slab = matrix[row_dist.local_slice(comm.rank)]
        return transpose_to_column_block(comm, slab, row_dist, col_dist)

    results = benchmark(lambda: spmd_run(4, prog))
    assert results[0].shape == (4096, 16)


def test_bench_distributed_vhxc(benchmark, si8_state):
    gs = si8_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    dist = BlockDistribution1D(gs.basis.n_r, 4)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_build_vhxc(
            comm, psi_v[:, sl], psi_c[:, sl], kernel, dist
        )

    results = benchmark.pedantic(
        lambda: spmd_run(4, prog), rounds=3, iterations=1
    )
    assert results[0].shape == (psi_v.shape[0] * psi_c.shape[0],) * 2


def test_bench_distributed_kmeans(benchmark, si8_state):
    gs = si8_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    weights = pair_weights(psi_v, psi_c)
    keep = np.flatnonzero(weights >= 1e-4 * weights.max())
    points = gs.basis.grid.cartesian_points[keep]
    w = weights[keep]
    dist = BlockDistribution1D(len(points), 4)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_kmeans(comm, points[sl], w[sl], 32, dist)

    results = benchmark.pedantic(
        lambda: spmd_run(4, prog), rounds=3, iterations=1
    )
    assert results[0][0].shape == (32, 3)


def test_bench_distributed_optimized_pipeline(benchmark, si8_state):
    """End-to-end version (5), fully distributed: K-Means -> fit -> Vtilde
    -> distributed LOBPCG, on 4 virtual ranks."""
    from repro.parallel.parallel_isdf import distributed_optimized_lrtddft

    gs = si8_state
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    grid_dist = BlockDistribution1D(gs.basis.n_r, 4)

    def prog(comm):
        sl = grid_dist.local_slice(comm.rank)
        energies, _ = distributed_optimized_lrtddft(
            comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel,
            grid_dist, 40, 4,
            grid_points_local=gs.basis.grid.cartesian_points[sl], tol=1e-8,
        )
        return energies

    results = benchmark.pedantic(
        lambda: spmd_run(4, prog), rounds=2, iterations=1
    )
    assert (results[0] > 0).all()
