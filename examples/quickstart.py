#!/usr/bin/env python
"""Quickstart: silicon excitation energies in five ways.

Runs a real plane-wave Kohn-Sham SCF on the 2-atom silicon primitive cell,
then solves the LR-TDDFT (Casida/TDA) problem with every optimization level
of the paper's Table 4 and prints the lowest excitation energies — the
cross-version agreement is the paper's central accuracy claim (Table 5).

Runtime: a few seconds on a laptop.

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import LRTDDFTSolver, run_scf, silicon_primitive_cell
from repro.constants import HARTREE_TO_EV


def main() -> None:
    print("=== Ground state (plane-wave KS-DFT, LDA, HGH pseudopotentials) ===")
    cell = silicon_primitive_cell()
    t0 = time.perf_counter()
    gs = run_scf(cell, ecut=10.0, n_bands=10, tol=1e-8, seed=0)
    print(f"SCF converged: {gs.converged} in {time.perf_counter() - t0:.2f} s")
    print(f"KS gap: {gs.homo_lumo_gap() * HARTREE_TO_EV:.3f} eV "
          f"(Gamma-point LDA silicon: ~2.5 eV at converged cutoff)")

    print("\n=== LR-TDDFT: the five versions of the paper's Table 4 ===")
    solver = LRTDDFTSolver(gs, seed=0)
    print(f"Transition space: N_v = {solver.n_v}, N_c = {solver.n_c}, "
          f"N_cv = {solver.n_pairs}, grid N_r = {solver.basis.n_r}")

    methods = (
        "naive",
        "qrcp-isdf",
        "kmeans-isdf",
        "kmeans-isdf-lobpcg",
        "implicit-kmeans-isdf-lobpcg",
    )
    reference = None
    print(f"\n{'method':<30s} {'time':>8s} {'lowest excitations (eV)':<40s} "
          f"{'max rel err':>11s}")
    for method in methods:
        t0 = time.perf_counter()
        res = solver.solve(method, n_excitations=4, tol=1e-9)
        elapsed = time.perf_counter() - t0
        ev = res.energies[:4] * HARTREE_TO_EV
        if reference is None:
            reference = res.energies[:4]
            err_text = "(reference)"
        else:
            err = np.abs((res.energies[:4] - reference) / reference).max()
            err_text = f"{err:.2e}"
        values = " ".join(f"{e:7.4f}" for e in ev)
        print(f"{method:<30s} {elapsed:7.3f}s  {values:<40s} {err_text:>11s}")

    print("\nThe ISDF versions track the naive reference within the paper's")
    print("Table 5 error band (<~1%), and the implicit version never builds")
    print("the N_cv x N_cv Hamiltonian at all.")


if __name__ == "__main__":
    main()
