"""Hartree (Poisson) solve in reciprocal space.

With the Fourier-series convention of :mod:`repro.pw.fft`, the periodic
Poisson equation is diagonal: ``V_H(G) = 4 pi / |G|^2 * n(G)``, with the
``G = 0`` component dropped (compensating-background convention, consistent
with the pseudopotential local part).  This same kernel, applied to orbital
*pair* densities instead of the total density, is the Hartree half of the
LR-TDDFT f_Hxc operator.
"""

from __future__ import annotations

import numpy as np

from repro.pw.basis import PlaneWaveBasis


def coulomb_kernel(basis: PlaneWaveBasis) -> np.ndarray:
    """``4 pi / |G|^2`` over the full FFT grid with the G=0 entry zeroed."""
    g2 = basis.gvectors.g2
    kernel = np.zeros_like(g2)
    nonzero = g2 > 1e-12
    kernel[nonzero] = 4.0 * np.pi / g2[nonzero]
    return kernel


def truncated_coulomb_kernel(
    basis: PlaneWaveBasis, radius: float | None = None
) -> np.ndarray:
    """Spherically truncated Coulomb kernel for isolated systems.

    ``v(G) = (4 pi / G^2) (1 - cos(|G| R_c))`` — the interaction vanishes
    beyond ``R_c``, removing the spurious periodic-image Coulomb coupling a
    molecule in a box otherwise feels (Jarvis/Onida-Rubio truncation).  The
    ``G = 0`` limit is finite: ``2 pi R_c^2``.

    ``radius`` defaults to half the shortest cell edge (images are then
    exactly excluded for a centred molecule smaller than the box).
    """
    if radius is None:
        radius = 0.5 * float(basis.cell.lengths.min())
    if radius <= 0:
        raise ValueError(f"truncation radius must be positive, got {radius}")
    g2 = basis.gvectors.g2
    g = np.sqrt(g2)
    kernel = np.empty_like(g2)
    nonzero = g2 > 1e-12
    kernel[nonzero] = (
        4.0 * np.pi / g2[nonzero] * (1.0 - np.cos(g[nonzero] * radius))
    )
    kernel[~nonzero] = 2.0 * np.pi * radius * radius
    return kernel


def hartree_potential(
    density: np.ndarray, basis: PlaneWaveBasis, *, precision=None
) -> np.ndarray:
    """Real-space Hartree potential of a real density field ``(..., N_r)``.

    Routed through the FFT engine's real-field convolution fast path
    (``4 pi / G^2`` is inversion symmetric, so the half-spectrum product is
    exact).  The kernel and its half-spectrum slice come from the
    process-wide :func:`~repro.pw.fft.default_plan_cache`, so the per-SCF-
    iteration calls (and consecutive trajectory frames sharing a lattice)
    build them exactly once.

    ``precision`` (a mode string or :class:`repro.precision.PrecisionConfig`)
    enables fp32 FFT scratch only when the resolved policy sets
    ``scf_fft_fp32`` (the ``fast32`` tier) — the SCF convergence loop keeps
    fp64 transforms in ``strict64`` and ``mixed``.  An fp32 plan whose
    first-apply cross-check exceeds ``fft_tol`` permanently falls back to
    fp64 and records an ``scf-hartree`` event in the resilience log.
    """
    from repro.precision import resolve_precision
    from repro.pw.fft import default_plan_cache

    precision = resolve_precision(precision)
    plan = default_plan_cache().get(
        "coulomb",
        basis.fft,
        lambda: coulomb_kernel(basis),
        dtype=np.float32 if precision.scf_fft_fp32 else np.float64,
        tol=precision.fft_tol,
        verify=precision.verify,
        stage="scf-hartree",
    )
    return plan.apply(density)


def hartree_energy(density: np.ndarray, basis: PlaneWaveBasis) -> float:
    """``E_H = (1/2) int n(r) V_H(r) dr``."""
    v_h = hartree_potential(density, basis)
    return float(0.5 * np.sum(density * v_h) * basis.grid.dv)
