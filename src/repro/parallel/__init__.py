"""Simulated SPMD/MPI runtime and the paper's parallel algorithms.

The paper runs on Cori with MPI; this environment has neither, so the
*algorithms* of Section 5 execute here on an in-process SPMD runtime: one
thread per virtual rank, deterministic rank-ordered collectives, and traced
communication volumes.  Every distributed kernel is tested to reproduce its
serial counterpart exactly; wall-clock *at scale* is the job of
:mod:`repro.perf`.

Contents:

* :mod:`repro.parallel.comm` — communicator + collectives + traffic trace,
* :mod:`repro.parallel.executor` — ``spmd_run(n_ranks, fn)``,
* :mod:`repro.parallel.distributions` — column-block / row-block /
  2-D block-cyclic descriptors (paper Figure 3),
* :mod:`repro.parallel.redistribute` — alltoall transposes and the
  ``pdgemr2d`` stand-in,
* :mod:`repro.parallel.parallel_kmeans` — distributed weighted K-Means,
* :mod:`repro.parallel.parallel_lrtddft` — distributed Hamiltonian
  construction (Algorithm 1) and the ISDF pipeline,
* :mod:`repro.parallel.pipeline` — blocked GEMM + MPI_Reduce overlap
  (Figures 4-5).
"""

from repro.parallel.comm import (
    CommTraffic,
    Communicator,
    MessageTimeout,
    ReduceHandle,
    SpmdAbort,
)
from repro.parallel.executor import (
    SPMD_BACKENDS,
    resolve_backend,
    spmd_run,
    spmd_run_resilient,
)
from repro.parallel.shm import SharedSlab, SlabRegistry, reap_run_segments
from repro.parallel.sanitizer import SanitizerError, SpmdSanitizer
from repro.parallel.distributions import (
    BlockCyclic2D,
    BlockDistribution1D,
)
from repro.parallel.redistribute import (
    allgather_rows,
    gather_matrix,
    transpose_to_column_block,
    transpose_to_row_block,
)
from repro.parallel.parallel_kmeans import distributed_kmeans
from repro.parallel.parallel_lrtddft import (
    distributed_build_vhxc,
    distributed_implicit_solve,
    distributed_isdf_vtilde,
    distributed_lrtddft_solve,
)
from repro.parallel.parallel_lobpcg import (
    distributed_lobpcg,
    make_distributed_implicit_apply,
)
from repro.parallel.pipeline import pipelined_vhxc_full, pipelined_vhxc_rows
from repro.parallel.redistribute import row_block_to_block_cyclic

__all__ = [
    "Communicator",
    "CommTraffic",
    "SpmdAbort",
    "MessageTimeout",
    "SanitizerError",
    "SpmdSanitizer",
    "ReduceHandle",
    "SharedSlab",
    "SlabRegistry",
    "reap_run_segments",
    "SPMD_BACKENDS",
    "resolve_backend",
    "spmd_run",
    "spmd_run_resilient",
    "BlockDistribution1D",
    "BlockCyclic2D",
    "transpose_to_column_block",
    "transpose_to_row_block",
    "allgather_rows",
    "gather_matrix",
    "distributed_kmeans",
    "distributed_build_vhxc",
    "distributed_isdf_vtilde",
    "distributed_lrtddft_solve",
    "distributed_implicit_solve",
    "pipelined_vhxc_rows",
    "pipelined_vhxc_full",
    "row_block_to_block_cyclic",
    "distributed_lobpcg",
    "make_distributed_implicit_apply",
]
