"""Kill-and-restart must replay every loop bit-identically.

The acceptance criterion of the resilience subsystem: a solver killed at
iteration k (crash injected *after* the step-k snapshot is durable) and
restarted from disk produces exactly the same floats as an uninterrupted
run — not merely close, ``np.array_equal``-equal.
"""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.dft.scf import SCFOptions, run_scf
from repro.eigen.lobpcg import lobpcg
from repro.core.isdf import isdf_decompose
from repro.parallel import BlockDistribution1D, spmd_run
from repro.parallel.parallel_lobpcg import distributed_lobpcg
from repro.resilience import (
    CheckpointManager,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    LoopCheckpointer,
)
from repro.rt.tddft import RealTimeTDDFT
from repro.synthetic import synthetic_ground_state


def _test_matrix(n, k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    h = a @ a.T + np.diag(np.arange(n, dtype=float))
    x0 = rng.standard_normal((n, k))
    return h, x0


def _killing_checkpointer(tmp_path, tag, step):
    injector = FaultInjector([FaultSpec(kind="kill_loop", tag=tag, step=step)])
    return LoopCheckpointer(CheckpointManager(tmp_path, tag=tag), injector=injector)


class TestLOBPCGRestart:
    def test_kill_at_iteration_k_restart_is_bit_identical(self, tmp_path):
        h, x0 = _test_matrix(60, 4)
        apply_h = lambda x: h @ x  # noqa: E731
        reference = lobpcg(apply_h, x0, tol=1e-10, max_iter=200)
        assert reference.converged

        with pytest.raises(InjectedFault):
            lobpcg(
                apply_h, x0, tol=1e-10, max_iter=200,
                checkpoint=_killing_checkpointer(tmp_path, "lobpcg", step=5),
            )

        restarted = lobpcg(
            apply_h, x0, tol=1e-10, max_iter=200,
            checkpoint=LoopCheckpointer(
                CheckpointManager(tmp_path, tag="lobpcg"), restart=True
            ),
        )
        assert restarted.converged
        assert restarted.iterations == reference.iterations
        np.testing.assert_array_equal(
            restarted.eigenvalues, reference.eigenvalues
        )
        np.testing.assert_array_equal(
            restarted.eigenvectors, reference.eigenvectors
        )

    def test_checkpointing_itself_does_not_perturb(self, tmp_path):
        h, x0 = _test_matrix(40, 3, seed=1)
        apply_h = lambda x: h @ x  # noqa: E731
        plain = lobpcg(apply_h, x0, tol=1e-9, max_iter=150)
        ck = LoopCheckpointer(CheckpointManager(tmp_path, tag="lobpcg"))
        checked = lobpcg(apply_h, x0, tol=1e-9, max_iter=150, checkpoint=ck)
        np.testing.assert_array_equal(checked.eigenvalues, plain.eigenvalues)
        np.testing.assert_array_equal(checked.eigenvectors, plain.eigenvectors)


class TestDistributedLOBPCGRestart:
    def test_per_rank_restart_is_bit_identical(self, tmp_path):
        n, k, n_ranks = 48, 3, 2
        h, x0 = _test_matrix(n, k, seed=2)
        dist = BlockDistribution1D(n, n_ranks)

        def apply_local_for(comm):
            rows = h[dist.local_slice(comm.rank)]

            def apply_local(x_local):
                x_full = np.concatenate(comm.allgather(x_local), axis=0)
                return rows @ x_full

            return apply_local

        def reference_prog(comm):
            res = distributed_lobpcg(
                comm, apply_local_for(comm),
                x0[dist.local_slice(comm.rank)], tol=1e-9, max_iter=200,
            )
            return res.eigenvalues, res.eigenvectors

        reference = spmd_run(n_ranks, reference_prog)

        def killed_prog(comm):
            tag = f"dlobpcg-r{comm.rank}"
            injector = (
                FaultInjector([FaultSpec(kind="kill_loop", tag=tag, step=4)])
                if comm.rank == 0
                else None
            )
            ck = LoopCheckpointer(
                CheckpointManager(tmp_path, tag=tag), injector=injector
            )
            return distributed_lobpcg(
                comm, apply_local_for(comm),
                x0[dist.local_slice(comm.rank)], tol=1e-9, max_iter=200,
                checkpoint=ck,
            )

        with pytest.raises(Exception):
            spmd_run(n_ranks, killed_prog)

        def restart_prog(comm):
            ck = LoopCheckpointer(
                CheckpointManager(tmp_path, tag=f"dlobpcg-r{comm.rank}"),
                restart=True,
            )
            res = distributed_lobpcg(
                comm, apply_local_for(comm),
                x0[dist.local_slice(comm.rank)], tol=1e-9, max_iter=200,
                checkpoint=ck,
            )
            return res.eigenvalues, res.eigenvectors

        restarted = spmd_run(n_ranks, restart_prog)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(restarted[rank][0], reference[rank][0])
            np.testing.assert_array_equal(restarted[rank][1], reference[rank][1])

    def test_torn_checkpoints_roll_back_to_common_step(self, tmp_path):
        # A crash can leave the per-rank snapshot sets torn: the abort that
        # unwinds the surviving ranks may arrive after a rank's last
        # collective but before its save, so its newest step is one behind
        # its peers'.  Restart must agree on the common step and roll the
        # ahead rank back — resuming from per-rank latest() diverges the
        # collective sequences and deadlocks the run.
        n, k, n_ranks = 48, 3, 2
        h, x0 = _test_matrix(n, k, seed=2)
        dist = BlockDistribution1D(n, n_ranks)

        def apply_local_for(comm):
            rows = h[dist.local_slice(comm.rank)]

            def apply_local(x_local):
                x_full = np.concatenate(comm.allgather(x_local), axis=0)
                return rows @ x_full

            return apply_local

        def prog(comm, restart):
            ck = LoopCheckpointer(
                CheckpointManager(tmp_path, tag=f"torn-r{comm.rank}"),
                restart=restart,
            )
            res = distributed_lobpcg(
                comm, apply_local_for(comm),
                x0[dist.local_slice(comm.rank)], tol=1e-9, max_iter=200,
                checkpoint=ck,
            )
            return res.eigenvalues, res.eigenvectors

        reference = spmd_run(n_ranks, prog, False)

        # Tear rank 1's snapshot set: drop its newest step.
        manager = CheckpointManager(tmp_path, tag="torn-r1")
        steps = manager.steps()
        assert len(steps) >= 2
        manager.path(steps[-1]).unlink()

        restarted = spmd_run(n_ranks, prog, True)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(restarted[rank][0], reference[rank][0])
            np.testing.assert_array_equal(restarted[rank][1], reference[rank][1])

        # Fully missing on one rank: everyone must agree to start fresh.
        manager.clear()
        fresh = spmd_run(n_ranks, prog, True)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(fresh[rank][0], reference[rank][0])
            np.testing.assert_array_equal(fresh[rank][1], reference[rank][1])


class TestSCFRestart:
    def test_kill_then_restart_is_bit_identical(self, tmp_path):
        cell = silicon_primitive_cell()
        opts = SCFOptions(ecut=5.0, n_bands=6, tol=1e-6, seed=0)
        reference = run_scf(cell, opts)

        with pytest.raises(InjectedFault):
            run_scf(
                cell, SCFOptions(ecut=5.0, n_bands=6, tol=1e-6, seed=0),
                checkpoint=_killing_checkpointer(tmp_path, "scf", step=2),
            )

        restarted = run_scf(
            cell, SCFOptions(ecut=5.0, n_bands=6, tol=1e-6, seed=0),
            checkpoint=LoopCheckpointer(
                CheckpointManager(tmp_path, tag="scf"), restart=True
            ),
        )
        assert restarted.converged == reference.converged
        assert restarted.total_energy == reference.total_energy
        np.testing.assert_array_equal(restarted.energies, reference.energies)
        np.testing.assert_array_equal(restarted.density, reference.density)
        np.testing.assert_array_equal(
            restarted.orbitals_real, reference.orbitals_real
        )
        assert [h["residual"] for h in restarted.history] == [
            h["residual"] for h in reference.history
        ]

    def test_options_driven_checkpointing_writes_snapshots(self, tmp_path):
        cell = silicon_primitive_cell()
        run_scf(
            cell,
            SCFOptions(
                ecut=5.0, n_bands=6, tol=1e-6, seed=0,
                checkpoint_dir=str(tmp_path),
            ),
        )
        assert CheckpointManager(tmp_path, tag="scf").steps()


class TestISDFRestart:
    @pytest.fixture(scope="class")
    def transition_space(self):
        gs = synthetic_ground_state(
            silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=4,
            seed=9,
        )
        psi_v, _, psi_c, _ = gs.select_transition_space()
        return psi_v, psi_c, gs.basis.grid.cartesian_points

    def test_stage_restart_reuses_selection(self, tmp_path, transition_space):
        psi_v, psi_c, grid_points = transition_space
        rng_kwargs = dict(n_mu=12, method="kmeans", grid_points=grid_points)
        reference = isdf_decompose(
            psi_v, psi_c, rng=np.random.default_rng(0), **rng_kwargs
        )

        with pytest.raises(InjectedFault):
            isdf_decompose(
                psi_v, psi_c, rng=np.random.default_rng(0),
                checkpoint=_killing_checkpointer(tmp_path, "isdf", step=0),
                **rng_kwargs,
            )

        restarted = isdf_decompose(
            psi_v, psi_c, rng=np.random.default_rng(1234),  # rng must not matter
            checkpoint=LoopCheckpointer(
                CheckpointManager(tmp_path, tag="isdf"), restart=True
            ),
            **rng_kwargs,
        )
        np.testing.assert_array_equal(restarted.indices, reference.indices)
        np.testing.assert_array_equal(restarted.theta, reference.theta)
        assert restarted.method == reference.method

    def test_completed_pipeline_restart_skips_fit(self, tmp_path, transition_space):
        psi_v, psi_c, grid_points = transition_space
        kwargs = dict(n_mu=12, method="kmeans", grid_points=grid_points)
        first = isdf_decompose(
            psi_v, psi_c, rng=np.random.default_rng(0),
            checkpoint=LoopCheckpointer(CheckpointManager(tmp_path, tag="isdf")),
            **kwargs,
        )
        resumed = isdf_decompose(
            psi_v, psi_c, rng=np.random.default_rng(99),
            checkpoint=LoopCheckpointer(
                CheckpointManager(tmp_path, tag="isdf"), restart=True
            ),
            **kwargs,
        )
        np.testing.assert_array_equal(resumed.theta, first.theta)
        np.testing.assert_array_equal(resumed.indices, first.indices)


class TestRTRestart:
    def test_kill_then_restart_continues_time_series(self, tmp_path):
        gs = synthetic_ground_state(
            silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=2,
            seed=13,
        )

        def fresh():
            rt = RealTimeTDDFT(gs, self_consistent=True)
            rt.kick(1e-3)
            return rt

        reference = fresh().propagate(0.1, 6, krylov_dim=6)

        with pytest.raises(InjectedFault):
            fresh().propagate(
                0.1, 6, krylov_dim=6,
                checkpoint=_killing_checkpointer(tmp_path, "rt", step=3),
            )

        restarted = fresh().propagate(
            0.1, 6, krylov_dim=6,
            checkpoint=LoopCheckpointer(
                CheckpointManager(tmp_path, tag="rt"), restart=True
            ),
        )
        np.testing.assert_array_equal(restarted.times, reference.times)
        np.testing.assert_array_equal(restarted.dipoles, reference.dipoles)
        np.testing.assert_array_equal(restarted.norms, reference.norms)
