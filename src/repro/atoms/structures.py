"""Builders for the physical systems evaluated in the paper.

* cubic diamond silicon supercells Si_64 ... Si_4096 (Section 6.1),
* a single water molecule in a box (Table 5),
* graphene mono/bi-layers and commensurate twisted bilayers — the
  scaled-down stand-in for the 1,180-atom magic-angle twisted bilayer
  graphene application of Section 6.6.

All builders return :class:`repro.pw.UnitCell` objects in Bohr.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.pw.cell import UnitCell
from repro.utils.validation import require

#: Conventional diamond-silicon lattice constant (5.431 Angstrom) in Bohr.
SILICON_A_BOHR: float = 10.2625

#: Graphene in-plane lattice constant (2.46 Angstrom) in Bohr.
GRAPHENE_A_BOHR: float = 2.46 * ANGSTROM_TO_BOHR

#: AB-stacked bilayer equilibrium interlayer distance (3.35 Angstrom) in Bohr.
BILAYER_DISTANCE_BOHR: float = 3.35 * ANGSTROM_TO_BOHR


def silicon_conventional_cell(a: float = SILICON_A_BOHR) -> UnitCell:
    """8-atom conventional cubic diamond cell."""
    fcc = np.array(
        [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]]
    )
    basis = np.vstack([fcc, fcc + 0.25])
    return UnitCell(a * np.eye(3), ("Si",) * 8, basis)


def silicon_primitive_cell(a: float = SILICON_A_BOHR) -> UnitCell:
    """2-atom fcc primitive diamond cell (fastest silicon system for tests)."""
    lattice = 0.5 * a * np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
    positions = np.array([[0.0, 0.0, 0.0], [0.25, 0.25, 0.25]])
    return UnitCell(lattice, ("Si", "Si"), positions)


def bulk_silicon(n_atoms: int, a: float = SILICON_A_BOHR) -> UnitCell:
    """Cubic silicon supercell with ``n_atoms = 8 * k^3`` atoms.

    ``bulk_silicon(64)`` etc. generate the paper's Si_64 ... Si_4096 series.
    """
    require(n_atoms % 8 == 0, f"cubic Si systems need 8*k^3 atoms, got {n_atoms}")
    k = round((n_atoms // 8) ** (1.0 / 3.0))
    require(
        8 * k**3 == n_atoms,
        f"{n_atoms} is not 8*k^3 for integer k (valid: 8, 64, 216, 512, 1000, ...)",
    )
    return silicon_conventional_cell(a).supercell((k, k, k))


def silicon_label(cell: UnitCell) -> str:
    """Paper-style label such as ``Si64``."""
    return f"Si{cell.count('Si')}"


def water_molecule(box: float = 11.0 * ANGSTROM_TO_BOHR) -> UnitCell:
    """One H2O molecule centred in a cubic box of edge ``box`` Bohr.

    Geometry: r(OH) = 0.9572 Angstrom, HOH angle 104.52 degrees (experimental
    gas-phase values).  The default box edge matches the paper's Table 5
    setup (11.0 x 11.0 x 11.0 Angstrom^3).
    """
    r_oh = 0.9572 * ANGSTROM_TO_BOHR
    half_angle = np.deg2rad(104.52 / 2.0)
    centre = 0.5 * box * np.ones(3)
    oxygen = centre
    h1 = centre + r_oh * np.array([np.sin(half_angle), 0.0, np.cos(half_angle)])
    h2 = centre + r_oh * np.array([-np.sin(half_angle), 0.0, np.cos(half_angle)])
    cart = np.vstack([oxygen, h1, h2])
    return UnitCell(box * np.eye(3), ("O", "H", "H"), cart / box)


def _hexagonal_lattice(a: float, height: float) -> np.ndarray:
    """Hexagonal cell: a1 = a x, a2 = a (1/2, sqrt(3)/2), a3 = height z."""
    return np.array(
        [[a, 0.0, 0.0], [0.5 * a, 0.5 * np.sqrt(3.0) * a, 0.0], [0.0, 0.0, height]]
    )


def graphene_monolayer(
    a: float = GRAPHENE_A_BOHR, vacuum: float = 12.0 * ANGSTROM_TO_BOHR
) -> UnitCell:
    """2-atom graphene cell with ``vacuum`` Bohr of out-of-plane padding."""
    lattice = _hexagonal_lattice(a, vacuum)
    positions = np.array([[0.0, 0.0, 0.5], [1.0 / 3.0, 1.0 / 3.0, 0.5]])
    return UnitCell(lattice, ("C", "C"), positions)


def graphene_bilayer(
    a: float = GRAPHENE_A_BOHR,
    interlayer_distance: float = BILAYER_DISTANCE_BOHR,
    vacuum: float = 12.0 * ANGSTROM_TO_BOHR,
    stacking: str = "AB",
) -> UnitCell:
    """4-atom AA- or AB-stacked bilayer graphene."""
    require(stacking in ("AA", "AB"), f"stacking must be AA or AB, got {stacking!r}")
    height = vacuum + interlayer_distance
    lattice = _hexagonal_lattice(a, height)
    z_lo = 0.5 - 0.5 * interlayer_distance / height
    z_hi = 0.5 + 0.5 * interlayer_distance / height
    shift = np.array([1.0 / 3.0, 1.0 / 3.0, 0.0]) if stacking == "AB" else 0.0
    layer1 = np.array([[0.0, 0.0, z_lo], [1.0 / 3.0, 1.0 / 3.0, z_lo]])
    layer2 = np.array([[0.0, 0.0, z_hi], [1.0 / 3.0, 1.0 / 3.0, z_hi]]) + shift
    positions = np.vstack([layer1, layer2]) % 1.0
    return UnitCell(lattice, ("C",) * 4, positions)


def twist_angle(m: int, n: int) -> float:
    """Commensurate twist angle (radians) for superlattice indices (m, n)."""
    num = m * m + 4 * m * n + n * n
    den = 2.0 * (m * m + m * n + n * n)
    return float(np.arccos(num / den))


def _layer_atoms_in_supercell(
    a: float, super_2d: np.ndarray, rotation: float
) -> np.ndarray:
    """2-D Cartesian positions of one (possibly rotated) graphene layer
    folded into the superlattice spanned by the rows of ``super_2d``."""
    a1 = np.array([a, 0.0])
    a2 = np.array([0.5 * a, 0.5 * np.sqrt(3.0) * a])
    basis = [np.zeros(2), (a1 + a2) / 3.0]
    cos_t, sin_t = np.cos(rotation), np.sin(rotation)
    rot = np.array([[cos_t, -sin_t], [sin_t, cos_t]])

    inv_super = np.linalg.inv(super_2d)
    # Generous search window: the supercell diagonal in units of a.
    extent = int(np.ceil(np.linalg.norm(super_2d) / a)) + 2
    shifts = np.arange(-extent, extent + 1)
    i_grid, j_grid = np.meshgrid(shifts, shifts, indexing="ij")
    cells = i_grid.ravel()[:, None] * a1 + j_grid.ravel()[:, None] * a2

    found: list[np.ndarray] = []
    for b in basis:
        cart = (cells + b) @ rot.T
        frac = cart @ inv_super
        frac_wrapped = frac - np.floor(frac + 1e-9)
        inside = np.all((frac_wrapped >= -1e-9) & (frac_wrapped < 1.0 - 1e-9), axis=1)
        found.append(frac_wrapped[inside])
    frac_all = np.vstack(found)
    # Deduplicate atoms that landed on the same site after wrapping.
    keys = np.round(frac_all % 1.0, 6) % 1.0
    _, unique_idx = np.unique(keys, axis=0, return_index=True)
    return frac_all[np.sort(unique_idx)]


def twisted_bilayer_graphene(
    m: int = 1,
    n: int = 2,
    a: float = GRAPHENE_A_BOHR,
    interlayer_distance: float = BILAYER_DISTANCE_BOHR,
    vacuum: float = 12.0 * ANGSTROM_TO_BOHR,
) -> UnitCell:
    """Commensurate twisted bilayer graphene supercell.

    ``(m, n) = (1, 2)`` gives the 28-atom cell at 21.79 degrees — the
    smallest commensurate twisted bilayer, used here as the scaled-down
    stand-in for the paper's 1,180-atom magic-angle system (same code path:
    twisted Moire cell, metallic flat-ish bands, DOS vs interlayer distance).
    Larger ``(m, m+1)`` pairs approach the magic angle:
    (2,3) -> 84 atoms at 13.17 degrees, (3,4) -> 148 atoms at 9.43 degrees.
    """
    require(0 < m < n, f"need 0 < m < n, got ({m}, {n})")
    theta = twist_angle(m, n)
    a1 = np.array([a, 0.0])
    a2 = np.array([0.5 * a, 0.5 * np.sqrt(3.0) * a])
    super_2d = np.vstack([m * a1 + n * a2, -n * a1 + (m + n) * a2])

    layer1 = _layer_atoms_in_supercell(a, super_2d, rotation=0.0)
    layer2 = _layer_atoms_in_supercell(a, super_2d, rotation=theta)
    expected = 2 * (m * m + m * n + n * n)
    require(
        len(layer1) == expected and len(layer2) == expected,
        f"twisted-bilayer construction found {len(layer1)}/{len(layer2)} atoms "
        f"per layer, expected {expected}",
    )

    height = vacuum + interlayer_distance
    z_lo = 0.5 - 0.5 * interlayer_distance / height
    z_hi = 0.5 + 0.5 * interlayer_distance / height
    frac = np.vstack(
        [
            np.column_stack([layer1, np.full(len(layer1), z_lo)]),
            np.column_stack([layer2, np.full(len(layer2), z_hi)]),
        ]
    )
    lattice = np.zeros((3, 3))
    lattice[:2, :2] = super_2d
    lattice[2, 2] = height
    return UnitCell(lattice, ("C",) * len(frac), frac)
