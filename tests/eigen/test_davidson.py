"""Tests for the block Davidson eigensolver."""

import numpy as np
import pytest

from repro.eigen import davidson, dense_lowest, lobpcg
from repro.utils.rng import default_rng


def _random_symmetric(n, rng):
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2 + np.diag(np.arange(n, dtype=float))


class TestDavidson:
    def test_matches_dense_reference(self, rng):
        a = _random_symmetric(150, rng)
        ref, _ = dense_lowest(a, 4)
        res = davidson(lambda x: a @ x, rng.standard_normal((150, 4)), np.diag(a), tol=1e-9)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-8)

    def test_agrees_with_lobpcg(self, rng):
        a = _random_symmetric(120, rng)
        x0 = rng.standard_normal((120, 3))
        res_d = davidson(lambda x: a @ x, x0, np.diag(a), tol=1e-10)
        res_l = lobpcg(lambda x: a @ x, x0, tol=1e-10)
        np.testing.assert_allclose(res_d.eigenvalues, res_l.eigenvalues, atol=1e-8)

    def test_restart_path_executes(self, rng):
        """Small max_subspace forces restarts; must still converge."""
        a = _random_symmetric(100, rng)
        ref, _ = dense_lowest(a, 3)
        res = davidson(
            lambda x: a @ x, rng.standard_normal((100, 3)), np.diag(a),
            tol=1e-8, max_subspace=9, max_iter=400,
        )
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-7)

    def test_wrong_diagonal_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="diagonal"):
            davidson(lambda x: x, rng.standard_normal((10, 2)), np.zeros(5))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            davidson(lambda x: x, np.zeros((5, 0)), np.zeros(5))

    def test_unconverged_flag(self, rng):
        a = _random_symmetric(200, rng)
        res = davidson(
            lambda x: a @ x, rng.standard_normal((200, 4)), np.diag(a),
            tol=1e-14, max_iter=2,
        )
        assert not res.converged

    def test_complex_hermitian(self, rng):
        n = 80
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = (a + a.conj().T) / 2 + np.diag(np.arange(n, dtype=float))
        x0 = rng.standard_normal((n, 3)) + 1j * rng.standard_normal((n, 3))
        res = davidson(lambda x: a @ x, x0, np.real(np.diag(a)), tol=1e-9)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a)[:3], atol=1e-8)
