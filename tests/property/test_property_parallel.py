"""Property-based tests for the SPMD runtime and distributions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    BlockCyclic2D,
    BlockDistribution1D,
    spmd_run,
    transpose_to_column_block,
)
from repro.utils.rng import default_rng


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 200), st.integers(1, 9))
def test_block_distribution_partitions_exactly(n_global, n_ranks):
    d = BlockDistribution1D(n_global, n_ranks)
    # Counts sum to the total and slices tile [0, n_global).
    assert d.counts().sum() == n_global
    covered = []
    for r in range(n_ranks):
        s = d.local_slice(r)
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(n_global))


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 200), st.integers(1, 9))
def test_owner_consistent_with_slices(n_global, n_ranks):
    d = BlockDistribution1D(n_global, n_ranks)
    for i in range(0, n_global, max(1, n_global // 11)):
        r = d.owner(i)
        assert i in d.global_indices(r)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 12),
    st.integers(1, 12),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(1, 3),
    st.integers(1, 3),
)
def test_block_cyclic_exact_cover(m, n, mb, nb, p_rows, p_cols):
    desc = BlockCyclic2D(m, n, mb, nb, p_rows, p_cols)
    coverage = np.zeros((m, n), dtype=int)
    for rank in range(desc.n_ranks):
        coverage[np.ix_(desc.local_rows(rank), desc.local_cols(rank))] += 1
    np.testing.assert_array_equal(coverage, 1)
    # owner() agrees with the tiling.
    for i in range(0, m, max(1, m // 5)):
        for j in range(0, n, max(1, n // 5)):
            rank = desc.owner(i, j)
            assert i in desc.local_rows(rank)
            assert j in desc.local_cols(rank)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 4), st.integers(2, 12), st.integers(1, 9))
def test_transpose_roundtrip_any_shape(seed, n_ranks, rows, cols):
    rng = default_rng(seed)
    matrix = rng.standard_normal((rows, cols))
    row_dist = BlockDistribution1D(rows, n_ranks)
    col_dist = BlockDistribution1D(cols, n_ranks)

    def prog(comm):
        slab = matrix[row_dist.local_slice(comm.rank)]
        return transpose_to_column_block(comm, slab, row_dist, col_dist)

    results = spmd_run(n_ranks, prog)
    for rank, block in enumerate(results):
        np.testing.assert_array_equal(
            block, matrix[:, col_dist.local_slice(rank)]
        )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 5))
def test_allreduce_equals_serial_sum(seed, n_ranks):
    rng = default_rng(seed)
    pieces = [rng.standard_normal(7) for _ in range(n_ranks)]
    expected = pieces[0].copy()
    for p in pieces[1:]:
        expected = expected + p

    def prog(comm):
        return comm.allreduce(pieces[comm.rank])

    for result in spmd_run(n_ranks, prog):
        np.testing.assert_array_equal(result, expected)
