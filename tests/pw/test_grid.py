"""Tests for the real-space grid and the paper's grid-size rule."""

import numpy as np
import pytest

from repro.atoms import bulk_silicon
from repro.pw import RealSpaceGrid, UnitCell, good_fft_size
from repro.pw.grid import grid_shape_for_cutoff


class TestGoodFFTSize:
    @pytest.mark.parametrize("n,expected", [(1, 2), (2, 2), (7, 8), (11, 12), (13, 15), (17, 18)])
    def test_rounds_to_5_smooth(self, n, expected):
        assert good_fft_size(n) == expected

    def test_result_is_5_smooth(self):
        for n in range(2, 200):
            m = good_fft_size(n)
            for p in (2, 3, 5):
                while m % p == 0:
                    m //= p
            assert m == 1


class TestGridShapeRule:
    def test_paper_si4096_grid(self):
        """Section 6.1: Si_4096 at Ecut = 20 Ha uses a 166^3 grid.

        The raw rule gives ceil(sqrt(40) * 8a / pi) = 166 per axis
        (before FFT-size rounding; 166 is not 5-smooth so we round up).
        """
        cell = bulk_silicon(4096)
        gmax = np.sqrt(2.0 * 20.0)
        raw = int(np.ceil(gmax * cell.lengths[0] / np.pi))
        assert raw == 166

    def test_shape_grows_with_cutoff(self):
        cell = UnitCell.cubic(10.0)
        lo = grid_shape_for_cutoff(cell, 5.0)
        hi = grid_shape_for_cutoff(cell, 20.0)
        assert all(h >= l for h, l in zip(hi, lo))

    def test_anisotropic_cell(self):
        lattice = np.diag([10.0, 20.0, 10.0])
        shape = grid_shape_for_cutoff(UnitCell(lattice), 10.0)
        assert shape[1] > shape[0]

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            grid_shape_for_cutoff(UnitCell.cubic(10.0), 0.0)


class TestRealSpaceGrid:
    def test_point_count_and_dv(self):
        grid = RealSpaceGrid(UnitCell.cubic(4.0), (4, 4, 4))
        assert grid.n_points == 64
        assert grid.dv == pytest.approx(64.0 / 64)

    def test_fractional_points_cover_unit_cube(self):
        grid = RealSpaceGrid(UnitCell.cubic(1.0), (3, 3, 3))
        pts = grid.fractional_points
        assert pts.min() == 0.0
        assert pts.max() < 1.0
        assert pts.shape == (27, 3)

    def test_cartesian_points_match_lattice(self):
        cell = UnitCell.cubic(6.0)
        grid = RealSpaceGrid(cell, (2, 2, 2))
        np.testing.assert_allclose(grid.cartesian_points.max(axis=0), [3.0, 3.0, 3.0])

    def test_reshape_roundtrip(self, rng):
        grid = RealSpaceGrid(UnitCell.cubic(2.0), (3, 4, 5))
        flat = rng.standard_normal(grid.n_points)
        np.testing.assert_array_equal(
            grid.flatten_from_grid(grid.reshape_to_grid(flat)), flat
        )

    def test_reshape_with_batch_axes(self, rng):
        grid = RealSpaceGrid(UnitCell.cubic(2.0), (3, 3, 3))
        flat = rng.standard_normal((2, 5, grid.n_points))
        cube = grid.reshape_to_grid(flat)
        assert cube.shape == (2, 5, 3, 3, 3)

    def test_integrate_constant(self):
        cell = UnitCell.cubic(3.0)
        grid = RealSpaceGrid(cell, (4, 4, 4))
        assert grid.integrate(np.ones(grid.n_points)) == pytest.approx(cell.volume)

    def test_from_cutoff_uses_rule(self):
        cell = UnitCell.cubic(10.0)
        grid = RealSpaceGrid.from_cutoff(cell, 10.0)
        assert grid.shape == grid_shape_for_cutoff(cell, 10.0)
