"""Tests for DOS computation."""

import numpy as np
import pytest

from repro.analysis import density_of_states, excitation_dos
from repro.analysis.dos import fermi_level_estimate


class TestDOS:
    def test_normalization(self):
        """Integrated DOS equals the number of levels."""
        energies = np.array([-0.2, 0.0, 0.1, 0.3])
        grid = np.linspace(-1.0, 1.0, 4001)
        g = density_of_states(energies, grid, broadening=0.02)
        assert np.trapezoid(g, grid) == pytest.approx(4.0, rel=1e-6)

    def test_peaks_at_levels(self):
        energies = np.array([0.25])
        grid = np.linspace(0.0, 0.5, 501)
        g = density_of_states(energies, grid, broadening=0.01)
        assert grid[np.argmax(g)] == pytest.approx(0.25, abs=1e-3)

    def test_weights_scale_contributions(self):
        energies = np.array([0.1, 0.4])
        grid = np.linspace(0.0, 0.5, 2001)
        g = density_of_states(
            energies, grid, broadening=0.01, weights=np.array([1.0, 3.0])
        )
        peak1 = g[np.argmin(np.abs(grid - 0.1))]
        peak2 = g[np.argmin(np.abs(grid - 0.4))]
        assert peak2 == pytest.approx(3 * peak1, rel=1e-3)

    def test_broadening_widens(self):
        energies = np.array([0.0])
        grid = np.linspace(-0.5, 0.5, 1001)
        narrow = density_of_states(energies, grid, broadening=0.01)
        wide = density_of_states(energies, grid, broadening=0.05)
        assert narrow.max() > wide.max()

    def test_invalid_broadening(self):
        with pytest.raises(ValueError):
            density_of_states(np.array([0.0]), np.linspace(0, 1, 5), broadening=0.0)

    def test_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            density_of_states(
                np.array([0.0, 1.0]), np.linspace(0, 1, 5), weights=np.ones(3)
            )

    def test_excitation_dos_delegates(self):
        e = np.array([0.1, 0.2])
        grid = np.linspace(0, 0.5, 101)
        np.testing.assert_allclose(
            excitation_dos(e, grid, broadening=0.02),
            density_of_states(e, grid, broadening=0.02),
        )


class TestFermiLevel:
    def test_gapped_midpoint(self):
        energies = np.array([-1.0, -0.5, 0.5, 1.0])
        occ = np.array([2.0, 2.0, 0.0, 0.0])
        assert fermi_level_estimate(energies, occ) == pytest.approx(0.0)

    def test_all_occupied(self):
        energies = np.array([-1.0, -0.5])
        occ = np.array([2.0, 2.0])
        assert fermi_level_estimate(energies, occ) == pytest.approx(-0.5)

    def test_no_occupied_raises(self):
        with pytest.raises(ValueError):
            fermi_level_estimate(np.array([0.0]), np.array([0.0]))
