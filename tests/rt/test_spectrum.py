"""Tests for the dipole-spectrum analysis."""

import numpy as np
import pytest

from repro.rt import dipole_spectrum, find_peaks


def _synthetic_signal(frequencies, amplitudes, t_max=400.0, dt=0.1):
    t = np.arange(0.0, t_max, dt)
    d = np.zeros_like(t)
    for w, a in zip(frequencies, amplitudes):
        d += a * np.sin(w * t)
    return t, d + 0.3  # constant offset = static dipole


class TestDipoleSpectrum:
    def test_single_mode_peak_position(self):
        t, d = _synthetic_signal([0.25], [1.0])
        omega, s = dipole_spectrum(t, d, kick_strength=1e-3, damping=0.01)
        peaks = find_peaks(omega, s, threshold=0.5)
        assert len(peaks) == 1
        assert peaks[0] == pytest.approx(0.25, abs=0.005)

    def test_two_modes_resolved(self):
        t, d = _synthetic_signal([0.2, 0.5], [1.0, 0.7])
        omega, s = dipole_spectrum(t, d, kick_strength=1e-3, damping=0.008)
        peaks = find_peaks(omega, s, threshold=0.2)
        assert len(peaks) == 2
        np.testing.assert_allclose(peaks, [0.2, 0.5], atol=0.01)

    def test_static_offset_does_not_leak(self):
        """The constant dipole must not create a spurious DC peak."""
        t = np.arange(0.0, 200.0, 0.1)
        d = np.full_like(t, 5.0)
        omega, s = dipole_spectrum(t, d, kick_strength=1e-3)
        assert np.abs(s).max() < 1e-10

    def test_kick_normalization(self):
        t, d = _synthetic_signal([0.3], [1.0])
        _, s1 = dipole_spectrum(t, d, kick_strength=1e-3)
        _, s2 = dipole_spectrum(t, d, kick_strength=2e-3)
        np.testing.assert_allclose(s1, 2.0 * s2, atol=1e-12)

    def test_uneven_sampling_rejected(self):
        t = np.array([0.0, 0.1, 0.3, 0.4])
        with pytest.raises(ValueError, match="equally spaced"):
            dipole_spectrum(t, np.zeros(4), 1e-3)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            dipole_spectrum(np.arange(5.0), np.zeros(4), 1e-3)

    def test_damping_broadens_not_shifts(self):
        t, d = _synthetic_signal([0.4], [1.0])
        omega, narrow = dipole_spectrum(t, d, 1e-3, damping=0.005)
        _, wide = dipole_spectrum(t, d, 1e-3, damping=0.03)
        p_narrow = omega[np.argmax(narrow)]
        p_wide = omega[np.argmax(wide)]
        assert p_narrow == pytest.approx(p_wide, abs=0.01)
        assert narrow.max() > wide.max()


class TestFindPeaks:
    def test_empty_below_threshold(self):
        omega = np.linspace(0, 1, 100)
        s = 0.01 * np.ones(100)
        s[50] = 0.011
        assert len(find_peaks(omega, s, threshold=0.99)) <= 1

    def test_tiny_input(self):
        assert find_peaks(np.array([0.0]), np.array([1.0])).size == 0
