"""Physical constants and unit conversions (Hartree atomic units internally).

All quantities inside the library are expressed in Hartree atomic units:
lengths in Bohr, energies in Hartree, hbar = m_e = e = 4*pi*eps0 = 1.
These conversion factors are only used at the I/O boundary (structure
builders accept Angstrom, spectra may be reported in eV).
"""

from __future__ import annotations

#: One Bohr radius in Angstrom.
BOHR_TO_ANGSTROM: float = 0.529177210903

#: One Angstrom in Bohr.
ANGSTROM_TO_BOHR: float = 1.0 / BOHR_TO_ANGSTROM

#: One Hartree in electron-volts.
HARTREE_TO_EV: float = 27.211386245988

#: One electron-volt in Hartree.
EV_TO_HARTREE: float = 1.0 / HARTREE_TO_EV

#: One Rydberg in Hartree.
RYDBERG_TO_HARTREE: float = 0.5

#: 4*pi, the Coulomb kernel prefactor in reciprocal space (4*pi/G^2).
FOUR_PI: float = 12.566370614359172


def ha_to_ev(energy_ha: float) -> float:
    """Convert an energy from Hartree to eV."""
    return energy_ha * HARTREE_TO_EV


def ev_to_ha(energy_ev: float) -> float:
    """Convert an energy from eV to Hartree."""
    return energy_ev * EV_TO_HARTREE


def angstrom_to_bohr(length_angstrom: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return length_angstrom * ANGSTROM_TO_BOHR


def bohr_to_angstrom(length_bohr: float) -> float:
    """Convert a length from Bohr to Angstrom."""
    return length_bohr * BOHR_TO_ANGSTROM
