"""Tests for the matrix-free Kohn-Sham Hamiltonian."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.dft import KohnShamHamiltonian, atomic_guess_density
from repro.pw import PlaneWaveBasis
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def ham():
    basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=8.0)
    h = KohnShamHamiltonian(basis)
    h.update_density(atomic_guess_density(basis))
    return h


def test_hermitian(ham):
    rng = default_rng(0)
    a = ham.basis.random_coefficients(1, rng)[0]
    b = ham.basis.random_coefficients(1, rng)[0]
    lhs = np.vdot(a, ham.apply(b))
    rhs = np.vdot(b, ham.apply(a)).conjugate()
    assert lhs == pytest.approx(rhs, abs=1e-12)


def test_linear(ham):
    rng = default_rng(1)
    a = ham.basis.random_coefficients(1, rng)[0]
    b = ham.basis.random_coefficients(1, rng)[0]
    np.testing.assert_allclose(
        ham.apply(1.5 * a - 0.5j * b),
        1.5 * ham.apply(a) - 0.5j * ham.apply(b),
        atol=1e-12,
    )


def test_kinetic_limit_for_high_g(ham):
    """A pure high-|G| plane wave is dominated by its kinetic eigenvalue."""
    idx = int(np.argmax(ham.basis.kinetic_diagonal))
    c = np.zeros(ham.basis.n_pw, dtype=complex)
    c[idx] = 1.0
    expect = ham.basis.kinetic_diagonal[idx]
    got = np.vdot(c, ham.apply(c)).real
    # Potential contribution is bounded by max|V|, small relative to T here.
    assert got == pytest.approx(expect + ham.v_effective.mean(), abs=np.abs(ham.v_effective).max())


def test_update_density_changes_potential(ham):
    v_before = ham.v_effective.copy()
    ham.update_density(ham.basis.grid.dv * 0 + atomic_guess_density(ham.basis) * 1.0)
    np.testing.assert_allclose(ham.v_effective, v_before)  # same density
    bumped = atomic_guess_density(ham.basis)
    bumped = bumped * (8.0 / (bumped.sum() * ham.basis.grid.dv))
    ham.update_density(bumped * 1.2 / 1.2)  # no-op scale, still same
    np.testing.assert_allclose(ham.v_effective, v_before)


def test_wrong_density_shape_rejected(ham):
    with pytest.raises(ValueError, match="density"):
        ham.update_density(np.zeros(7))


def test_apply_columns_transposition(ham):
    rng = default_rng(2)
    block = ham.basis.random_coefficients(3, rng)
    np.testing.assert_allclose(
        ham.apply_columns(block.T), ham.apply(block).T, atol=1e-14
    )


def test_preconditioner_damps_high_g(ham):
    rng = default_rng(3)
    r = ham.basis.random_coefficients(2, rng).T
    out = ham.preconditioner(r, np.zeros(2))
    kinetic = ham.basis.kinetic_diagonal
    hi = kinetic > 0.8 * kinetic.max()
    lo = kinetic < 0.2 * kinetic.max()
    damp_hi = np.abs(out[hi]).mean() / np.abs(r[hi]).mean()
    damp_lo = np.abs(out[lo]).mean() / np.abs(r[lo]).mean()
    assert damp_hi < damp_lo


def test_diagonal_has_kinetic_shape(ham):
    d = ham.diagonal()
    assert d.shape == (ham.basis.n_pw,)
    np.testing.assert_allclose(
        d - d[0], ham.basis.kinetic_diagonal - ham.basis.kinetic_diagonal[0]
    )
