"""Tests for the hierarchical timers."""

import time

import pytest

from repro.utils.timers import Timer, TimerRegistry, timed


class TestTimer:
    def test_accumulates_time(self):
        t = Timer("x")
        t.start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert elapsed >= 0.009
        assert t.total == pytest.approx(elapsed)
        assert t.count == 1

    def test_multiple_intervals_accumulate(self):
        t = Timer("x")
        for _ in range(3):
            t.start()
            t.stop()
        assert t.count == 3
        assert t.mean == pytest.approx(t.total / 3)

    def test_double_start_raises(self):
        t = Timer("x")
        t.start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer("x").stop()

    def test_mean_of_unused_timer_is_zero(self):
        assert Timer("x").mean == 0.0


class TestTimerRegistry:
    def test_nested_scopes_compose_paths(self):
        reg = TimerRegistry()
        with reg.scope("outer"):
            with reg.scope("inner"):
                pass
        assert "outer" in reg.as_dict()
        assert "outer/inner" in reg.as_dict()

    def test_total_of_unknown_scope_is_zero(self):
        assert TimerRegistry().total("nope") == 0.0

    def test_scope_reentry_accumulates(self):
        reg = TimerRegistry()
        for _ in range(4):
            with reg.scope("phase"):
                pass
        assert reg.timer("phase").count == 4

    def test_reset_clears_everything(self):
        reg = TimerRegistry()
        with reg.scope("a"):
            pass
        reg.reset()
        assert reg.as_dict() == {}

    def test_report_contains_scope_names(self):
        reg = TimerRegistry()
        with reg.scope("hamiltonian"):
            with reg.scope("fft"):
                pass
        report = reg.report()
        assert "hamiltonian" in report
        assert "fft" in report

    def test_nested_total_leq_outer(self):
        reg = TimerRegistry()
        with reg.scope("outer"):
            with reg.scope("inner"):
                time.sleep(0.005)
        assert reg.total("outer/inner") <= reg.total("outer")


def test_timed_contextmanager():
    with timed() as t:
        time.sleep(0.005)
    assert t.total >= 0.004
