"""Tests for the ISDF decomposition driver."""

import numpy as np
import pytest

from repro.core import ISDFDecomposition, isdf_decompose
from repro.core.isdf import default_rank
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def synthetic_orbitals(si8_synthetic):
    gs = si8_synthetic
    psi_v, _, psi_c, _ = gs.select_transition_space()
    return gs, psi_v, psi_c


class TestDefaultRank:
    def test_paper_scaling(self):
        """N_mu ~ 10 sqrt(N_v N_c), i.e. ~10 N_e for N_v ~ N_c ~ N_e."""
        assert default_rank(100, 100, 10**6) == 1000

    def test_clipped_to_pair_count(self):
        assert default_rank(2, 3, 1000) == 6

    def test_clipped_to_grid(self):
        assert default_rank(100, 100, 500) == 500


class TestDecompose:
    @pytest.mark.parametrize("method", ["kmeans", "qrcp"])
    def test_shapes(self, synthetic_orbitals, method):
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(
            psi_v, psi_c, 48, method=method,
            grid_points=gs.basis.grid.cartesian_points,
        )
        assert isdf.theta.shape == (gs.basis.n_r, 48)
        assert isdf.n_mu == 48
        assert isdf.n_pairs == psi_v.shape[0] * psi_c.shape[0]
        assert isdf.method == method

    def test_kmeans_requires_grid_points(self, synthetic_orbitals):
        _, psi_v, psi_c = synthetic_orbitals
        with pytest.raises(ValueError, match="grid_points"):
            isdf_decompose(psi_v, psi_c, 16, method="kmeans")

    def test_unknown_method(self, synthetic_orbitals):
        gs, psi_v, psi_c = synthetic_orbitals
        with pytest.raises(ValueError, match="method"):
            isdf_decompose(psi_v, psi_c, 16, method="svd")

    def test_relative_error_reasonable(self, synthetic_orbitals):
        """Synthetic random orbitals are close to incompressible, so the
        Frobenius bar is loose; real orbitals (test_driver) do much better."""
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(
            psi_v, psi_c, 96, method="kmeans",
            grid_points=gs.basis.grid.cartesian_points,
        )
        assert isdf.relative_error(psi_v, psi_c) < 0.35

    def test_error_decreases_with_rank(self, synthetic_orbitals):
        gs, psi_v, psi_c = synthetic_orbitals
        errs = [
            isdf_decompose(
                psi_v, psi_c, n_mu, method="qrcp", rng=default_rng(4)
            ).relative_error(psi_v, psi_c)
            for n_mu in (16, 64, 128)
        ]
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-6  # full rank: exact

    def test_apply_c_matches_dense(self, synthetic_orbitals, rng):
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(psi_v, psi_c, 32, method="qrcp", rng=default_rng(1))
        x = rng.standard_normal((isdf.n_pairs, 5))
        np.testing.assert_allclose(
            isdf.apply_c(x), isdf.coefficients() @ x, atol=1e-10
        )

    def test_apply_ct_matches_dense(self, synthetic_orbitals, rng):
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(psi_v, psi_c, 32, method="qrcp", rng=default_rng(2))
        y = rng.standard_normal((32, 4))
        np.testing.assert_allclose(
            isdf.apply_ct(y), isdf.coefficients().T @ y, atol=1e-10
        )

    def test_reconstruct_matches_theta_times_c(self, synthetic_orbitals):
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(psi_v, psi_c, 24, method="qrcp", rng=default_rng(3))
        np.testing.assert_allclose(
            isdf.reconstruct(), isdf.theta @ isdf.coefficients(), atol=1e-12
        )

    def test_default_rank_used_when_unspecified(self, synthetic_orbitals):
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(
            psi_v, psi_c, method="kmeans",
            grid_points=gs.basis.grid.cartesian_points, rank_factor=4.0,
        )
        expect = default_rank(psi_v.shape[0], psi_c.shape[0], gs.basis.n_r, 4.0)
        assert isdf.n_mu == expect

    @pytest.mark.parametrize("n_mu", [16, 48, 96])
    def test_cheap_error_matches_exact(self, synthetic_orbitals, n_mu):
        """The closed-form residual equals the materialized one."""
        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(psi_v, psi_c, n_mu, method="qrcp", rng=default_rng(7))
        exact = isdf.relative_error(psi_v, psi_c)
        cheap = isdf.relative_error_cheap(psi_v, psi_c)
        assert cheap == pytest.approx(exact, abs=1e-8)

    def test_cheap_error_never_materializes_z(self, synthetic_orbitals, monkeypatch):
        """relative_error_cheap must not call pair_products."""
        import repro.core.isdf as isdf_mod

        gs, psi_v, psi_c = synthetic_orbitals
        isdf = isdf_decompose(psi_v, psi_c, 32, method="qrcp", rng=default_rng(8))

        def boom(*args, **kwargs):
            raise AssertionError("pair_products called")

        monkeypatch.setattr(isdf_mod, "pair_products", boom)
        value = isdf.relative_error_cheap(psi_v, psi_c)
        assert 0.0 <= value <= 1.0

    def test_timers_populated(self, synthetic_orbitals):
        from repro.utils.timers import TimerRegistry

        gs, psi_v, psi_c = synthetic_orbitals
        timers = TimerRegistry()
        isdf_decompose(
            psi_v, psi_c, 16, method="kmeans",
            grid_points=gs.basis.grid.cartesian_points, timers=timers,
        )
        assert timers.total("isdf/select_kmeans") > 0
        assert timers.total("isdf/fit") > 0
