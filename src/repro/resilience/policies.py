"""Recovery policies: retry-with-backoff, reliable delivery, degradation.

Three layers of graceful degradation back the facade's
``ResilienceConfig``:

* **transport** — :func:`reliable_send` / :func:`reliable_recv` implement
  ack-based at-least-once point-to-point delivery on top of the lossy
  (fault-injected) communicator, and :func:`verified_allreduce` re-runs a
  reduction whose combined buffer arrives non-finite (the signature of a
  corrupted contribution);
* **backend** — :class:`ResilientFFTEngine` delegates to the preferred
  (scipy) engine and permanently drops to the numpy reference engine the
  moment a transform call fails;
* **algorithm** — K-Means -> QRCP point selection on non-convergence and
  iterative -> dense eigensolver fallback live with their call sites
  (:func:`repro.core.isdf.isdf_decompose` and
  :func:`repro.api.solve_tddft`) and are driven by the same
  :class:`RetryPolicy` knobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.backend.fft_engine import FFTEngine, NumpyFFTEngine, default_fft_engine
from repro.parallel.comm import Communicator, MessageTimeout
from repro.resilience.faults import InjectedFault
from repro.utils.validation import require

__all__ = [
    "ResilientFFTEngine",
    "RetryPolicy",
    "reliable_recv",
    "reliable_send",
    "verified_allreduce",
    "with_retry",
]

#: Tag offset reserved for delivery acknowledgements.
_ACK_TAG_OFFSET = 1 << 20

#: How a backend transform failure surfaces: a backend bug/limitation
#: (RuntimeError), a shape/plan problem (ValueError), numerical trouble
#: (ArithmeticError covers FloatingPointError) or exhaustion (MemoryError).
#: Anything else — KeyboardInterrupt, injected faults, programming errors —
#: must propagate instead of silently degrading the backend.
_TRANSFORM_FAILURES = (RuntimeError, ValueError, ArithmeticError, MemoryError)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff parameters.

    ``retry_on`` limits which exceptions are considered transient; by
    default only injected faults and message timeouts are retried, so
    genuine programming errors still fail fast.
    """

    max_retries: int = 3
    backoff: float = 0.01
    backoff_factor: float = 2.0
    timeout: float = 0.25  #: per-attempt wait for an expected message/ack
    retry_on: tuple[type[BaseException], ...] = (InjectedFault, MessageTimeout)

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.backoff >= 0.0, "backoff must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff * self.backoff_factor**attempt

    def total_recv_timeout(self) -> float:
        """How long a receiver should wait for an at-least-once sender."""
        budget = self.timeout * (self.max_retries + 1)
        budget += sum(self.delay(a) for a in range(self.max_retries))
        return budget + 1.0


def with_retry(
    fn: Callable,
    *args,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
):
    """Call ``fn(*args, **kwargs)``, retrying transient failures with backoff."""
    policy = policy or RetryPolicy()
    for attempt in range(policy.max_retries + 1):
        try:
            return fn(*args, **kwargs)
        except policy.retry_on:
            if attempt == policy.max_retries:
                raise
            sleep(policy.delay(attempt))


# -- reliable point-to-point ------------------------------------------------


def reliable_send(
    comm: Communicator,
    value,
    dest: int,
    tag: int = 0,
    *,
    policy: RetryPolicy | None = None,
) -> int:
    """Send with ack-based at-least-once delivery; returns attempts used.

    The payload is (re)sent until the matching :func:`reliable_recv` acks
    it or the retry budget is exhausted.  Duplicates are possible when an
    *ack* (rather than the payload) is lost — callers that cannot tolerate
    redelivery must deduplicate by tag.
    """
    policy = policy or RetryPolicy()
    require(0 <= tag < _ACK_TAG_OFFSET, f"tag must be < {_ACK_TAG_OFFSET}")
    for attempt in range(policy.max_retries + 1):
        comm.send(value, dest, tag=tag)
        try:
            comm.recv(
                dest,
                tag=tag + _ACK_TAG_OFFSET,
                timeout=policy.timeout,
                strict_tags=False,
            )
            return attempt + 1
        except MessageTimeout:
            if attempt < policy.max_retries:
                time.sleep(policy.delay(attempt))
    raise MessageTimeout(
        f"rank {comm.rank}: message tag={tag} to rank {dest} was never "
        f"acknowledged after {policy.max_retries + 1} attempts"
    )


def reliable_recv(
    comm: Communicator,
    source: int,
    tag: int = 0,
    *,
    policy: RetryPolicy | None = None,
):
    """Receive the payload of a :func:`reliable_send` and acknowledge it."""
    policy = policy or RetryPolicy()
    require(0 <= tag < _ACK_TAG_OFFSET, f"tag must be < {_ACK_TAG_OFFSET}")
    value = comm.recv(
        source, tag=tag, timeout=policy.total_recv_timeout(), strict_tags=False
    )
    comm.send(True, source, tag=tag + _ACK_TAG_OFFSET)
    return value


# -- verified collectives ---------------------------------------------------


def _all_finite(value) -> bool:
    if isinstance(value, np.ndarray):
        return bool(np.isfinite(value).all())
    if isinstance(value, (list, tuple)):
        return all(_all_finite(v) for v in value)
    if isinstance(value, (int, float, complex, np.generic)):
        return bool(np.isfinite(complex(value).real) and np.isfinite(complex(value).imag))
    return True


def verified_allreduce(
    comm: Communicator,
    value,
    op: str = "sum",
    *,
    policy: RetryPolicy | None = None,
):
    """Allreduce that detects a poisoned buffer and re-runs the reduction.

    Every rank observes the *same* combined result, so the finite/retry
    decision is consistent across ranks without extra synchronization.
    """
    policy = policy or RetryPolicy()
    for attempt in range(policy.max_retries + 1):
        result = comm.allreduce(value, op=op)
        if _all_finite(result):
            return result
    raise ArithmeticError(
        f"allreduce({op}) stayed non-finite after "
        f"{policy.max_retries + 1} attempts — corrupt contribution?"
    )


# -- backend degradation ----------------------------------------------------


class ResilientFFTEngine(FFTEngine):
    """Delegate to a preferred FFT engine, fall back to numpy on failure.

    The first transform call that raises switches the wrapper permanently
    to the reference :class:`NumpyFFTEngine` (with the real fast path
    matching the primary's capability, so in-flight ``rfftn`` callers keep
    working) and replays the failed call there.
    """

    name = "resilient"

    def __init__(self, primary: FFTEngine | None = None) -> None:
        super().__init__()
        self._primary = primary or default_fft_engine()
        self._fallback = NumpyFFTEngine(use_rfft=self._primary.supports_real)
        self._active = self._primary
        self.degraded = False
        self.supports_real = self._primary.supports_real
        self.workers = self._primary.workers

    def _call(self, method: str, *args):
        try:
            return getattr(self._active, method)(*args)
        except _TRANSFORM_FAILURES:
            if self._active is self._fallback:
                raise
            self._active = self._fallback
            self.degraded = True
            self.workers = self._fallback.workers
            return getattr(self._active, method)(*args)

    def fftn(self, a, axes):
        return self._call("fftn", a, axes)

    def ifftn(self, a, axes):
        return self._call("ifftn", a, axes)

    def rfftn(self, a, axes):
        return self._call("rfftn", a, axes)

    def irfftn(self, a, s, axes):
        return self._call("irfftn", a, s, axes)

    def describe(self) -> str:
        state = "degraded->numpy" if self.degraded else f"primary={self._primary.name}"
        return f"ResilientFFTEngine({state})"
