"""Self-consistent field driver for the plane-wave KS-DFT substrate.

The loop is the standard PWDFT structure: density guess -> effective
potential -> LOBPCG band solve (warm-started) -> occupations -> new density
-> Anderson mixing -> repeat; a final tight band solve polishes the orbitals
before they are rotated to the real gauge LR-TDDFT requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atoms.elements import valence_electron_count
from repro.dft.density import atomic_guess_density, density_from_orbitals
from repro.dft.ewald import ewald_energy
from repro.dft.groundstate import GroundState, realify_orbitals
from repro.dft.hamiltonian import KohnShamHamiltonian
from repro.dft.hartree import hartree_energy
from repro.dft.mixing import AndersonMixer, LinearMixer
from repro.dft.xc import lda_potential, xc_energy
from repro.eigen.lobpcg import lobpcg
from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell
from repro.utils.rng import default_rng
from repro.utils.timers import TimerRegistry
from repro.utils.validation import check_positive, require


@dataclass
class SCFOptions:
    """Knobs of the SCF loop (defaults tuned for the small test systems)."""

    ecut: float = 10.0
    n_bands: int | None = None  #: total bands; default = n_occ + max(4, n_occ//2)
    tol: float = 1e-6  #: density residual convergence (per electron)
    max_iter: int = 60
    mixer: str = "anderson"  #: "anderson" or "linear"
    mixing_beta: float = 0.5
    mixing_history: int = 5
    smearing_width: float = 0.0  #: Fermi-Dirac width in Ha; 0 = integer fill
    eig_tol_final: float = 1e-8
    seed: int | None = None
    verbose: bool = False
    #: Precision tier ("strict64" / "mixed" / "fast32") or a
    #: :class:`repro.precision.PrecisionConfig`.  SCF convergence-critical
    #: algebra stays fp64 in every tier; only ``fast32`` routes the Hartree
    #: solve through fp32 FFT scratch (verified, with permanent fp64
    #: fallback recorded in the resilience log).
    precision: object = "strict64"
    # -- resilience (see repro.resilience.checkpoint) ----------------------
    checkpoint_dir: str | None = None  #: snapshot directory; None = disabled
    checkpoint_every: int = 1  #: snapshot every N-th SCF iteration
    restart: bool = False  #: resume from the newest snapshot when present


@dataclass(frozen=True)
class SCFWarmStart:
    """Initial state carried over from a nearby converged calculation.

    The cross-calculation warm start used by :mod:`repro.batch`: seeding
    the loop with the previous frame's (possibly extrapolated) density and
    converged orbitals skips the atomic-guess/random-coefficient cold start
    and lets Anderson mixing begin inside the convergence basin.

    Attributes
    ----------
    density:
        ``(N_r,)`` starting density (should integrate to the electron
        count; a linear extrapolation of the two previous frames is the
        usual choice for smooth trajectories).
    orbitals_real:
        Optional ``(n_bands, N_r)`` real-gauge orbitals used as the LOBPCG
        starting block (``GroundState.orbitals_real`` of the previous
        frame).  ``None`` falls back to random coefficients.
    residual_hint:
        Estimated initial density residual (per electron).  Sets the first
        iteration's adaptive eigensolver tolerance; without it the first
        band solve runs at the loosest tolerance (1e-3), which floors the
        first measured residual and wastes the quality of a good guess.
    mixer_state:
        Optional ``state_dict`` of the previous run's mixer; carrying the
        Anderson history across frames preserves the built-up quasi-Newton
        curvature information.
    """

    density: np.ndarray
    orbitals_real: np.ndarray | None = None
    residual_hint: float | None = None
    mixer_state: dict | None = None


@dataclass
class SCFResultInfo:
    """Convergence diagnostics of one SCF run."""

    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)
    total_energies: list[float] = field(default_factory=list)


def _occupations(
    energies: np.ndarray, n_electrons: float, width: float
) -> np.ndarray:
    """Occupation numbers: integer fill, or Fermi-Dirac when ``width > 0``."""
    nb = energies.shape[0]
    if width <= 0.0:
        require(
            abs(n_electrons / 2.0 - round(n_electrons / 2.0)) < 1e-9,
            f"odd electron count {n_electrons} needs smearing_width > 0",
        )
        n_occ = int(round(n_electrons / 2.0))
        require(n_occ <= nb, f"{n_occ} occupied bands but only {nb} computed")
        occ = np.zeros(nb)
        occ[:n_occ] = 2.0
        return occ

    def total(mu: float) -> float:
        x = np.clip((energies - mu) / width, -200.0, 200.0)
        return float((2.0 / (1.0 + np.exp(x))).sum())

    lo, hi = energies.min() - 10.0 * width - 1.0, energies.max() + 10.0 * width + 1.0
    require(total(hi) >= n_electrons - 1e-9, "not enough bands to hold all electrons")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if total(mid) < n_electrons:
            lo = mid
        else:
            hi = mid
    mu = 0.5 * (lo + hi)
    x = np.clip((energies - mu) / width, -200.0, 200.0)
    occ = 2.0 / (1.0 + np.exp(x))
    return occ * (n_electrons / occ.sum())


def _total_energy(
    ham: KohnShamHamiltonian,
    energies: np.ndarray,
    occupations: np.ndarray,
    density: np.ndarray,
    e_ii: float,
) -> float:
    """Harris-Foulkes-style total energy with double-counting corrections."""
    basis = ham.basis
    dv = basis.grid.dv
    e_band = float((occupations * energies).sum())
    e_h = hartree_energy(density, basis)
    e_xc = xc_energy(density, dv)
    e_vxc = float((density * lda_potential(density)).sum() * dv)
    return e_band - e_h - e_vxc + e_xc + e_ii


def run_scf(
    cell: UnitCell,
    options: SCFOptions | None = None,
    *,
    timers: TimerRegistry | None = None,
    checkpoint=None,
    warm_start: SCFWarmStart | None = None,
    progress=None,
    **overrides,
) -> GroundState:
    """Run a Gamma-point SCF and return the converged :class:`GroundState`.

    Keyword overrides are applied on top of ``options``:
    ``run_scf(cell, ecut=8.0, n_bands=12)``.

    ``warm_start`` seeds the loop from a nearby converged calculation (see
    :class:`SCFWarmStart`); a checkpoint restart, when present, takes
    precedence since it resumes *this* run's own state.

    ``progress`` is an optional per-iteration callback receiving
    ``{"iteration": i, "residual": r, "e_total": e, "converged": bool}``
    after each completed SCF iteration — the job server's event stream
    (:mod:`repro.serve.events`) hangs off this hook.  It observes only;
    exceptions propagate (a broken subscriber should fail loudly, not
    corrupt a silent result).

    Checkpoint/restart: pass a
    :class:`~repro.resilience.checkpoint.LoopCheckpointer` (or set
    ``checkpoint_dir`` / ``restart`` in the options) and the loop snapshots
    its full iteration-boundary state — mixed density, orbital
    coefficients, residual, mixer history, diagnostics — after each
    iteration.  A restarted run replays the remaining iterations
    bit-identically to an uninterrupted one.
    """
    opts = options or SCFOptions()
    for key, value in overrides.items():
        require(hasattr(opts, key), f"unknown SCF option {key!r}")
        setattr(opts, key, value)
    check_positive(opts.ecut, "ecut")
    timers = timers or TimerRegistry()

    if checkpoint is None and opts.checkpoint_dir is not None:
        from repro.resilience.checkpoint import CheckpointManager, LoopCheckpointer

        checkpoint = LoopCheckpointer(
            CheckpointManager(opts.checkpoint_dir, tag="scf"),
            every=opts.checkpoint_every,
            restart=opts.restart,
        )

    n_electrons = valence_electron_count(cell.species)
    n_occ = int(np.ceil(n_electrons / 2.0))
    n_bands = opts.n_bands if opts.n_bands is not None else n_occ + max(4, n_occ // 2)
    require(n_bands >= n_occ, f"n_bands={n_bands} < occupied bands {n_occ}")

    basis = PlaneWaveBasis(cell, opts.ecut)
    require(
        n_bands <= basis.n_pw,
        f"n_bands={n_bands} exceeds basis size N_pw={basis.n_pw}; raise ecut",
    )
    ham = KohnShamHamiltonian(basis, precision=opts.precision)
    rng = default_rng(opts.seed)

    mixer = (
        AndersonMixer(opts.mixing_beta, opts.mixing_history)
        if opts.mixer == "anderson"
        else LinearMixer(opts.mixing_beta)
    )
    info = SCFResultInfo(iterations=0, converged=False)
    history: list[dict] = []

    energies = np.zeros(n_bands)
    occupations = np.zeros(n_bands)
    residual = np.inf
    start_iteration = 0

    if warm_start is not None:
        require(
            warm_start.density.shape == (basis.n_r,),
            f"warm-start density must have shape ({basis.n_r},), "
            f"got {warm_start.density.shape}",
        )
        with timers.scope("scf/guess"):
            density = np.array(warm_start.density, dtype=float)
        if warm_start.orbitals_real is not None:
            require(
                warm_start.orbitals_real.shape == (n_bands, basis.n_r),
                f"warm-start orbitals must be ({n_bands}, {basis.n_r}), "
                f"got {warm_start.orbitals_real.shape}",
            )
            coeffs = basis.to_recip(warm_start.orbitals_real.astype(complex))
        else:
            coeffs = basis.random_coefficients(n_bands, rng)
        if warm_start.residual_hint is not None:
            residual = float(warm_start.residual_hint)
        if warm_start.mixer_state is not None:
            mixer.load_state_dict(warm_start.mixer_state)
    else:
        coeffs = basis.random_coefficients(n_bands, rng)
        with timers.scope("scf/guess"):
            density = atomic_guess_density(basis)
    e_ii = ewald_energy(cell)

    resumed = checkpoint.resume() if checkpoint is not None else None
    if resumed is not None:
        start_iteration, state = resumed
        density = np.array(state["density"])
        coeffs = np.array(state["coeffs"])
        residual = float(state["residual"])
        mixer.load_state_dict(state["mixer"])
        residuals = [float(v) for v in state["residuals"]]
        energies_hist = [float(v) for v in state["total_energies"]]
        info.residuals = list(residuals)
        info.total_energies = list(energies_hist)
        history = [
            {"iteration": i + 1, "residual": r, "e_total": e}
            for i, (r, e) in enumerate(zip(residuals, energies_hist))
        ]

    for iteration in range(start_iteration + 1, opts.max_iter + 1):
        ham.update_density(density)
        eig_tol = float(np.clip(0.03 * residual, opts.eig_tol_final, 1e-3))
        with timers.scope("scf/bands"):
            result = lobpcg(
                ham.apply_columns,
                coeffs.T,
                preconditioner=ham.preconditioner,
                tol=eig_tol,
                max_iter=100,
            )
        coeffs = result.eigenvectors.T
        energies = result.eigenvalues
        occupations = _occupations(energies, n_electrons, opts.smearing_width)

        psi_real = basis.to_real(coeffs)
        density_out = density_from_orbitals(psi_real, occupations, basis.grid.dv)
        delta = density_out - density
        residual = float(
            np.sqrt((delta * delta).sum() * basis.grid.dv) / max(n_electrons, 1.0)
        )
        e_total = _total_energy(ham, energies, occupations, density_out, e_ii)
        info.residuals.append(residual)
        info.total_energies.append(e_total)
        history.append(
            {"iteration": iteration, "residual": residual, "e_total": e_total}
        )
        if opts.verbose:  # pragma: no cover - console path
            print(f"SCF {iteration:3d}: residual={residual:.3e}, E={e_total:.8f} Ha")
        if progress is not None:
            progress(
                {
                    "iteration": iteration,
                    "residual": residual,
                    "e_total": e_total,
                    "converged": residual < opts.tol,
                }
            )

        if residual < opts.tol:
            info.converged = True
            info.iterations = iteration
            density = density_out
            break
        with timers.scope("scf/mix"):
            density = mixer.mix(density, density_out)
        if checkpoint is not None:
            checkpoint.save(
                iteration,
                {
                    "density": density,
                    "coeffs": coeffs,
                    "residual": np.float64(residual),
                    "mixer": mixer.state_dict(),
                    "residuals": np.asarray(info.residuals),
                    "total_energies": np.asarray(info.total_energies),
                },
            )
    else:
        info.iterations = opts.max_iter

    # Final polish with the converged potential, then rotate to real gauge.
    ham.update_density(density)
    with timers.scope("scf/polish"):
        result = lobpcg(
            ham.apply_columns,
            coeffs.T,
            preconditioner=ham.preconditioner,
            tol=opts.eig_tol_final,
            max_iter=200,
        )
    coeffs = result.eigenvectors.T
    energies = result.eigenvalues
    occupations = _occupations(energies, n_electrons, opts.smearing_width)
    orbitals_real, energies = realify_orbitals(coeffs, energies, basis, ham.apply)
    density = density_from_orbitals(orbitals_real, occupations, basis.grid.dv)
    e_total = _total_energy(ham, energies, occupations, density, e_ii)

    return GroundState(
        basis=basis,
        energies=energies,
        orbitals_real=orbitals_real,
        occupations=occupations,
        density=density,
        total_energy=e_total,
        converged=info.converged,
        history=history,
    )
