"""The hot-path manifest: which functions must stay allocation-free.

Two ways a function enters the ``no-alloc-in-hot`` scope:

* decorate it with :func:`repro.utils.hot.hot_kernel` (self-documenting,
  preferred for new code), or
* list its qualified name here against its module path (used for the
  seed-era kernels whose modules predate the decorator).

The manifest keys are posix path *suffixes*, so the same table works for
``src/repro/...`` checkouts and installed trees.
"""

from __future__ import annotations

from repro.utils.hot import ArrayContractError, ContractSpec, array_contract

__all__ = [
    "ARRAY_CONTRACT_DECORATORS",
    "ArrayContractError",
    "ContractSpec",
    "HOT_DECORATORS",
    "HOT_PATH_MANIFEST",
    "array_contract",
    "hot_functions_for",
]

#: Decorator names that mark a function as a hot kernel.
HOT_DECORATORS = frozenset({"hot_kernel"})

#: Decorator names declaring an array contract (the decorator itself lives
#: in :mod:`repro.utils.hot` so runtime modules never import the lint
#: package; this module re-exports it as the canonical lint-facing name).
ARRAY_CONTRACT_DECORATORS = frozenset({"array_contract"})

#: module-path suffix -> qualified function names under allocation discipline.
HOT_PATH_MANIFEST: dict[str, frozenset[str]] = {
    "repro/backend/fft_engine.py": frozenset({"FFTEngine.scratch"}),
    # Reviewed 2026-08: the f_Hxc Coulomb apply ("fhxc/coulomb_fft") runs
    # through convolve_real, whose transform *outputs* are allocated by
    # pocketfft itself — numpy/scipy expose no ``out=`` for rfftn/irfftn,
    # so the ~2 x batch x N_r spectrum+result allocation per apply cannot
    # be eliminated through any public API.  Everything avoidable has
    # been hoisted: the kernel and its half-spectrum slice are built once
    # per (grid, kernel) in the PlanCache, and engines with scratch pools
    # reuse input staging buffers.  The manifest entry keeps the rule
    # watching so any *new* per-call allocation added here is flagged.
    "repro/pw/fft.py": frozenset(
        {"FourierGrid.convolve_real", "ConvolutionPlan.apply"}
    ),
    "repro/core/isdf.py": frozenset(
        {"ISDFDecomposition.apply_c", "ISDFDecomposition.apply_ct"}
    ),
    "repro/parallel/pipeline.py": frozenset({"pipelined_vhxc_rows"}),
    "repro/eigen/lobpcg.py": frozenset({"lobpcg"}),
    # Shared-memory transport of the process SPMD backend: the per-epoch
    # publish/decode path every collective crosses.
    "repro/parallel/shm.py": frozenset(
        {"SharedSlab.view", "SharedSlab.write", "SlabArena.write_array"}
    ),
    "repro/parallel/process_backend.py": frozenset(
        {
            "ProcessCommunicator._publish",
            "ProcessCommunicator._peer_descriptor",
            "ProcessCommunicator._materialize",
        }
    ),
}


def hot_functions_for(posix_path: str) -> frozenset[str]:
    """Manifest entries applying to ``posix_path`` (empty set if none)."""
    for suffix, names in HOT_PATH_MANIFEST.items():
        if posix_path.endswith(suffix):
            return names
    return frozenset()
