"""Interpolation vectors: the least-squares step of ISDF (Section 4.1.2).

Given interpolation points ``{r_mu}``, the interpolating vectors solve the
overdetermined system ``Z = Theta C`` in the Galerkin/least-squares sense
(Eqs. 9-10):

    Theta = Z C^T (C C^T)^{-1}.

Both Gram products are evaluated *separably* — the defining trick of ISDF:
with ``P_v = Psi^T Psi_mu`` and ``P_c = Phi^T Phi_mu`` (tall-skinny GEMMs of
the orbital factors),

    Z C^T   = P_v ∘ P_c                       (N_r  x N_mu, Hadamard)
    C C^T   = (Psi_mu^T Psi_mu) ∘ (Phi_mu^T Phi_mu)   (N_mu x N_mu)

so the full ``Z`` is never formed and the cost is
``O((N_v + N_c) N_r N_mu + N_mu^2 N_r)`` instead of ``O(N_v N_c N_r N_mu)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.utils.validation import require


def coefficient_matrix(
    psi_v: np.ndarray, psi_c: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Expansion coefficients ``C[mu, (v c)] = psi_v(r_mu) psi_c(r_mu)``.

    Shape ``(N_mu, N_v * N_c)`` in the library's pair ordering.
    """
    v_pts = psi_v[:, indices]  # (N_v, N_mu)
    c_pts = psi_c[:, indices]  # (N_c, N_mu)
    n_mu = indices.shape[0]
    c = v_pts.T[:, :, None] * c_pts.T[:, None, :]  # (N_mu, N_v, N_c)
    return c.reshape(n_mu, -1)


#: Row-sample size for the fp32 fitting-GEMM a-posteriori error estimate.
_FP32_CHECK_ROWS = 256


def fit_interpolation_vectors(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    indices: np.ndarray,
    *,
    regularization: float = 1e-12,
    precision=None,
) -> np.ndarray:
    """Interpolation vectors ``Theta`` of shape ``(N_r, N_mu)``.

    Parameters
    ----------
    indices:
        ``(N_mu,)`` grid-point indices of the interpolation points.
    regularization:
        Relative Tikhonov ridge on ``C C^T`` — interpolation points selected
        by K-Means can be mildly collinear in the orbital values, and the
        ridge keeps the solve stable without visibly perturbing the fit.
    precision:
        A precision mode string or :class:`repro.precision.PrecisionConfig`.
        With ``fit_fp32`` the two ``O(N_r N_mu)`` tall-skinny GEMMs (the
        dominant cost of the fit) run in fp32; the ``N_mu x N_mu`` Gram
        matrix, the ridge and the Cholesky solve stay fp64.  When
        verification is on, a deterministic row sample of ``Z C^T`` is
        recomputed in fp64; a relative deviation above ``fit_tol`` discards
        the fp32 product, refits entirely in fp64 and records an
        ``isdf-fit`` degradation event.
    """
    require(psi_v.shape[1] == psi_c.shape[1], "orbital grid mismatch")
    indices = np.asarray(indices)
    require(indices.ndim == 1 and indices.size > 0, "indices must be 1-D, non-empty")

    from repro.precision import resolve_precision

    precision = resolve_precision(precision)

    v_pts = psi_v[:, indices]  # (N_v, N_mu)
    c_pts = psi_c[:, indices]  # (N_c, N_mu)

    # Z C^T via the separable Hadamard identity.  The two tall-skinny GEMM
    # outputs are the only O(N_r N_mu) temporaries; the Hadamard products
    # fold in place so no third matrix of that size ever exists.
    fp32 = bool(precision.fit_fp32) and psi_v.dtype == np.float64
    if fp32:
        zct = _fitting_gemms_fp32(psi_v, psi_c, v_pts, c_pts)
        if precision.verify:
            error = _sampled_gemm_error(psi_v, psi_c, v_pts, c_pts, zct)
            if not np.isfinite(error) or error > precision.fit_tol:
                from repro.resilience.events import resilience_log

                resilience_log().record(
                    "isdf-fit",
                    "fallback-fp64",
                    f"fp32 fitting-GEMM sampled error {error:.3e} exceeds "
                    f"tolerance {precision.fit_tol:.1e}; refitting in fp64",
                    error=error,
                    tol=precision.fit_tol,
                    n_mu=int(indices.size),
                )
                fp32 = False
    if not fp32:
        zct = psi_v.T @ v_pts  # (N_r, N_mu)
        p_c = psi_c.T @ c_pts  # (N_r, N_mu)
        zct *= p_c

    # C C^T likewise, folded in place — N_mu x N_mu, always fp64 (it feeds
    # the conditioning-sensitive Cholesky solve and costs O(N_mu^2 N_bands),
    # negligible next to the N_r GEMMs above).
    cct = v_pts.T @ v_pts  # (N_mu, N_mu)
    g_c = c_pts.T @ c_pts
    cct *= g_c

    scale = float(np.trace(cct)) / max(cct.shape[0], 1)
    ridge = regularization * max(scale, 1e-300)
    cct_reg = cct
    cct_reg[np.diag_indices_from(cct_reg)] += ridge
    try:
        chol = sla.cho_factor(cct_reg, lower=False)
        theta = sla.cho_solve(chol, zct.T).T
    except sla.LinAlgError:
        theta = np.linalg.lstsq(cct_reg, zct.T, rcond=None)[0].T
    return theta


def _fitting_gemms_fp32(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    v_pts: np.ndarray,
    c_pts: np.ndarray,
) -> np.ndarray:
    """``Z C^T`` with the two tall-skinny GEMMs in fp32, result in fp64.

    The Hadamard fold happens in fp32 (still elementwise-accurate to
    ~eps_fp32 relative), then one upcast materializes the fp64 result the
    Cholesky solve consumes.
    """
    zct32 = psi_v.astype(np.float32).T @ v_pts.astype(np.float32)
    p_c32 = psi_c.astype(np.float32).T @ c_pts.astype(np.float32)
    zct32 *= p_c32
    return zct32.astype(np.float64)


def _sampled_gemm_error(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    v_pts: np.ndarray,
    c_pts: np.ndarray,
    zct: np.ndarray,
    n_rows: int = _FP32_CHECK_ROWS,
) -> float:
    """Relative error of the fp32 ``Z C^T`` on a deterministic row sample.

    Recomputes ``min(n_rows, N_r)`` evenly spaced rows of the separable
    product in fp64 — ``O(n_rows N_mu N_bands)``, a vanishing fraction of
    the full GEMM — and returns ``max |fp32 - fp64| / max |fp64|``.
    """
    n_r = psi_v.shape[1]
    sample = np.linspace(0, n_r - 1, num=min(n_rows, n_r), dtype=np.int64)
    sample = np.unique(sample)
    ref = (psi_v[:, sample].T @ v_pts) * (psi_c[:, sample].T @ c_pts)
    scale = float(np.abs(ref).max()) or 1.0
    return float(np.abs(zct[sample] - ref).max()) / scale
