"""Backend equivalence: every FFT engine computes the same transforms.

The numpy engine is the seed-faithful reference; the scipy engine (with
its multi-worker pocketfft and rfftn real fast path) must agree to well
below the 1e-10 acceptance tolerance on the forward, inverse, batched and
real-field-convolution paths, or it is not a drop-in backend.
"""

import numpy as np
import pytest

from repro.backend import (
    NumpyFFTEngine,
    ScipyFFTEngine,
    available_backends,
    get_fft_engine,
    reset_default_fft_backend,
    set_default_fft_backend,
)
from repro.pw import FourierGrid, RealSpaceGrid, UnitCell

scipy_available = "scipy" in available_backends()
needs_scipy = pytest.mark.skipif(not scipy_available, reason="scipy not installed")


@pytest.fixture()
def grid():
    return RealSpaceGrid(UnitCell.cubic(6.0), (9, 8, 7))


@pytest.fixture(autouse=True)
def _isolate_default_backend():
    """Tests below mutate the process default; always restore it."""
    yield
    reset_default_fft_backend()


def _engines():
    engines = [NumpyFFTEngine()]
    if scipy_available:
        engines.append(ScipyFFTEngine())
    return engines


class TestEngineAgreement:
    @needs_scipy
    def test_forward_matches_reference(self, grid, rng):
        f = rng.standard_normal(grid.n_points) + 1j * rng.standard_normal(grid.n_points)
        ref = FourierGrid(grid, engine=NumpyFFTEngine()).forward(f)
        opt = FourierGrid(grid, engine=ScipyFFTEngine()).forward(f)
        np.testing.assert_allclose(opt, ref, rtol=0, atol=1e-12 * np.abs(ref).max())

    @needs_scipy
    def test_inverse_matches_reference(self, grid, rng):
        f_g = rng.standard_normal(grid.n_points) + 1j * rng.standard_normal(grid.n_points)
        ref = FourierGrid(grid, engine=NumpyFFTEngine()).backward(f_g)
        opt = FourierGrid(grid, engine=ScipyFFTEngine()).backward(f_g)
        np.testing.assert_allclose(opt, ref, rtol=0, atol=1e-12 * np.abs(ref).max())

    @needs_scipy
    def test_batched_matches_reference(self, grid, rng):
        fields = (rng.standard_normal((5, grid.n_points))
                  + 1j * rng.standard_normal((5, grid.n_points)))
        ref = FourierGrid(grid, engine=NumpyFFTEngine()).forward(fields)
        opt = FourierGrid(grid, engine=ScipyFFTEngine()).forward(fields)
        np.testing.assert_allclose(opt, ref, rtol=0, atol=1e-12 * np.abs(ref).max())

    def test_roundtrip_every_engine(self, grid, rng):
        f = rng.standard_normal(grid.n_points).astype(complex)
        for engine in _engines():
            fourier = FourierGrid(grid, engine=engine)
            back = fourier.backward(fourier.forward(f))
            np.testing.assert_allclose(back, f, atol=1e-12)


class TestConvolveReal:
    def _kernel(self, grid, rng):
        # Real, inversion-symmetric G-diagonal kernel (like 4*pi/|G|^2):
        # build from |G|^2 so K(-G) = K(G) holds by construction.
        from repro.pw import GVectors

        g2 = GVectors(grid, ecut=1.0).g2  # full-grid |G|^2, (N_r,)
        return 1.0 / (1.0 + g2)

    def test_real_fast_path_matches_complex_path(self, grid, rng):
        kernel = self._kernel(grid, rng)
        fields = rng.standard_normal((4, grid.n_points))
        ref = FourierGrid(grid, engine=NumpyFFTEngine(use_rfft=False))
        expect = ref.convolve_real(fields, kernel)
        for engine in _engines() + [NumpyFFTEngine(use_rfft=True)]:
            got = FourierGrid(grid, engine=engine).convolve_real(fields, kernel)
            assert got.dtype.kind == "f"
            np.testing.assert_allclose(
                got, expect, rtol=0, atol=1e-12 * np.abs(expect).max()
            )

    def test_precomputed_half_kernel(self, grid, rng):
        kernel = self._kernel(grid, rng)
        fields = rng.standard_normal(grid.n_points)
        for engine in _engines():
            fourier = FourierGrid(grid, engine=engine)
            half = fourier.half_kernel(kernel)
            np.testing.assert_array_equal(
                fourier.convolve_real(fields, kernel, kernel_half=half),
                fourier.convolve_real(fields, kernel),
            )

    def test_complex_fields_use_reference_path(self, grid, rng):
        kernel = self._kernel(grid, rng)
        f = rng.standard_normal(grid.n_points).astype(complex)
        for engine in _engines():
            fourier = FourierGrid(grid, engine=engine)
            expect = fourier.backward(fourier.forward(f) * kernel).real
            np.testing.assert_allclose(
                fourier.convolve_real(f, kernel), expect, atol=1e-13
            )


class TestSelection:
    def test_get_by_name(self):
        assert get_fft_engine("numpy").name == "numpy"
        if scipy_available:
            assert get_fft_engine("scipy").name == "scipy"

    def test_auto_prefers_scipy(self):
        expected = "scipy" if scipy_available else "numpy"
        assert get_fft_engine("auto").name == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown FFT backend"):
            get_fft_engine("fftw3")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        assert get_fft_engine().name == "numpy"

    def test_env_var_workers(self, monkeypatch):
        if not scipy_available:
            pytest.skip("scipy not installed")
        monkeypatch.setenv("REPRO_FFT_WORKERS", "3")
        assert ScipyFFTEngine().workers == 3
        assert ScipyFFTEngine(workers=2).workers == 2

    def test_set_default_applies_to_existing_grids(self, grid):
        fourier = FourierGrid(grid)  # engine=None -> resolves default lazily
        set_default_fft_backend("numpy")
        assert fourier.fft_engine.name == "numpy"
        if scipy_available:
            set_default_fft_backend("scipy")
            assert fourier.fft_engine.name == "scipy"


class TestScratchPool:
    def test_same_key_reuses_buffer(self):
        eng = NumpyFFTEngine()
        a = eng.scratch((4, 5), np.complex128)
        b = eng.scratch((4, 5), np.complex128)
        assert a is b
        assert eng.scratch((4, 5), np.float64) is not a

    def test_pool_is_bounded(self):
        eng = NumpyFFTEngine()
        first = eng.scratch((1, 1), float)
        for n in range(2, 12):  # evict well past the slot budget
            eng.scratch((n, 1), float)
        assert eng.scratch((1, 1), float) is not first
