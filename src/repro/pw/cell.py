"""Periodic unit cells with atoms.

Lengths are in Bohr; atomic positions are stored in fractional (crystal)
coordinates.  The cell owns the lattice geometry used everywhere else:
volume for normalization, reciprocal vectors for G-vector generation, and
supercell replication for the Si_64 ... Si_4096 series of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class UnitCell:
    """A periodic simulation cell.

    Parameters
    ----------
    lattice:
        ``(3, 3)`` array whose *rows* are the lattice vectors in Bohr.
    species:
        Chemical symbol per atom, e.g. ``("Si", "Si")``.
    fractional_positions:
        ``(n_atoms, 3)`` crystal coordinates in ``[0, 1)``.
    """

    lattice: np.ndarray
    species: tuple[str, ...] = field(default_factory=tuple)
    fractional_positions: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 3))
    )

    def __post_init__(self) -> None:
        lattice = np.asarray(self.lattice, dtype=float)
        require(lattice.shape == (3, 3), f"lattice must be 3x3, got {lattice.shape}")
        positions = np.asarray(self.fractional_positions, dtype=float)
        if positions.size == 0:
            positions = positions.reshape(0, 3)
        require(
            positions.ndim == 2 and positions.shape[1] == 3,
            f"positions must be (n, 3), got {positions.shape}",
        )
        require(
            len(self.species) == positions.shape[0],
            f"{len(self.species)} species but {positions.shape[0]} positions",
        )
        volume = float(np.linalg.det(lattice))
        require(volume > 1e-12, "lattice vectors must be right-handed and non-degenerate")
        object.__setattr__(self, "lattice", lattice)
        object.__setattr__(self, "species", tuple(self.species))
        object.__setattr__(self, "fractional_positions", positions % 1.0)

    # -- geometry ---------------------------------------------------------

    @property
    def volume(self) -> float:
        """Cell volume Omega in Bohr^3."""
        return float(np.linalg.det(self.lattice))

    @property
    def reciprocal_lattice(self) -> np.ndarray:
        """``(3, 3)`` array whose rows are reciprocal vectors b_i (with 2*pi)."""
        return 2.0 * np.pi * np.linalg.inv(self.lattice).T

    @property
    def n_atoms(self) -> int:
        return len(self.species)

    @property
    def lengths(self) -> np.ndarray:
        """Norms of the three lattice vectors (used for the grid-size rule)."""
        return np.linalg.norm(self.lattice, axis=1)

    @property
    def cartesian_positions(self) -> np.ndarray:
        """``(n_atoms, 3)`` atomic positions in Bohr."""
        return self.fractional_positions @ self.lattice

    # -- constructors -----------------------------------------------------

    @classmethod
    def cubic(
        cls,
        a: float,
        species: tuple[str, ...] = (),
        fractional_positions: np.ndarray | None = None,
    ) -> "UnitCell":
        """Simple cubic cell of edge ``a`` Bohr."""
        positions = (
            np.zeros((0, 3)) if fractional_positions is None else fractional_positions
        )
        return cls(a * np.eye(3), species, positions)

    def supercell(self, reps: tuple[int, int, int]) -> "UnitCell":
        """Replicate the cell ``reps = (n1, n2, n3)`` times along each vector."""
        n1, n2, n3 = reps
        require(min(reps) >= 1, f"supercell repetitions must be >= 1, got {reps}")
        shifts = np.array(
            [[i, j, k] for i in range(n1) for j in range(n2) for k in range(n3)],
            dtype=float,
        )
        scale = np.array(reps, dtype=float)
        new_positions = (
            (self.fractional_positions[None, :, :] + shifts[:, None, :]) / scale
        ).reshape(-1, 3)
        new_species = tuple(s for _ in range(len(shifts)) for s in self.species)
        new_lattice = self.lattice * scale[:, None]
        return UnitCell(new_lattice, new_species, new_positions)

    def count(self, symbol: str) -> int:
        """Number of atoms of a given species."""
        return sum(1 for s in self.species if s == symbol)

    def formula(self) -> str:
        """Hill-ish chemical formula, e.g. ``Si8`` or ``H2O1``."""
        seen: dict[str, int] = {}
        for s in self.species:
            seen[s] = seen.get(s, 0) + 1
        return "".join(f"{s}{n}" for s, n in sorted(seen.items()))
