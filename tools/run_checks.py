#!/usr/bin/env python
"""Unified static-analysis + test gate: ``python tools/run_checks.py``.

Runs, in order:

1. **ruff** — baseline style/correctness lint (skipped when not installed;
   the container image does not ship it),
2. **mypy** — type check of the static-analysis subsystem (skipped when not
   installed),
3. **repro-lint** — the project's own AST + whole-program passes
   (``python -m repro lint``, file rules plus the call-graph rules),
4. **lint suppressions** — ``repro lint --check-suppressions``: every
   suppression comment must still match a live finding (stale waivers fail),
5. **lint baseline** — ``tools/check_lint_baseline.py``: no new findings
   versus the committed baseline, and no silently-vanished rules,
6. **arrays static pass** — the array-contract analyzer over ``src``:
   every hot-path-manifest function must carry a well-formed
   ``@array_contract`` that the abstract interpreter verifies, and the
   four array rules must report zero unsuppressed findings,
7. **array-contract runtime smoke** — the bench-backend Coulomb-apply
   workload run twice in subprocesses, with and without
   ``REPRO_ARRAY_CONTRACTS=1``: results must be bit-identical, overhead
   must stay within 1.10x, and enforcement must provably reject a
   contract-violating call (so the gate cannot pass with the decorator
   accidentally inert),
8. **sanitizer smoke** — a 4-rank SPMD run under the runtime sanitizer plus
   one deliberately mismatched collective that must be *diagnosed*, proving
   the sanitizer is alive and not a no-op,
9. **process-backend smoke** — a 3-rank ``backend="process"`` run whose
   collectives must match the thread backend bit-for-bit and leave no
   ``/dev/shm`` residue (skipped where ``fork`` is unavailable),
10. **process-sanitizer smoke** — the cross-process sanitizer on the
    bench-spmd GIL-bound workload: sanitized results bit-identical to
    unsanitized, a mismatched collective diagnosed with both call sites,
    and overhead within 25% (skipped where ``fork`` is unavailable),
11. **precision smoke** — the mixed precision tier (``repro.precision``)
    against strict64: fit and K-Means errors inside their documented
    tolerances with no fallback fired, the fp32 wire provably halving the
    shared-memory reduce bytes on the pipelined GEMM+Reduce, and the
    thread/process backends bit-identical to each other under the fp32
    wire (skip with ``--no-precision``),
12. **serve smoke** — an in-process job server handling a duplicate
    request pair: the second submission must be a bit-identical,
    zero-SCF-iteration cache hit, and a perturbed third request must
    warm-start off the cached ground state,
13. **public API snapshot** — ``tools/check_public_api.py``,
14. **bytecode guard** — ``tools/check_no_pyc.py``,
15. **bench gate** — ``tools/check_bench.py``: validates the committed
    ``BENCH_*.json`` reports and re-runs the smoke benchmarks, gating on
    correctness flags and dimensionless ratios (never raw seconds); skip
    with ``--no-bench`` for the fast loop, refresh the committed reports
    with ``python tools/check_bench.py --update-bench``,
16. **tier-1 tests** — ``pytest -x -q`` (skip with ``--no-tests`` for the
    fast pre-commit loop).

Exit status is nonzero if any mandatory stage fails.  Optional tools that
are absent are reported as SKIP, never as failures — the repo must be
checkable in the minimal numpy/scipy container.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
import time

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(_TOOLS_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _have_module(name: str) -> bool:
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


class Gate:
    """Collects stage results and renders the summary table."""

    def __init__(self) -> None:
        self.results: list[tuple[str, str, float]] = []

    def run(self, name: str, argv: list[str], *, optional_module: str | None = None) -> None:
        if optional_module is not None and not _have_module(optional_module):
            print(f"-- {name}: SKIP ({optional_module} not installed)")
            self.results.append((name, "SKIP", 0.0))
            return
        shown = " ".join(a if len(a) < 80 else a[:77].replace("\n", " ") + "..." for a in argv)
        print(f"-- {name}: {shown}")
        start = time.perf_counter()
        proc = subprocess.run(argv, cwd=REPO_ROOT, env=_env())
        elapsed = time.perf_counter() - start
        status = "ok" if proc.returncode == 0 else f"FAIL (exit {proc.returncode})"
        self.results.append((name, status, elapsed))

    def summary(self) -> int:
        print("\n== run_checks summary ==")
        failed = 0
        for name, status, elapsed in self.results:
            print(f"  {name:<18s} {status:<14s} {elapsed:6.1f}s")
            failed += status.startswith("FAIL")
        if failed:
            print(f"run_checks: {failed} stage(s) failed")
            return 1
        print("run_checks: all stages passed")
        return 0


_ARRAYS_STATIC_SMOKE = """
import ast
from pathlib import Path

from repro.lint.arrays import ARRAY_RULE_NAMES, analyze_arrays
from repro.lint.callgraph import build_project
from repro.lint.engine import SourceModule, iter_python_files, lint_paths
from repro.lint.hotpaths import hot_functions_for

modules = []
for path in iter_python_files(["src"]):
    text = Path(path).read_text()
    modules.append(SourceModule(path=str(path), text=text, tree=ast.parse(text)))
project = build_project(modules)
analysis = analyze_arrays(project)

# Every hot-path-manifest function must carry a statically verified
# @array_contract: present, well-formed, and with no shape-mismatch
# emitted against it during the interpretation pass.
missing, unverified = [], []
for uid, info in sorted(project.functions.items()):
    if info.qualname not in hot_functions_for(Path(info.path).as_posix()):
        continue
    if uid not in analysis.contracts:
        missing.append(uid)
    elif not analysis.verified.get(uid, False):
        unverified.append(uid)
assert not missing, f"manifest functions without @array_contract: {missing}"
assert not unverified, f"contracts the static pass could not verify: {unverified}"

# The four array rules must be clean (modulo reviewed suppressions) on src.
findings = [
    f for f in lint_paths(["src"], rules=list(ARRAY_RULE_NAMES))
    if f.rule in ARRAY_RULE_NAMES
]
assert not findings, "unsuppressed array-rule findings:\\n" + "\\n".join(
    f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in findings
)
print(
    f"arrays static pass: ok ({len(analysis.contracts)} contracts, "
    f"{sum(analysis.verified.values())} verified, manifest fully covered)"
)
"""


_ARRAY_CONTRACT_CHILD = """
import sys, time
import numpy as np
from repro.core import HxcKernel
from repro.pw import PlaneWaveBasis, UnitCell
from repro.pw.fft import FourierGrid
from repro.utils.hot import ArrayContractError, array_contracts_enabled

basis = PlaneWaveBasis(UnitCell.cubic(6.0), 35.0)
rng = np.random.default_rng(7)
density = 0.05 + 0.01 * rng.random(basis.n_r)
kernel = HxcKernel(basis, density)
fields = rng.standard_normal((8, basis.n_r))

kernel.apply(fields)  # warm the plan cache and FFT twiddles
best = float("inf")
for _ in range(7):
    t0 = time.perf_counter()
    out = kernel.apply(fields)
    best = min(best, time.perf_counter() - t0)

# Prove enforcement state: under REPRO_ARRAY_CONTRACTS=1 a float32 input
# to a contracted transform must raise; without it, nothing may.
try:
    FourierGrid(basis.grid).forward(fields[:1].astype(np.float32))
    enforced = False
except ArrayContractError:
    enforced = True
assert enforced == array_contracts_enabled(), (
    "contract enforcement does not match REPRO_ARRAY_CONTRACTS"
)
np.save(sys.argv[1], out)
print(f"{best:.9f} {int(enforced)}")
"""


_ARRAY_CONTRACT_SMOKE = f"""
import os, subprocess, sys, tempfile
import numpy as np

CHILD = {_ARRAY_CONTRACT_CHILD!r}

def run(contracts):
    env = dict(os.environ)
    env.pop("REPRO_ARRAY_CONTRACTS", None)
    if contracts:
        env["REPRO_ARRAY_CONTRACTS"] = "1"
    with tempfile.NamedTemporaryFile(suffix=".npy", delete=False) as fh:
        out_path = fh.name
    try:
        proc = subprocess.run(
            [sys.executable, "-c", CHILD, out_path],
            env=env, capture_output=True, text=True, check=True,
        )
        seconds, enforced = proc.stdout.split()
        return float(seconds), bool(int(enforced)), np.load(out_path)
    finally:
        os.unlink(out_path)

t_off, enforced_off, out_off = run(contracts=False)
t_on, enforced_on, out_on = run(contracts=True)
assert not enforced_off and enforced_on, (enforced_off, enforced_on)
assert np.array_equal(out_off, out_on), "contract mode perturbed the numerics"
ratio = t_on / t_off
# Correctness assertions above are deterministic; the overhead ratio is a
# wall-clock measurement and can flake on a loaded host, so take the best
# of up to three measurement rounds before declaring a regression.
for _ in range(2):
    if ratio <= 1.10:
        break
    t_off, _, _ = run(contracts=False)
    t_on, _, _ = run(contracts=True)
    ratio = min(ratio, t_on / t_off)
assert ratio <= 1.10, f"runtime contract overhead {{ratio:.3f}}x exceeds 1.10x"
print(f"array-contract smoke: ok (bit-identical, overhead {{ratio:.3f}}x, "
      "violation rejected)")
"""


_SANITIZER_SMOKE = """
import repro  # noqa: F401 - import side effects must not break the sanitizer
from repro.parallel import SanitizerError, spmd_run

# Clean program: collectives must pass under the sanitizer unchanged.
def ok(comm):
    return comm.allreduce(comm.rank)

assert spmd_run(4, ok, sanitize=True) == [6, 6, 6, 6]

# Divergent program: rank 2 calls a different collective; the sanitizer must
# diagnose the mismatch (naming both op signatures) instead of hanging.
def bad(comm):
    if comm.rank == 2:
        return comm.gather(comm.rank, root=0)
    return comm.allreduce(comm.rank)

try:
    spmd_run(4, bad, sanitize=True, sanitize_timeout=5.0)
except SanitizerError as exc:
    text = str(exc)
    assert "allreduce" in text and "gather" in text, text
else:
    raise SystemExit("sanitizer missed a mismatched collective")
print("sanitizer smoke: ok")
"""


_PROCESS_SMOKE = """
import multiprocessing, os, sys
try:
    multiprocessing.get_context("fork")
except ValueError:
    print("process smoke: SKIP (no fork start method)")
    sys.exit(0)

import numpy as np
from repro.parallel import spmd_run

def prog(comm):
    rng = np.random.default_rng(99)
    a = rng.standard_normal((6, 5))
    out = comm.allreduce(a * (comm.rank + 1))
    got = comm.alltoall([a + d for d in range(comm.size)])
    h = comm.ireduce(a, root=0)
    red = h.wait()
    return (out.sum(), sum(g.sum() for g in got),
            None if red is None else red.sum())

thread = spmd_run(3, prog, backend="thread")
process, traffic = spmd_run(3, prog, backend="process", return_traffic=True)
assert thread == process, (thread, process)
assert traffic.zero_copy_bytes > 0, "no bytes moved through shared memory?"
residue = [f for f in os.listdir("/dev/shm") if f.startswith("reprospmd")]
assert not residue, residue
print("process smoke: ok (bit-identical, zero-copy, no shm residue)")
"""


_PROCESS_SANITIZER_SMOKE = """
import multiprocessing, sys, time
try:
    multiprocessing.get_context("fork")
except ValueError:
    print("process-sanitizer smoke: SKIP (no fork start method)")
    sys.exit(0)

from repro.parallel import SanitizerError, spmd_run
from repro.perf.spmd_bench import _gil_bound_program

STEPS, WORK, RANKS = 10, 50_000, 3

def once(sanitize):
    t0 = time.perf_counter()
    out = spmd_run(
        RANKS, _gil_bound_program, STEPS, WORK,
        backend="process", sanitize=sanitize, sanitize_timeout=30.0,
    )
    return out, time.perf_counter() - t0

# Bit-identity: the sanitizer must observe, never perturb.
plain_times, sane_times = [], []
for _ in range(3):
    plain, t_plain = once(False)
    sane, t_sane = once(True)
    assert sane == plain, (sane, plain)
    plain_times.append(t_plain)
    sane_times.append(t_sane)

# Overhead gate: min-of-3 vs min-of-3 (forks dominate; both pay them).
ratio = min(sane_times) / min(plain_times)
assert ratio <= 1.25, f"sanitizer overhead {ratio:.2f}x exceeds 1.25x"

# A mismatched collective must be diagnosed with every rank's call site.
def bad(comm):
    if comm.rank == 1:
        return comm.gather(comm.rank, root=0)
    return comm.allreduce(comm.rank)

try:
    spmd_run(RANKS, bad, backend="process", sanitize=True, sanitize_timeout=5.0)
except SanitizerError as exc:
    text = str(exc)
    assert "allreduce" in text and "gather" in text, text
    assert "run_checks" in text or "<string>" in text or "rank 1" in text, text
else:
    raise SystemExit("process sanitizer missed a mismatched collective")
print(f"process-sanitizer smoke: ok (bit-identical, overhead {ratio:.2f}x, "
      "mismatch diagnosed)")
"""


_PRECISION_SMOKE = """
import multiprocessing, sys
import numpy as np

from repro.core.fitting import fit_interpolation_vectors
from repro.core.kmeans import weighted_kmeans
from repro.resilience import resilience_log

# 1) mixed-tier numerics: the fp32 compute stages must stay inside the
#    tier's documented tolerances against strict64, with no fallback.
rng = np.random.default_rng(11)
psi_v = rng.standard_normal((8, 2048))
psi_c = rng.standard_normal((8, 2048))
# n_mu well below the n_v*n_c Hadamard-Gram rank bound: the fit must be
# well-posed for a tier comparison to be meaningful (an ill-conditioned
# Gram amplifies *any* perturbation through the solve, fp32 or not).
idx = np.sort(rng.choice(2048, size=32, replace=False))
theta64 = fit_interpolation_vectors(psi_v, psi_c, idx)
theta32 = fit_interpolation_vectors(psi_v, psi_c, idx, precision="mixed")
err = np.linalg.norm(theta32 - theta64) / np.linalg.norm(theta64)
assert err <= 1e-4, f"mixed fit error {err:.3e} exceeds 1e-4"

pts = rng.random((4000, 3))
wts = rng.random(4000) + 0.1
strict = weighted_kmeans(pts, wts, 16, rng=np.random.default_rng(0))
mixed = weighted_kmeans(
    pts, wts, 16, rng=np.random.default_rng(0), precision="mixed"
)
drift = abs(mixed[2] - strict[2]) / abs(strict[2])
assert drift <= 1e-2, f"mixed kmeans inertia drift {drift:.3e} exceeds 1e-2"
assert not resilience_log().events(), resilience_log().events()

# 2) fp32 wire: on the pipelined GEMM+Reduce the shared-memory reduce
#    bytes must provably halve, and thread/process backends must stay
#    bit-identical to each other under the fp32 wire.
try:
    multiprocessing.get_context("fork")
except ValueError:
    print("precision smoke: ok (wire-byte check skipped: no fork)")
    sys.exit(0)

from repro.parallel import spmd_run
from repro.parallel.pipeline import pipelined_vhxc_full

def prog(precision):
    def body(comm):
        r = np.random.default_rng(5 + comm.rank)
        z = r.standard_normal((8, 32))
        k = r.standard_normal((8, 32))
        return pipelined_vhxc_full(comm, z, k, 0.1, precision=precision)
    return body

out64, t64 = spmd_run(2, prog("strict64"), backend="process", return_traffic=True)
out32, t32 = spmd_run(2, prog("mixed"), backend="process", return_traffic=True)
b64 = t64.shm_bytes_by_op["reduce"]
b32 = t32.shm_bytes_by_op["reduce"]
assert 2 * b32 <= b64, f"fp32 reduce bytes {b32} not <= half of fp64 {b64}"
scale = max(float(np.abs(a).max()) for a in out64)
wire_err = max(
    float(np.abs(a - b).max()) for a, b in zip(out32, out64)
) / scale
assert wire_err <= 1e-5, f"fp32-wire error {wire_err:.3e} exceeds 1e-5"
thread32 = spmd_run(2, prog("mixed"), backend="thread")
assert all(np.array_equal(a, b) for a, b in zip(thread32, out32)), (
    "thread/process backends disagree under the fp32 wire"
)
print(
    f"precision smoke: ok (fit err {err:.1e}, inertia drift {drift:.1e}, "
    f"reduce bytes {b64} -> {b32}, wire err {wire_err:.1e}, "
    "backends bit-identical)"
)
"""


_SERVE_SMOKE = """
import numpy as np
from repro.api import CalculationRequest, SCFConfig
from repro.pw.cell import UnitCell
from repro.serve import CalculationServer

cell = UnitCell(
    10.0 * np.eye(3), ("H", "H"),
    np.array([[0.5, 0.5, 0.43], [0.5, 0.5, 0.57]]),
)
config = SCFConfig(ecut=4.0, n_bands=4, tol=1e-6, seed=0)
request = CalculationRequest(kind="scf", structure=cell, scf=config)

with CalculationServer() as server:
    first = request.submit(server)
    gs1 = first.result(timeout=300)
    assert not first.cache_hit and first.record()["scf_iterations"] > 0

    # Duplicate: must be a bit-identical cache hit with zero work.
    second = request.submit(server)
    gs2 = second.result(timeout=300)
    assert second.cache_hit, "duplicate request missed the cache"
    assert second.record()["scf_iterations"] == 0
    assert gs2.total_energy == gs1.total_energy
    assert np.array_equal(gs2.density, gs1.density)

    # Near-duplicate: must warm-start from the cached ground state.
    moved = UnitCell(
        cell.lattice, cell.species,
        cell.fractional_positions + np.array([[0.0, 0.0, 1e-3]] * 2),
    )
    third = CalculationRequest(kind="scf", structure=moved, scf=config).submit(server)
    gs3 = third.result(timeout=300)
    assert not third.cache_hit and third.warm, "perturbed request did not warm-start"
print("serve smoke: ok (cache hit bit-identical, warm start engaged)")
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-tests", action="store_true",
                        help="skip the tier-1 pytest stage (fast loop)")
    parser.add_argument("--no-bench", action="store_true",
                        help="skip the perf-regression bench gate (fast loop)")
    parser.add_argument("--no-precision", action="store_true",
                        help="skip the mixed-precision smoke stage")
    args = parser.parse_args(argv)

    gate = Gate()
    gate.run("ruff", [sys.executable, "-m", "ruff", "check", "src", "tests", "tools"],
             optional_module="ruff")
    gate.run("mypy", [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
             optional_module="mypy")
    gate.run("repro-lint", [sys.executable, "-m", "repro", "lint", "src"])
    gate.run("lint-suppressions",
             [sys.executable, "-m", "repro", "lint", "src", "--check-suppressions"])
    gate.run("lint-baseline",
             [sys.executable, os.path.join("tools", "check_lint_baseline.py")])
    gate.run("arrays-static", [sys.executable, "-c", _ARRAYS_STATIC_SMOKE])
    gate.run("array-contracts", [sys.executable, "-c", _ARRAY_CONTRACT_SMOKE])
    gate.run("sanitizer-smoke", [sys.executable, "-c", _SANITIZER_SMOKE])
    gate.run("process-smoke", [sys.executable, "-c", _PROCESS_SMOKE])
    gate.run("process-sanitizer-smoke",
             [sys.executable, "-c", _PROCESS_SANITIZER_SMOKE])
    if not args.no_precision:
        gate.run("precision-smoke", [sys.executable, "-c", _PRECISION_SMOKE])
    else:
        print("-- precision-smoke: SKIP (--no-precision)")
        gate.results.append(("precision-smoke", "SKIP", 0.0))
    gate.run("serve-smoke", [sys.executable, "-c", _SERVE_SMOKE])
    gate.run("public-api", [sys.executable, os.path.join("tools", "check_public_api.py")])
    gate.run("no-pyc", [sys.executable, os.path.join("tools", "check_no_pyc.py")])
    if not args.no_bench:
        gate.run("bench-gate", [sys.executable, os.path.join("tools", "check_bench.py")])
    else:
        print("-- bench-gate: SKIP (--no-bench)")
        gate.results.append(("bench-gate", "SKIP", 0.0))
    if not args.no_tests:
        gate.run("tier1-tests", [sys.executable, "-m", "pytest", "-x", "-q"])
    else:
        print("-- tier1-tests: SKIP (--no-tests)")
        gate.results.append(("tier1-tests", "SKIP", 0.0))
    return gate.summary()


if __name__ == "__main__":
    sys.exit(main())
