"""Dipole-signal analysis: from d(t) to the absorption spectrum.

Linear response to a delta kick of strength kappa along ``e``:

    alpha(omega) = (1/kappa) int_0^T [d(t) - d(0)] e^{i omega t} w(t) dt,
    S(omega)    = (2 omega / pi) Im alpha(omega),

with an exponential window ``w(t) = exp(-gamma t)`` that turns the finite
trace into Lorentzians of width gamma.  The peaks of S sit at the TDDFT
excitation energies — the cross-check against the Casida solves.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, require


def dipole_spectrum(
    times: np.ndarray,
    dipole_signal: np.ndarray,
    kick_strength: float,
    *,
    omega_max: float = 1.5,
    n_omega: int = 1500,
    damping: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Strength function S(omega) from the induced-dipole time series.

    Parameters
    ----------
    times / dipole_signal:
        Equally spaced samples of the dipole component along the kick.
    kick_strength:
        The kappa of the delta kick (normalizes the response).
    damping:
        Lorentzian half-width gamma (Hartree) of the exponential window.

    Returns
    -------
    ``(omega, strength)`` arrays; omega in Hartree.
    """
    times = np.asarray(times, dtype=float)
    signal = np.asarray(dipole_signal, dtype=float)
    require(times.shape == signal.shape, "times/signal mismatch")
    require(times.size > 2, "need more than two samples")
    check_positive(abs(kick_strength), "kick_strength")
    check_positive(damping, "damping")

    dt = times[1] - times[0]
    require(
        np.allclose(np.diff(times), dt, rtol=1e-6),
        "times must be equally spaced",
    )
    induced = signal - signal[0]
    window = np.exp(-damping * times)
    omega = np.linspace(0.0, omega_max, n_omega)
    # Direct (small) Fourier sum: n_omega x n_t, exact frequencies.
    phases = np.exp(1j * np.outer(omega, times))
    alpha = (phases @ (induced * window)) * dt / kick_strength
    strength = (2.0 * omega / np.pi) * alpha.imag
    return omega, strength


def find_peaks(
    omega: np.ndarray,
    strength: np.ndarray,
    *,
    threshold: float = 0.05,
) -> np.ndarray:
    """Frequencies of local maxima above ``threshold * max(strength)``."""
    s = np.asarray(strength)
    if s.size < 3:
        return np.empty(0)
    interior = (s[1:-1] > s[:-2]) & (s[1:-1] >= s[2:])
    big = s[1:-1] > threshold * s.max()
    idx = np.flatnonzero(interior & big) + 1
    return np.asarray(omega)[idx]
