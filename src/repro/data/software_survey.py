"""Paper Table 1: survey of massively parallel excited-state codes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SurveyRow:
    """One row of the paper's Table 1."""

    software: str
    year: int
    theory: str
    basis_set: str
    method: str
    system: str
    n_atoms: int
    architecture: str
    reference: str


#: Verbatim content of Table 1 (the "This work" row is the paper itself).
SOFTWARE_SURVEY: tuple[SurveyRow, ...] = (
    SurveyRow(
        "NWChem", 2016, "LR-TDDFT", "Gaussian", "Explicit",
        "Water molecules", 1890, "Intel Xeon", "[32]",
    ),
    SurveyRow(
        "CP2K", 2019, "LR-TDDFT", "GPW", "Explicit",
        "MgO; HfO2", 1000, "Intel Xeon", "[27]",
    ),
    SurveyRow(
        "PWDFT", 2019, "RT-TDDFT", "PW", "Implicit",
        "Silicon", 1536, "V100 GPU", "[20]",
    ),
    SurveyRow(
        "BerkeleyGW", 2020, "GW", "PW", "Explicit",
        "Silicon", 2742, "V100 GPU", "[9]",
    ),
    SurveyRow(
        "PWDFT", 2021, "LR-TDDFT", "PW", "Implicit",
        "Silicon; Graphene", 4096, "Intel Xeon", "This work",
    ),
)


def format_survey_table() -> str:
    """Render Table 1 as aligned text (used by the Table 1 bench)."""
    header = (
        f"{'Software':<12s} {'Year':<5s} {'Theory':<9s} {'Basis':<9s} "
        f"{'Method':<9s} {'System':<18s} {'#atoms':>6s} {'Architecture':<13s} Ref"
    )
    lines = [header, "-" * len(header)]
    for row in SOFTWARE_SURVEY:
        lines.append(
            f"{row.software:<12s} {row.year:<5d} {row.theory:<9s} "
            f"{row.basis_set:<9s} {row.method:<9s} {row.system:<18s} "
            f"{row.n_atoms:>6d} {row.architecture:<13s} {row.reference}"
        )
    return "\n".join(lines)
