"""Tests for the Fourier-series FFT conventions."""

import numpy as np
import pytest

from repro.pw import FourierGrid, RealSpaceGrid, UnitCell


@pytest.fixture()
def fourier():
    grid = RealSpaceGrid(UnitCell.cubic(5.0), (8, 8, 8))
    return FourierGrid(grid)


def test_roundtrip(fourier, rng):
    f = rng.standard_normal(fourier.grid.n_points).astype(complex)
    np.testing.assert_allclose(fourier.backward(fourier.forward(f)), f, atol=1e-12)


def test_constant_field_maps_to_g0(fourier):
    f = np.full(fourier.grid.n_points, 3.7, dtype=complex)
    f_g = fourier.forward(f)
    assert f_g[0] == pytest.approx(3.7)
    np.testing.assert_allclose(f_g[1:], 0.0, atol=1e-12)


def test_single_plane_wave_coefficient(fourier):
    """f(r) = exp(i G1 . r) must give coefficient 1 at miller (1,0,0)."""
    grid = fourier.grid
    from repro.pw import GVectors

    gv = GVectors(grid, ecut=1.0)
    phase = grid.fractional_points @ np.array([1, 0, 0])
    f = np.exp(2j * np.pi * phase)
    f_g = fourier.forward(f)
    idx = np.flatnonzero((gv.miller == [1, 0, 0]).all(axis=1))[0]
    assert f_g[idx] == pytest.approx(1.0)
    f_g[idx] = 0.0
    np.testing.assert_allclose(f_g, 0.0, atol=1e-12)


def test_batched_transform_matches_loop(fourier, rng):
    fields = rng.standard_normal((4, fourier.grid.n_points)).astype(complex)
    batched = fourier.forward(fields)
    for i in range(4):
        np.testing.assert_allclose(batched[i], fourier.forward(fields[i]))


def test_backward_real_matches_real_part(fourier, rng):
    f = rng.standard_normal(fourier.grid.n_points)
    f_g = fourier.forward(f.astype(complex))
    np.testing.assert_allclose(fourier.backward_real(f_g), f, atol=1e-12)


def test_parseval(fourier, rng):
    """sum_r |f|^2 / N = sum_G |f_G|^2 under the series convention."""
    f = rng.standard_normal(fourier.grid.n_points).astype(complex)
    f_g = fourier.forward(f)
    lhs = (np.abs(f) ** 2).sum() / fourier.grid.n_points
    rhs = (np.abs(f_g) ** 2).sum()
    assert lhs == pytest.approx(rhs)


def test_convolution_theorem(fourier, rng):
    """Multiplying coefficients equals periodic convolution of fields."""
    n = fourier.grid.n_points
    a = rng.standard_normal(n).astype(complex)
    b = rng.standard_normal(n).astype(complex)
    prod_g = fourier.forward(a) * fourier.forward(b)
    direct = fourier.backward(prod_g)
    # Periodic convolution via dense loop on a tiny grid is too slow; use
    # numpy's FFT with matching normalization as the independent reference.
    shape = fourier.grid.shape
    ref = np.fft.ifftn(
        np.fft.fftn(a.reshape(shape)) * np.fft.fftn(b.reshape(shape))
    ).ravel() / n
    np.testing.assert_allclose(direct, ref, atol=1e-10)
