"""Tests for the unrestricted (spin-polarized) SCF."""

import numpy as np
import pytest

from repro.dft import run_scf
from repro.dft.scf_spin import _common_fermi_occupations, run_scf_spin
from repro.pw import UnitCell


def _hydrogen_cell(box=10.0):
    return UnitCell(box * np.eye(3), ("H",), np.array([[0.5, 0.5, 0.5]]))


def _h2_cell(box=10.0, bond=1.4):
    return UnitCell(
        box * np.eye(3), ("H", "H"),
        np.array([[0.5, 0.5, 0.5 - bond / 2 / box], [0.5, 0.5, 0.5 + bond / 2 / box]]),
    )


class TestCommonFermi:
    def test_integer_filling_across_channels(self):
        up = np.array([-1.0, 0.5])
        down = np.array([-0.5, 1.0])
        f_up, f_down = _common_fermi_occupations(up, down, 2.0, width=0.0)
        np.testing.assert_array_equal(f_up, [1.0, 0.0])
        np.testing.assert_array_equal(f_down, [1.0, 0.0])

    def test_polarized_filling(self):
        up = np.array([-1.0, -0.8, 0.5])
        down = np.array([-0.2, 0.6, 1.0])
        f_up, f_down = _common_fermi_occupations(up, down, 2.0, width=0.0)
        np.testing.assert_array_equal(f_up, [1.0, 1.0, 0.0])
        np.testing.assert_array_equal(f_down, [0.0, 0.0, 0.0])

    def test_smearing_conserves_count(self):
        up = np.linspace(-1, 1, 6)
        down = np.linspace(-0.9, 1.1, 6)
        f_up, f_down = _common_fermi_occupations(up, down, 5.0, width=0.05)
        assert f_up.sum() + f_down.sum() == pytest.approx(5.0)

    def test_fractional_count_without_smearing_rejected(self):
        with pytest.raises(ValueError):
            _common_fermi_occupations(np.zeros(2), np.zeros(2), 1.5, width=0.0)


@pytest.fixture(scope="module")
def hydrogen_state():
    return run_scf_spin(
        _hydrogen_cell(), ecut=10.0, n_bands=4,
        initial_magnetization=1.0, tol=1e-6, seed=0,
    )


class TestHydrogenAtom:
    def test_converges(self, hydrogen_state):
        assert hydrogen_state.converged

    def test_full_polarization(self, hydrogen_state):
        assert hydrogen_state.total_magnetization == pytest.approx(1.0, abs=1e-6)

    def test_exchange_splitting(self, hydrogen_state):
        """The occupied up 1s lies below the empty down 1s."""
        assert hydrogen_state.energies[0][0] < hydrogen_state.energies[1][0]

    def test_1s_energy_near_lsda_reference(self, hydrogen_state):
        """LSDA H 1s eigenvalue ~ -0.269 Ha (exact LSD); coarse box/cutoff
        shifts it some."""
        assert hydrogen_state.energies[0][0] == pytest.approx(-0.269, abs=0.03)

    def test_occupations(self, hydrogen_state):
        assert hydrogen_state.occupations[0][0] == pytest.approx(1.0)
        assert hydrogen_state.occupations.sum() == pytest.approx(1.0)

    def test_densities_nonnegative_and_normalized(self, hydrogen_state):
        gs = hydrogen_state
        assert gs.densities.min() > -1e-12
        assert gs.total_density.sum() * gs.basis.grid.dv == pytest.approx(1.0)

    def test_down_density_is_zero(self, hydrogen_state):
        """One electron, fully polarized: the minority density vanishes."""
        gs = hydrogen_state
        assert gs.densities[1].sum() * gs.basis.grid.dv == pytest.approx(0.0, abs=1e-10)


class TestClosedShellConsistency:
    def test_h2_unpolarized_matches_restricted(self):
        """H2 with zero starting magnetization collapses to the restricted
        solution: m = 0 and the same occupied eigenvalue."""
        cell = _h2_cell()
        unrestricted = run_scf_spin(
            cell, ecut=8.0, n_bands=3, initial_magnetization=0.0,
            tol=1e-7, seed=0,
        )
        restricted = run_scf(cell, ecut=8.0, n_bands=3, tol=1e-7, seed=0)
        assert unrestricted.total_magnetization == pytest.approx(0.0, abs=1e-6)
        assert unrestricted.energies[0][0] == pytest.approx(
            restricted.energies[0], abs=2e-4
        )

    def test_h2_channels_degenerate(self):
        gs = run_scf_spin(
            _h2_cell(), ecut=8.0, n_bands=3, initial_magnetization=0.0,
            tol=1e-7, seed=0,
        )
        np.testing.assert_allclose(
            gs.energies[0], gs.energies[1], atol=1e-5
        )
