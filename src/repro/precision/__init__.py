"""Mixed-precision execution policy for the tolerance-bounded hot stages.

The paper's pipeline is dominated by dense GEMMs (ISDF fitting, pair
products, the pipelined GEMM+Reduce), FFT applies and K-Means distance
updates — all tolerance-bounded approximations that run at roughly double
the throughput in float32 on the same hardware, and at half the bytes over
the collectives.  This module defines the *policy* object threaded from
the typed API (:class:`repro.api.SCFConfig` / ``TDDFTConfig`` /
``BatchConfig`` carry a ``precision`` mode string that participates in the
request cache key) down to the kernels:

* ``strict64`` — the default: every stage computes and communicates in
  float64, bit-identical to the historical behaviour.
* ``mixed`` — the tolerance-bounded stages compute in float32 with
  float64 accumulation *and verification*: K-Means classifies in fp32
  with fp64 centroid accumulators and re-checks the final assignment in
  fp64, the ISDF fitting GEMMs run in fp32 with a sampled fp64 residual
  check on the fitted expansion, the pipelined GEMM+Reduce transmits fp32
  blocks (wire dtype decoupled from the fp64 reduction buffers), and the
  Hxc convolution applies use fp32 FFT scratch with a first-apply fp64
  cross-check.  SCF/LOBPCG convergence-critical linear algebra stays
  fp64.
* ``fast32`` — ``mixed`` plus fp32 FFT scratch inside the SCF Hartree
  solve and no bit-identical K-Means re-check; error estimates still run
  and still trigger the fp64 fallback.

Every fp32 stage carries a cheap a-posteriori error estimate against its
documented tolerance (the ``*_tol`` fields below) and falls back to fp64
through the PR 2 degradation-ladder pattern when exceeded, recording a
:class:`repro.resilience.events.DegradationEvent` in the process-wide
resilience log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

__all__ = [
    "PRECISION_MODES",
    "PrecisionConfig",
    "resolve_precision",
]

#: The three execution tiers, in decreasing strictness.
PRECISION_MODES: tuple[str, ...] = ("strict64", "mixed", "fast32")


@dataclass(frozen=True)
class PrecisionConfig:
    """Frozen per-stage precision policy (see the module docstring).

    Attributes
    ----------
    mode:
        The tier this config was derived from (``strict64`` / ``mixed`` /
        ``fast32``); the compact form carried by the API configs and the
        request cache key.
    kmeans_fp32:
        Classify K-Means points against fp32 centroids (centroid
        accumulation stays fp64 either way).
    kmeans_recheck:
        Re-classify every point in fp64 against the converged centroids
        and fall back to a full fp64 clustering unless the assignments
        are bit-identical.
    fit_fp32:
        Evaluate the tall-skinny ISDF fitting GEMMs (``Z C^T`` via the
        separable Hadamard identity) in fp32; the Gram matrix and the
        Cholesky solve stay fp64.
    pair_fp32:
        Materialize explicit pair-product matrices in fp32.
    wire_fp32:
        Transmit pipelined GEMM+Reduce blocks as fp32 over the collective
        wire (shared-memory slabs on the process backend — byte counts
        halve); reduction buffers accumulate in fp64.
    fft_fp32:
        Run the Hxc/Coulomb G-diagonal convolution applies through fp32
        FFT scratch (TDDFT operator applications).
    scf_fft_fp32:
        Extend ``fft_fp32`` to the SCF Hartree solve (``fast32`` only;
        SCF convergence-critical algebra otherwise stays fp64).
    verify:
        Run the a-posteriori error estimates and the fp64 fallback.
    fit_tol / fft_tol / wire_tol:
        Documented relative-error bounds for the corresponding stages;
        an estimate above its bound triggers the fp64 fallback and a
        resilience-log event.
    """

    mode: str = "strict64"
    kmeans_fp32: bool = False
    kmeans_recheck: bool = True
    fit_fp32: bool = False
    pair_fp32: bool = False
    wire_fp32: bool = False
    fft_fp32: bool = False
    scf_fft_fp32: bool = False
    verify: bool = True
    fit_tol: float = 1e-4
    fft_tol: float = 1e-5
    wire_tol: float = 1e-5

    def __post_init__(self) -> None:
        require(
            self.mode in PRECISION_MODES,
            f"precision mode must be one of {PRECISION_MODES}, got {self.mode!r}",
        )
        for name in ("fit_tol", "fft_tol", "wire_tol"):
            require(
                getattr(self, name) >= 0.0,
                f"{name} must be non-negative, got {getattr(self, name)}",
            )

    @property
    def any_fp32(self) -> bool:
        """Whether any stage is allowed to compute or transmit in fp32."""
        return (
            self.kmeans_fp32
            or self.fit_fp32
            or self.pair_fp32
            or self.wire_fp32
            or self.fft_fp32
            or self.scf_fft_fp32
        )

    def replace(self, **changes) -> "PrecisionConfig":
        """A copy with the given fields changed (frozen-safe update)."""
        import dataclasses

        return dataclasses.replace(self, **changes)


#: Canonical per-mode configs (the API layer resolves mode strings here).
_MODE_CONFIGS: dict[str, PrecisionConfig] = {
    "strict64": PrecisionConfig(mode="strict64"),
    "mixed": PrecisionConfig(
        mode="mixed",
        kmeans_fp32=True,
        kmeans_recheck=True,
        fit_fp32=True,
        pair_fp32=True,
        wire_fp32=True,
        fft_fp32=True,
        scf_fft_fp32=False,
        verify=True,
    ),
    "fast32": PrecisionConfig(
        mode="fast32",
        kmeans_fp32=True,
        kmeans_recheck=False,
        fit_fp32=True,
        pair_fp32=True,
        wire_fp32=True,
        fft_fp32=True,
        scf_fft_fp32=True,
        verify=True,
    ),
}


def resolve_precision(
    precision: "str | PrecisionConfig | None",
) -> PrecisionConfig:
    """Fold a mode string (or ``None``) onto its :class:`PrecisionConfig`.

    A :class:`PrecisionConfig` instance passes through unchanged, so power
    users (and tests forcing a fallback) can carry custom tolerances.
    """
    if precision is None:
        return _MODE_CONFIGS["strict64"]
    if isinstance(precision, PrecisionConfig):
        return precision
    require(
        precision in _MODE_CONFIGS,
        f"precision must be one of {PRECISION_MODES} or a PrecisionConfig, "
        f"got {precision!r}",
    )
    return _MODE_CONFIGS[precision]
