"""Property-based tests for weighted K-Means (Section 4.2 invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.kmeans import _pairwise_sq_dists, weighted_kmeans
from repro.utils.rng import default_rng


def points_and_weights(min_points=8, max_points=60):
    n = st.integers(min_points, max_points)
    return n.flatmap(
        lambda m: st.tuples(
            hnp.arrays(
                np.float64,
                (m, 3),
                elements=st.floats(-10, 10, allow_nan=False, width=64),
            ),
            hnp.arrays(
                np.float64,
                (m,),
                elements=st.floats(0.0, 5.0, allow_nan=False, width=64),
            ),
        )
    )


@settings(max_examples=40, deadline=None)
@given(points_and_weights(), st.integers(1, 6), st.integers(0, 10**6))
def test_assignment_optimality(data, n_clusters, seed):
    """Every point is assigned to its nearest centroid (Eq. 12)."""
    points, weights = data
    n_clusters = min(n_clusters, len(np.unique(points.round(12), axis=0)))
    if n_clusters == 0:
        return
    weights = weights + 1e-6  # strictly positive
    centroids, labels, *_ = weighted_kmeans(
        points, weights, n_clusters, rng=default_rng(seed)
    )
    d2 = _pairwise_sq_dists(points, centroids)
    best = d2[np.arange(len(points)), labels]
    np.testing.assert_array_less(best, d2.min(axis=1) + 1e-9)


@settings(max_examples=30, deadline=None)
@given(points_and_weights(), st.integers(1, 5))
def test_inertia_nonnegative_and_bounded(data, n_clusters):
    points, weights = data
    n_clusters = min(n_clusters, len(points))
    weights = weights + 1e-6
    _, _, inertia, *_ = weighted_kmeans(points, weights, n_clusters)
    assert inertia >= 0.0
    # Bounded by the single-cluster inertia around the weighted mean.
    mean = (weights[:, None] * points).sum(0) / weights.sum()
    single = float(
        (weights * ((points - mean) ** 2).sum(axis=1)).sum()
    )
    assert inertia <= single + 1e-6 * max(single, 1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(8, 60), st.integers(2, 5))
def test_translation_equivariance(seed, n_points, n_clusters):
    """Translating all points leaves the clustering *quality* unchanged.

    Stated for generic (continuous random) clouds: Lloyd is a local
    optimizer whose tie-breaking is representation-dependent, so
    degenerate clouds (coincident/collinear points with equal weights) can
    legitimately land in different local optima after a translation —
    hypothesis supplies the seed, numpy the tie-free geometry.
    """
    rng = default_rng(seed)
    points = rng.standard_normal((n_points, 3)) * 3.0
    weights = rng.random(n_points) + 0.1
    n_clusters = min(n_clusters, n_points)
    shift = np.array([3.0, -2.0, 7.0])
    _, _, i1, *_ = weighted_kmeans(points, weights, n_clusters, rng=default_rng(0))
    _, _, i2, *_ = weighted_kmeans(
        points + shift, weights, n_clusters, rng=default_rng(0)
    )
    # A point sitting within float rounding of a Voronoi boundary can flip
    # its assignment under translation and move the local optimum slightly;
    # the quality must still be preserved to high accuracy.
    assert i2 == pytest.approx(i1, rel=0.02, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(points_and_weights(), st.integers(1, 5), st.integers(1, 100))
def test_weight_scale_invariance(data, n_clusters, scale_int):
    """Multiplying all weights by a power of two changes nothing but the
    inertia scale (exact fp equality of the clustering path)."""
    points, weights = data
    scale = 2.0 ** (scale_int % 7)  # exact in floating point
    n_clusters = min(n_clusters, len(points))
    weights = weights + 2.0**-20
    c1, l1, i1, *_ = weighted_kmeans(points, weights, n_clusters)
    c2, l2, i2, *_ = weighted_kmeans(points, scale * weights, n_clusters)
    np.testing.assert_array_equal(l1, l2)
    np.testing.assert_allclose(c1, c2, atol=1e-9)
    assert i2 == pytest.approx(i1 * scale, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64, (12, 3), elements=st.floats(-5, 5, allow_nan=False, width=64)
    ),
    hnp.arrays(
        np.float64, (4, 3), elements=st.floats(-5, 5, allow_nan=False, width=64)
    ),
)
def test_pairwise_distances_match_direct(points, centroids):
    d2 = _pairwise_sq_dists(points, centroids)
    direct = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    np.testing.assert_allclose(d2, direct, atol=1e-8)
    assert (d2 >= 0).all()
