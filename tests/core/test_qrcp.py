"""Tests for QRCP interpolation-point selection."""

import numpy as np
import pytest

from repro.core import select_points_qrcp
from repro.utils.rng import default_rng


@pytest.fixture()
def orbitals(rng):
    psi_v = rng.standard_normal((4, 200))
    psi_c = rng.standard_normal((5, 200))
    return psi_v, psi_c


class TestExactQRCP:
    def test_selects_requested_count(self, orbitals):
        psi_v, psi_c = orbitals
        res = select_points_qrcp(psi_v, psi_c, 8, sketch="none")
        assert res.n_points == 8
        assert len(set(res.indices.tolist())) == 8

    def test_r_diagonal_nonincreasing(self, orbitals):
        psi_v, psi_c = orbitals
        res = select_points_qrcp(psi_v, psi_c, 10, sketch="none")
        assert (np.diff(res.r_diagonal) <= 1e-10).all()

    def test_indices_in_range(self, orbitals):
        psi_v, psi_c = orbitals
        res = select_points_qrcp(psi_v, psi_c, 6, sketch="none")
        assert res.indices.min() >= 0
        assert res.indices.max() < 200

    def test_rank_tol_truncates(self):
        """A rank-deficient pair matrix must stop early under a rank
        tolerance: with psi_c rows all proportional, rank(Z) = N_v."""
        rng = default_rng(0)
        psi_v = rng.standard_normal((2, 100))
        base = rng.standard_normal(100)
        psi_c = np.vstack([base, 2.0 * base, -0.5 * base])
        res = select_points_qrcp(psi_v, psi_c, 6, sketch="none", rank_tol=1e-10)
        assert res.n_points == 2


class TestRandomizedQRCP:
    def test_deterministic_given_rng(self, orbitals):
        psi_v, psi_c = orbitals
        a = select_points_qrcp(psi_v, psi_c, 8, rng=default_rng(3))
        b = select_points_qrcp(psi_v, psi_c, 8, rng=default_rng(3))
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_sketch_matches_exact_for_dominant_points(self):
        """With a hugely dominant grid point, both variants must find it."""
        rng = default_rng(1)
        psi_v = rng.standard_normal((3, 150))
        psi_c = rng.standard_normal((3, 150))
        psi_v[:, 77] *= 60.0
        exact = select_points_qrcp(psi_v, psi_c, 4, sketch="none")
        sketched = select_points_qrcp(psi_v, psi_c, 4, rng=default_rng(2))
        assert exact.indices[0] == 77
        assert 77 in sketched.indices

    def test_invalid_sketch_mode(self, orbitals):
        psi_v, psi_c = orbitals
        with pytest.raises(ValueError, match="sketch"):
            select_points_qrcp(psi_v, psi_c, 4, sketch="bogus")

    def test_invalid_n_mu(self, orbitals):
        psi_v, psi_c = orbitals
        with pytest.raises(ValueError):
            select_points_qrcp(psi_v, psi_c, 0)
        with pytest.raises(ValueError):
            select_points_qrcp(psi_v, psi_c, 21)  # > N_cv = 20

    def test_full_rank_selection_enables_exact_isdf(self):
        """At N_mu = N_cv the QRCP points give an (essentially) exact ISDF."""
        from repro.core import fit_interpolation_vectors, coefficient_matrix, pair_products

        rng = default_rng(5)
        psi_v = rng.standard_normal((2, 120))
        psi_c = rng.standard_normal((3, 120))
        res = select_points_qrcp(psi_v, psi_c, 6, sketch="none")
        theta = fit_interpolation_vectors(psi_v, psi_c, res.indices)
        c = coefficient_matrix(psi_v, psi_c, res.indices)
        z = pair_products(psi_v, psi_c)
        np.testing.assert_allclose(theta @ c, z, atol=1e-8)
