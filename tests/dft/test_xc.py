"""Tests for LDA exchange-correlation, including the ALDA kernel.

Every analytic derivative is cross-checked against high-order central
finite differences — the kernel enters the LR-TDDFT integrals directly, so
a sign or factor error here shifts every excitation energy.
"""

import numpy as np
import pytest

from repro.dft.xc import (
    DENSITY_FLOOR,
    lda_energy_density,
    lda_kernel,
    lda_potential,
    xc_energy,
)


def _central_derivative(f, x, rel_step=1e-5):
    h = rel_step * x
    return (f(x + h) - f(x - h)) / (2 * h)


DENSITIES = np.array([1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 20.0])


class TestEnergyDensity:
    def test_negative_everywhere(self):
        assert (lda_energy_density(DENSITIES) < 0).all()

    def test_monotone_decreasing_with_density(self):
        eps = lda_energy_density(DENSITIES)
        assert (np.diff(eps) < 0).all()

    def test_high_density_exchange_dominates(self):
        """eps_xc -> C_x n^(1/3) as n -> inf."""
        n = np.array([1e6])
        cx = -0.75 * (3 / np.pi) ** (1 / 3)
        assert lda_energy_density(n)[0] == pytest.approx(cx * n[0] ** (1 / 3), rel=1e-2)


class TestPotential:
    def test_vxc_is_derivative_of_energy(self):
        got = lda_potential(DENSITIES)
        ref = _central_derivative(
            lambda n: n * lda_energy_density(n), DENSITIES
        )
        np.testing.assert_allclose(got, ref, rtol=1e-6)

    def test_branch_continuity_at_rs_1(self):
        """PZ81 is parametrized in two rs branches meeting at rs = 1."""
        n_at_rs1 = 3.0 / (4.0 * np.pi)
        below = lda_potential(np.array([n_at_rs1 * 0.999]))[0]
        above = lda_potential(np.array([n_at_rs1 * 1.001]))[0]
        assert below == pytest.approx(above, rel=2e-3)


class TestKernel:
    def test_fxc_is_derivative_of_vxc(self):
        got = lda_kernel(DENSITIES)
        ref = _central_derivative(lda_potential, DENSITIES)
        np.testing.assert_allclose(got, ref, rtol=1e-5)

    def test_fxc_negative(self):
        """The ALDA kernel is attractive for the unpolarized electron gas."""
        assert (lda_kernel(DENSITIES) < 0).all()

    def test_vacuum_floor_zeroes_kernel(self):
        n = np.array([0.0, DENSITY_FLOOR / 10])
        np.testing.assert_array_equal(lda_kernel(n), 0.0)

    def test_kernel_finite_near_floor(self):
        assert np.isfinite(lda_kernel(np.array([DENSITY_FLOOR * 2]))).all()


class TestXCEnergy:
    def test_total_energy_scales_with_volume_weight(self):
        n = np.full(100, 0.3)
        assert xc_energy(n, dv=0.2) == pytest.approx(2 * xc_energy(n, dv=0.1))

    def test_uniform_gas_value(self):
        """HEG at rs = 2: eps_x = -0.4582/rs = -0.2291 Ha and
        eps_c(PZ81) ~ -0.0448 Ha, so eps_xc ~ -0.274 Ha per electron."""
        rs = 2.0
        n = 3.0 / (4.0 * np.pi * rs**3)
        per_particle = lda_energy_density(np.array([n]))[0]
        assert per_particle == pytest.approx(-0.274, abs=0.002)

    def test_exchange_only_value_at_rs1(self):
        """eps_x(rs = 1) = -(3/4)(3/(2 pi))^(2/3)... the canonical
        -0.4582 Ha value."""
        n = 3.0 / (4.0 * np.pi)
        cx = -0.75 * (3 / np.pi) ** (1 / 3)
        assert cx * n ** (1 / 3) == pytest.approx(-0.4582, abs=2e-4)
