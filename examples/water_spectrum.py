#!/usr/bin/env python
"""Absorption spectrum of a water molecule (the paper's Table 5 system).

Runs the full pipeline on one H2O in a box: SCF ground state, LR-TDDFT
excitations via the naive and the implicit-ISDF solvers, transition dipoles
and oscillator strengths, and a broadened absorption spectrum printed as an
ASCII plot.

Runtime: ~15-30 s (use --fast for a coarser, quicker run).

    python examples/water_spectrum.py [--fast]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import LRTDDFTSolver, run_scf, water_molecule
from repro.analysis import accuracy_table
from repro.analysis.accuracy import format_accuracy_table
from repro.constants import ANGSTROM_TO_BOHR, HARTREE_TO_EV
from repro.core import oscillator_strengths, transition_dipoles
from repro.core.spectra import lorentzian_spectrum


def ascii_plot(x: np.ndarray, y: np.ndarray, width: int = 64, height: int = 12) -> str:
    """Minimal ASCII line plot (the repo is matplotlib-free)."""
    y_scaled = y / max(y.max(), 1e-300)
    columns = np.linspace(0, len(x) - 1, width).astype(int)
    rows = []
    for level in range(height, 0, -1):
        threshold = level / height
        row = "".join("#" if y_scaled[c] >= threshold else " " for c in columns)
        rows.append(f"{threshold:4.2f} |{row}")
    rows.append("     +" + "-" * width)
    rows.append(f"      {x[columns[0]]:.1f} eV{' ' * (width - 16)}{x[columns[-1]]:.1f} eV")
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="coarser settings")
    args = parser.parse_args()

    box = (8.0 if args.fast else 9.0) * ANGSTROM_TO_BOHR
    ecut = 10.0 if args.fast else 14.0

    print(f"=== H2O in a {box:.1f} Bohr box, Ecut = {ecut:g} Ha ===")
    t0 = time.perf_counter()
    gs = run_scf(water_molecule(box=box), ecut=ecut, n_bands=10, tol=1e-7, seed=0)
    print(f"SCF done in {time.perf_counter() - t0:.1f} s; "
          f"HOMO-LUMO gap {gs.homo_lumo_gap() * HARTREE_TO_EV:.2f} eV")

    solver = LRTDDFTSolver(gs, seed=0)
    n_exc = min(12, solver.n_pairs)
    reference = solver.solve("naive")
    implicit = solver.solve(
        "implicit-kmeans-isdf-lobpcg", n_excitations=n_exc, tol=1e-9
    )

    rows = accuracy_table(
        reference.energies, reference.energies, implicit.energies, n_rows=3
    )
    print("\n" + format_accuracy_table(
        rows, "Three lowest excitations (Hartree) — Table 5 layout"
    ))

    dipoles = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
    strengths = oscillator_strengths(
        implicit.energies, implicit.wavefunctions, dipoles
    )
    print(f"\n{'#':>3s} {'E (eV)':>8s} {'f (osc.)':>10s}")
    for i, (e, f) in enumerate(zip(implicit.energies, strengths), 1):
        print(f"{i:3d} {e * HARTREE_TO_EV:8.3f} {f:10.5f}")

    omega_ev = np.linspace(2.0, 25.0, 600)
    spectrum = lorentzian_spectrum(
        implicit.energies * HARTREE_TO_EV, strengths, omega_ev, broadening=0.4
    )
    print("\nBroadened absorption spectrum:")
    print(ascii_plot(omega_ev, spectrum))


if __name__ == "__main__":
    main()
