"""Regressions for the per-file traversal gaps closed in the whole-program
refactor.

The original per-file passes only walked ``if`` statements and plain
function bodies; collectives hiding in conditional *expressions*,
short-circuit operands, comprehension filters and rank-dependent ``while``
loops sailed through, and the recv-buffer tracker confused names across
nested scopes.  Each test here failed against the old traversal.
"""

import pytest

from repro.lint import lint_source

pytestmark = pytest.mark.lint


def findings_for(src, rule):
    return lint_source(src, rules=[rule])


class TestCollectiveInBranchExpressions:
    def test_ifexp_with_collective_on_one_arm(self):
        findings = findings_for(
            "def step(comm, rank):\n"
            "    x = comm.barrier() if rank == 0 else None\n",
            "collective-in-branch",
        )
        assert len(findings) == 1
        assert "'barrier'" in findings[0].message

    def test_ifexp_with_matched_arms_is_clean(self):
        findings = findings_for(
            "def step(comm, rank):\n"
            "    x = comm.allreduce(1) if rank == 0 else comm.allreduce(2)\n",
            "collective-in-branch",
        )
        assert findings == []

    def test_rank_dependent_while_loop(self):
        findings = findings_for(
            "def drain(comm, rank):\n"
            "    while rank > 0:\n"
            "        comm.allreduce(1)\n"
            "        rank -= 1\n",
            "collective-in-branch",
        )
        assert len(findings) == 1
        assert "while loop" in findings[0].message

    def test_rank_independent_while_loop_is_clean(self):
        findings = findings_for(
            "def drain(comm, steps):\n"
            "    while steps > 0:\n"
            "        comm.allreduce(1)\n"
            "        steps -= 1\n",
            "collective-in-branch",
        )
        assert findings == []

    def test_boolop_short_circuit_guards_a_collective(self):
        findings = findings_for(
            "def step(comm, rank):\n"
            "    return rank == 0 and comm.barrier()\n",
            "collective-in-branch",
        )
        assert len(findings) == 1
        assert "short-circuited" in findings[0].message

    def test_boolop_collective_before_the_rank_test_is_clean(self):
        # ``comm.barrier() and rank == 0``: the collective is evaluated
        # unconditionally, so every rank still enters it.
        findings = findings_for(
            "def step(comm, rank):\n"
            "    return comm.barrier() and rank == 0\n",
            "collective-in-branch",
        )
        assert findings == []

    def test_comprehension_with_rank_filter(self):
        findings = findings_for(
            "def step(comm, rank, xs):\n"
            "    return [comm.allreduce(x) for x in xs if rank == 0]\n",
            "collective-in-branch",
        )
        assert len(findings) == 1
        assert "rank-dependent filter" in findings[0].message

    def test_dict_comprehension_value_is_covered(self):
        findings = findings_for(
            "def step(comm, rank, xs):\n"
            "    return {x: comm.allreduce(x) for x in xs if rank == 0}\n",
            "collective-in-branch",
        )
        assert len(findings) == 1

    def test_unfiltered_comprehension_is_clean(self):
        findings = findings_for(
            "def step(comm, xs):\n"
            "    return [comm.allreduce(x) for x in xs]\n",
            "collective-in-branch",
        )
        assert findings == []


RECV_PREFIX = "def run(comm):\n    buf = comm.recv(0)\n"


class TestRecvBufferScopes:
    def test_nested_def_shadow_does_not_untrack_outer_name(self):
        # The inner ``buf`` is a different variable; the outer one is
        # still the shared recv buffer when mutated afterwards.
        findings = findings_for(
            RECV_PREFIX
            + "    def inner():\n"
            "        buf = make_local()\n"
            "        return buf\n"
            "    buf[0] = 1.0\n",
            "mutated-recv-buffer",
        )
        assert len(findings) == 1
        assert "'buf'" in findings[0].message

    def test_nested_def_recv_does_not_leak_tracking_out(self):
        findings = findings_for(
            "def run(comm):\n"
            "    def inner():\n"
            "        tmp = comm.recv(0)\n"
            "        return tmp\n"
            "    tmp = make_local()\n"
            "    tmp[0] = 1.0\n",
            "mutated-recv-buffer",
        )
        assert findings == []

    def test_mutation_inside_nested_def_gets_its_own_pass(self):
        # The nested function receives its own buffer and mutates it:
        # flagged on the inner pass, attributed to the inner qualname.
        findings = findings_for(
            "def run(comm):\n"
            "    def inner():\n"
            "        tmp = comm.recv(0)\n"
            "        tmp[0] = 1.0\n"
            "    return inner\n",
            "mutated-recv-buffer",
        )
        assert len(findings) == 1
        assert "run.inner" in findings[0].message

    def test_lambda_closing_over_tracked_buffer_is_flagged(self):
        # A lambda cannot rebind ``buf``; a mutation in its body hits the
        # shared buffer, so the lambda body stays in the outer scope walk.
        findings = findings_for(
            RECV_PREFIX + "    cb = lambda: buf.fill(0.0)\n",
            "mutated-recv-buffer",
        )
        assert len(findings) == 1

    def test_comprehension_mutation_is_in_outer_scope(self):
        findings = findings_for(
            RECV_PREFIX + "    [buf.fill(float(i)) for i in range(3)]\n",
            "mutated-recv-buffer",
        )
        assert len(findings) == 1


class TestReplayScopeDedup:
    def test_nested_def_inside_replay_scope_reports_once(self):
        # Both the outer (checkpoint param) and the nested def qualify as
        # replay scopes; the walk of the outer already covers the inner,
        # so the finding must not double up.
        findings = findings_for(
            "import time\n"
            "def outer(checkpoint):\n"
            "    def refresh_checkpoint():\n"
            "        return time.time()\n"
            "    return refresh_checkpoint()\n",
            "nondeterminism-in-replay",
        )
        assert len(findings) == 1
