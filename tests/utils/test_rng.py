"""Tests for reproducible RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, default_rng, spawn_rng


def test_default_seed_is_reproducible():
    a = default_rng().standard_normal(8)
    b = default_rng().standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_explicit_seed_changes_stream():
    a = default_rng(1).standard_normal(8)
    b = default_rng(2).standard_normal(8)
    assert not np.array_equal(a, b)


def test_none_means_library_seed():
    a = default_rng(None).standard_normal(4)
    b = default_rng(DEFAULT_SEED).standard_normal(4)
    np.testing.assert_array_equal(a, b)


def test_spawn_produces_independent_streams():
    children = spawn_rng(default_rng(5), 4)
    draws = [c.standard_normal(16) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_is_reproducible():
    a = spawn_rng(default_rng(5), 3)[1].standard_normal(4)
    b = spawn_rng(default_rng(5), 3)[1].standard_normal(4)
    np.testing.assert_array_equal(a, b)


def test_spawn_rejects_nonpositive():
    with pytest.raises(ValueError):
        spawn_rng(default_rng(), 0)
