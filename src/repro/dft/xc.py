"""Local-density approximation (LDA) exchange-correlation.

The paper applies the LDA functional in both the KS-DFT and the LR-TDDFT
calculations (Section 5.1).  We implement the spin-unpolarized
Slater exchange + Perdew-Zunger 1981 correlation, together with the
*adiabatic kernel* ``f_xc(n) = d v_xc / d n`` that enters the LR-TDDFT
Hartree-exchange-correlation operator (Eq. 4 of the paper).  Within ALDA the
kernel is local: ``f_xc(r, r') = f_xc(n(r)) delta(r - r')``.

All functions are fully vectorized over the density grid and analytic
(including the second derivative needed for ``f_xc``); the test-suite
cross-checks every derivative against high-order finite differences.
"""

from __future__ import annotations

import numpy as np

# Slater exchange prefactor: eps_x = CX * n^(1/3).
_CX = -0.75 * (3.0 / np.pi) ** (1.0 / 3.0)

# Perdew-Zunger 1981 correlation constants (unpolarized).
_GAMMA = -0.1423
_BETA1 = 1.0529
_BETA2 = 0.3334
_A = 0.0311
_B = -0.048
_C = 0.0020
_D = -0.0116

#: Densities below this floor are treated as vacuum (avoids n^(-2/3) blowups
#: in the kernel on the empty regions of molecular boxes).
DENSITY_FLOOR: float = 1e-10


def _clip(n: np.ndarray) -> np.ndarray:
    return np.maximum(np.asarray(n, dtype=float), DENSITY_FLOOR)


def _rs(n: np.ndarray) -> np.ndarray:
    """Wigner-Seitz radius ``r_s = (3 / (4 pi n))^(1/3)``."""
    return (3.0 / (4.0 * np.pi * n)) ** (1.0 / 3.0)


def _pz_eps_derivs(rs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PZ81 correlation energy per particle and its first two rs-derivatives."""
    eps = np.empty_like(rs)
    d1 = np.empty_like(rs)
    d2 = np.empty_like(rs)

    high = rs < 1.0  # high-density (logarithmic) branch
    if high.any():
        r = rs[high]
        ln_r = np.log(r)
        eps[high] = _A * ln_r + _B + _C * r * ln_r + _D * r
        d1[high] = _A / r + _C * (ln_r + 1.0) + _D
        d2[high] = -_A / (r * r) + _C / r

    low = ~high
    if low.any():
        r = rs[low]
        sqrt_r = np.sqrt(r)
        u = 1.0 + _BETA1 * sqrt_r + _BETA2 * r
        du = 0.5 * _BETA1 / sqrt_r + _BETA2
        d2u = -0.25 * _BETA1 / (r * sqrt_r)
        eps[low] = _GAMMA / u
        d1[low] = -_GAMMA * du / (u * u)
        d2[low] = _GAMMA * (2.0 * du * du / u**3 - d2u / (u * u))

    return eps, d1, d2


def lda_energy_density(n: np.ndarray) -> np.ndarray:
    """XC energy per particle ``eps_xc(n)`` in Hartree."""
    n = _clip(n)
    eps_x = _CX * n ** (1.0 / 3.0)
    eps_c, _, _ = _pz_eps_derivs(_rs(n))
    return eps_x + eps_c


def lda_potential(n: np.ndarray) -> np.ndarray:
    """XC potential ``v_xc = d(n eps_xc)/dn``."""
    n = _clip(n)
    v_x = (4.0 / 3.0) * _CX * n ** (1.0 / 3.0)
    rs = _rs(n)
    eps_c, d1, _ = _pz_eps_derivs(rs)
    v_c = eps_c - (rs / 3.0) * d1
    return v_x + v_c


def lda_kernel(n: np.ndarray) -> np.ndarray:
    """Adiabatic LDA kernel ``f_xc = d v_xc / d n`` (Eq. 4 of the paper).

    The vacuum floor makes the kernel vanish smoothly in empty space: below
    ``DENSITY_FLOOR`` the pair densities are zero anyway, and clamping there
    avoids the ``n^(-2/3)`` divergence polluting the LR-TDDFT integrals.
    """
    raw = np.asarray(n, dtype=float)
    n = _clip(raw)
    f_x = (4.0 / 9.0) * _CX * n ** (-2.0 / 3.0)

    rs = _rs(n)
    _, d1, d2 = _pz_eps_derivs(rs)
    # dv_c/drs = (2/3) eps_c' - (rs/3) eps_c''  ;  drs/dn = -rs / (3 n).
    dvc_drs = (2.0 / 3.0) * d1 - (rs / 3.0) * d2
    f_c = dvc_drs * (-rs / (3.0 * n))

    out = f_x + f_c
    out[raw < DENSITY_FLOOR] = 0.0
    return out


def xc_energy(n: np.ndarray, dv: float) -> float:
    """Total XC energy ``int n eps_xc dr`` on the grid."""
    n = _clip(n)
    return float(np.sum(n * lda_energy_density(n)) * dv)
