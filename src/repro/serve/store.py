"""The content-addressed result store behind the job server.

Entries are keyed by :meth:`repro.api.CalculationRequest.cache_key` — the
sha256 of the request's canonical serialization — so *equal key means
equal calculation* and a stored result can be served bit-identically with
zero recomputation.

Beyond exact hits, the store answers the *nearest-ground-state* query that
powers warm starts: given a new structure and SCF config, find the cached
converged ground state on the most similar geometry that is
**warm-compatible** (identical lattice, species, cutoff and band count —
the invariants that fix the array shapes and grids a warm start must
match), ranked by minimum-image RMS cartesian displacement.

Persistence is optional: with a ``directory`` the store writes each
serializable result as one npz+json payload (atomic, pickle-free — see
:mod:`repro.utils.serialization`) plus a small ``index.json`` of metadata,
and a fresh store pointed at the same directory serves previous sessions'
results without recomputing.  Results without a dict round-trip (batch
containers) stay memory-only.

Long-lived caches can bound their footprint with ``max_entries`` /
``max_bytes``: least-recently-used entries (access = ``put`` or ``get``)
are evicted — removed from memory, from ``index.json`` *and* from disk, so
the on-disk index never points at a deleted payload and a restarted store
sees exactly the surviving set.  Eviction order is deterministic: strict
LRU, with entries inherited from a previous session's index seeded in
sorted-key order before anything accessed in this one.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.atoms.elements import valence_electron_count
from repro.utils.serialization import load_payload, save_payload
from repro.utils.validation import require

__all__ = [
    "ResultStore",
    "StoreEntry",
    "nearest_key",
    "resolved_n_bands",
    "rms_displacement",
    "warm_compatible",
]

_INDEX_NAME = "index.json"


def resolved_n_bands(scf_config, species) -> int:
    """The band count an SCF run with this config will actually compute.

    Mirrors the default rule in :func:`repro.dft.scf.run_scf`
    (``n_occ + max(4, n_occ // 2)``), so two configs that differ only in
    ``n_bands=None`` vs. the explicit default resolve identically.
    """
    n_electrons = valence_electron_count(tuple(species))
    n_occ = int(np.ceil(n_electrons / 2.0))
    if scf_config.n_bands is not None:
        return int(scf_config.n_bands)
    return n_occ + max(4, n_occ // 2)


def rms_displacement(structure_a: dict, structure_b: dict) -> float:
    """Minimum-image RMS cartesian displacement between two structures.

    Both arguments are :func:`repro.api.structure_to_dict` payloads with
    identical lattice and species ordering (callers check
    :func:`warm_compatible` first).  Fractional deltas are wrapped into
    ``[-0.5, 0.5)`` per axis before mapping to cartesian, so a position
    that crossed a periodic boundary still counts as a small move.
    """
    lattice = np.asarray(structure_a["lattice"], dtype=float)
    fa = np.asarray(structure_a["fractional_positions"], dtype=float)
    fb = np.asarray(structure_b["fractional_positions"], dtype=float)
    require(
        fa.shape == fb.shape,
        f"structures have different atom counts: {fa.shape} vs {fb.shape}",
    )
    delta = (fa - fb + 0.5) % 1.0 - 0.5
    cart = delta @ lattice
    return float(np.sqrt((cart * cart).sum(axis=1).mean()))


def warm_compatible(meta: dict, structure: dict, ecut: float, n_bands: int) -> bool:
    """Whether a cached ground state can warm-start this calculation.

    Compatibility is *exact* on everything that fixes array shapes and
    grids: lattice, species (count **and** order — orbitals are not
    permutation-invariant), plane-wave cutoff, and resolved band count.
    Only atomic positions may differ; their displacement is what
    :meth:`ResultStore.nearest_ground_state` ranks on.
    """
    cached = meta.get("structure")
    if cached is None:
        return False
    return (
        cached["lattice"] == structure["lattice"]
        and list(cached["species"]) == list(structure["species"])
        and len(cached["fractional_positions"])
        == len(structure["fractional_positions"])
        and float(meta.get("ecut", -1.0)) == float(ecut)
        and int(meta.get("n_bands", -1)) == int(n_bands)
    )


def nearest_key(entries: dict, structure: dict, ecut: float, n_bands: int):
    """``(key, rms)`` of the closest warm-compatible entry, or ``None``.

    ``entries`` maps cache key -> metadata dict.  Ties break on key order
    so the choice is deterministic across runs.
    """
    best = None
    for key in sorted(entries):
        meta = entries[key]
        if not warm_compatible(meta, structure, ecut, n_bands):
            continue
        rms = rms_displacement(meta["structure"], structure)
        if best is None or rms < best[1]:
            best = (key, rms)
    return best


@dataclass
class StoreEntry:
    """One cached calculation: the result plus reusable artifacts."""

    key: str
    result: object
    ground_state: object | None = None
    meta: dict = field(default_factory=dict)


def _payload_nbytes(entry: StoreEntry) -> int:
    """Array-buffer footprint of a memory-only entry, in bytes.

    Walks the result/ground-state object graph (dataclass ``__dict__``
    attributes, dicts, lists, tuples) and totals ``ndarray.nbytes``;
    non-array leaves count zero.  An estimate, not an accounting — arrays
    dominate every result class this store holds, and persisted entries
    are re-measured from their payload file anyway.
    """
    total = 0
    seen: set[int] = set()
    stack: list = [entry.result, entry.ground_state, entry.meta]
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += int(obj.nbytes)
        elif isinstance(obj, dict):
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
        else:
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.extend(attrs.values())
    return total


def _result_classes():
    from repro.batch.results import BatchResult
    from repro.core.driver import LRTDDFTResult
    from repro.dft.groundstate import GroundState
    from repro.rt.tddft import RTResult

    return {
        "GroundState": GroundState,
        "LRTDDFTResult": LRTDDFTResult,
        "RTResult": RTResult,
        "BatchResult": BatchResult,
    }


class ResultStore:
    """Content-addressed result cache (in-memory, optionally persistent).

    Parameters
    ----------
    directory:
        Optional persistence root.  Existing payloads under it are indexed
        at construction and load lazily on first access.
    max_entries:
        Optional LRU bound on the number of entries (memory and disk
        combined).  ``None`` (default) means unbounded.
    max_bytes:
        Optional LRU bound on the store's payload footprint: persisted
        entries count their on-disk payload size, memory-only entries the
        total of their array buffers.  The most recently used entry is
        never evicted, so a single oversized result may transiently exceed
        the bound rather than making the store reject it.

    Notes
    -----
    Thread-safe.  ``put`` is last-writer-wins, which is harmless here:
    equal keys describe the same calculation, so concurrent writers store
    interchangeable values.

    Locking discipline: ``_lock`` guards the in-memory maps and is never
    held across disk I/O (payload writes/reads happen outside it, so a
    slow filesystem cannot stall readers); ``_io_lock`` is a leaf lock
    serializing ``index.json`` snapshots, version-gated so a stale
    snapshot never overwrites a newer one.  ``_lock`` may be taken before
    ``_io_lock``, never the reverse.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        require(
            max_entries is None or max_entries >= 1,
            f"max_entries must be >= 1, got {max_entries}",
        )
        require(
            max_bytes is None or max_bytes >= 1,
            f"max_bytes must be >= 1, got {max_bytes}",
        )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self._lock = threading.RLock()
        #: serializes index.json writes; see the class docstring.
        self._io_lock = threading.Lock()
        self._index_version = 0  # bumped under _lock per index mutation
        self._written_version = 0  # last version flushed (under _io_lock)
        self._entries: dict[str, StoreEntry] = {}
        #: cache key -> metadata for entries not yet loaded from disk.
        self._disk_index: dict[str, dict] = {}
        #: access recency over every known key, least recent first.
        self._lru: OrderedDict[str, None] = OrderedDict()
        #: cache key -> payload footprint in bytes (see ``max_bytes``).
        self._sizes: dict[str, int] = {}
        self.directory = os.fspath(directory) if directory is not None else None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            index_path = os.path.join(self.directory, _INDEX_NAME)
            if os.path.exists(index_path):
                with open(index_path, encoding="utf-8") as fh:
                    self._disk_index = json.load(fh)
            # Inherited entries seed the LRU in sorted-key order — nothing
            # has been accessed yet, so recency is a tie and sorting makes
            # the eviction order reproducible across sessions.
            for key in sorted(self._disk_index):
                self._lru[key] = None
                try:
                    self._sizes[key] = os.path.getsize(self._path(key))
                except OSError:
                    self._sizes[key] = 0
        self._evict()

    # -- basic mapping interface -------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(set(self._entries) | set(self._disk_index))

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or key in self._disk_index

    def keys(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(set(self._entries) | set(self._disk_index)))

    def put(
        self,
        key: str,
        result,
        *,
        ground_state=None,
        meta: dict | None = None,
    ) -> StoreEntry:
        """Store ``result`` (and optional ground state) under ``key``."""
        entry = StoreEntry(
            key=key,
            result=result,
            ground_state=ground_state,
            meta=dict(meta or {}),
        )
        with self._lock:
            self._entries[key] = entry
            self._sizes[key] = _payload_nbytes(entry)
            self._touch(key)
        if self.directory is not None and hasattr(result, "to_dict"):
            # Disk write happens outside _lock so a slow filesystem never
            # stalls concurrent readers of the in-memory maps.
            self._persist(entry)
        self._evict()
        return entry

    def get(self, key: str) -> StoreEntry | None:
        """The entry for ``key``, loading from disk on first access."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._touch(key)
                return entry
            if key not in self._disk_index:
                return None
        # Disk read outside _lock; concurrent loads of the same key are
        # benign duplicates and setdefault keeps exactly one.
        try:
            loaded = self._load(key)
        except FileNotFoundError:
            # Evicted between the index check and the read.
            return None
        with self._lock:
            if key not in self._disk_index:  # pragma: no cover - eviction race
                return None
            self._touch(key)
            return self._entries.setdefault(key, loaded)

    def _touch(self, key: str) -> None:
        """Mark ``key`` most recently used (``_lock`` held)."""
        self._lru[key] = None
        self._lru.move_to_end(key)

    def stats(self) -> dict[str, int]:
        """Current occupancy, payload footprint, and eviction count."""
        with self._lock:
            return {
                "entries": len(self._lru),
                "bytes": sum(self._sizes.values()),
                "evictions": self.evictions,
            }

    # -- warm-start lookup --------------------------------------------------

    def nearest_ground_state(self, structure: dict, scf_config):
        """Closest warm-compatible cached ground state, or ``None``.

        Parameters
        ----------
        structure:
            :func:`repro.api.structure_to_dict` payload of the *new*
            calculation's structure.
        scf_config:
            Its :class:`~repro.api.SCFConfig` (decides cutoff/band count).

        Returns
        -------
        ``(ground_state, rms_displacement)`` — the cached
        :class:`~repro.dft.GroundState` on the most similar geometry, and
        how far (bohr) its atoms sit from the requested ones.  An exact
        hit returns ``rms == 0.0``; callers wanting bit-identical replay
        should check the exact key first.
        """
        n_bands = resolved_n_bands(scf_config, structure["species"])
        ecut = float(scf_config.ecut)
        with self._lock:
            metas = {
                key: entry.meta
                for key, entry in self._entries.items()
                if entry.ground_state is not None
            }
            for key, meta in self._disk_index.items():
                if key not in metas and meta.get("has_ground_state"):
                    metas[key] = meta
        best = nearest_key(metas, structure, ecut, n_bands)
        if best is None:
            return None
        key, rms = best
        entry = self.get(key)
        if entry is None or entry.ground_state is None:  # pragma: no cover
            return None
        return entry.ground_state, rms

    # -- persistence --------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.npz")

    def _persist(self, entry: StoreEntry) -> None:
        """Write the payload and refresh ``index.json`` (no ``_lock`` held).

        The index snapshot is serialized under ``_lock`` (pure CPU) and
        flushed under the leaf ``_io_lock``; the version gate drops
        snapshots that lost the race to a newer one, so the index on disk
        is always some complete recent state, never a rollback.
        """
        # When the result IS the ground state (scf entries) don't write the
        # same arrays twice; _load reunifies them.
        gs = entry.ground_state
        payload = {
            "class": type(entry.result).__name__,
            "data": entry.result.to_dict(),
            "ground_state": (
                gs.to_dict() if gs is not None and gs is not entry.result else None
            ),
            "meta": entry.meta,
        }
        path = self._path(entry.key)
        save_payload(path, payload)
        with self._lock:
            self._disk_index[entry.key] = {
                **entry.meta,
                "has_ground_state": entry.ground_state is not None,
            }
            # The on-disk payload is now the footprint that matters.
            try:
                self._sizes[entry.key] = os.path.getsize(path)
            except OSError:  # pragma: no cover - raced with eviction
                pass
            self._index_version += 1
            version = self._index_version
            snapshot = json.dumps(self._disk_index, indent=0, sort_keys=True)
        self._flush_index(version, snapshot)

    def _flush_index(self, version: int, snapshot: str) -> None:
        """Atomically write one ``index.json`` snapshot (no ``_lock`` held)."""
        index_path = os.path.join(self.directory, _INDEX_NAME)
        with self._io_lock:
            if version <= self._written_version:
                return  # a newer snapshot already reached disk
            self._written_version = version
            tmp = f"{index_path}.{os.getpid()}.{version}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:  # repro-lint: disable=blocking-under-lock -- _io_lock is a leaf lock dedicated to serializing this exact write; nothing else ever blocks on it
                fh.write(snapshot)
            os.replace(tmp, index_path)  # repro-lint: disable=blocking-under-lock -- same leaf-lock exemption: index flushes must serialize, and _io_lock protects only them

    # -- eviction ------------------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-used entries until both bounds hold.

        Victims are selected under ``_lock``; their payload files are
        removed after it is released (readers racing a deletion get a
        clean miss via the ``FileNotFoundError`` guard in :meth:`get`).
        The surviving index is flushed once per eviction sweep, so
        ``index.json`` never names a deleted payload.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        victims: list[str] = []
        snapshot = None
        version = 0
        with self._lock:
            # Never evict the most recently used entry (hence > 1).
            while len(self._lru) > 1:
                over_entries = (
                    self.max_entries is not None
                    and len(self._lru) > self.max_entries
                )
                over_bytes = (
                    self.max_bytes is not None
                    and sum(self._sizes.values()) > self.max_bytes
                )
                if not (over_entries or over_bytes):
                    break
                key, _ = self._lru.popitem(last=False)
                self._entries.pop(key, None)
                self._sizes.pop(key, None)
                if self._disk_index.pop(key, None) is not None:
                    victims.append(key)
                self.evictions += 1
            if victims and self.directory is not None:
                self._index_version += 1
                version = self._index_version
                snapshot = json.dumps(
                    self._disk_index, indent=0, sort_keys=True
                )
        for key in victims:
            try:
                os.remove(self._path(key))
            except FileNotFoundError:  # pragma: no cover - double eviction
                pass
        if snapshot is not None:
            self._flush_index(version, snapshot)

    def _load(self, key: str) -> StoreEntry:
        payload = load_payload(self._path(key))
        classes = _result_classes()
        cls = classes.get(payload.get("class"))
        require(
            cls is not None,
            f"store entry {key} has unknown result class "
            f"{payload.get('class')!r}",
        )
        gs_data = payload.get("ground_state")
        ground_state = (
            classes["GroundState"].from_dict(gs_data)
            if gs_data is not None
            else None
        )
        result = cls.from_dict(payload["data"])
        # An SCF entry's result IS its ground state (written once, see
        # _persist): reunify so a cache hit and a warm start hand out the
        # identical arrays.
        if payload.get("class") == "GroundState" and ground_state is None:
            ground_state = result
        meta = dict(payload.get("meta") or {})
        return StoreEntry(
            key=key, result=result, ground_state=ground_state, meta=meta
        )
