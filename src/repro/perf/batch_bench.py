"""Warm vs cold trajectory benchmark (``repro bench-batch``).

Runs the same perturbed trajectory twice through :func:`repro.batch.
run_batch` — once cold (``warm_start=False``: every frame a standalone
calculation, the status quo before the batch engine) and once warm (full
cross-frame reuse) — and emits ``BENCH_batch.json`` with honest per-frame
accounting:

* wall seconds per frame and per stage (SCF vs LR-TDDFT), cold and warm;
* per-frame SCF / K-Means / Casida-LOBPCG iteration counts, showing the
  *mechanism* of the speedup (iteration collapse), not just the outcome;
* ISDF reselection events under the drift threshold;
* the end-to-end warm-vs-cold throughput ratio, plus equivalence checks:
  the maximum ground-state energy and excitation-energy deviation between
  the two passes (bounded by the SCF tolerance — documented, not hidden),
  and the bit-identity of frame 0 (which receives no warm information, so
  any deviation there would indicate a correctness bug, not a tolerance).

Both passes run in-process back to back on the same workload, so the
comparison shares every process-level cache (FFT plans warm up during the
cold pass — which *helps cold*, making the reported ratio conservative).
``repeats > 1`` runs the whole cold+warm pair several times and reports
the per-pass minimum totals, the standard defence against single-core
timing noise.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

__all__ = ["format_summary", "run_batch_bench", "write_report"]


def _records_payload(result) -> list[dict]:
    return [r.to_dict() for r in result.records]


def _run_pass(frames, config):
    from repro.batch import run_batch

    t0 = time.perf_counter()
    result = run_batch(frames, config)
    seconds = time.perf_counter() - t0
    return result, seconds


def run_batch_bench(
    *,
    smoke: bool = False,
    n_frames: int | None = None,
    amplitude: float = 0.012,
    period: float = 16.0,
    seed: int = 7,
    repeats: int | None = None,
) -> dict:
    """Benchmark warm vs cold batching; returns a JSON-ready dict.

    Smoke mode shrinks the trajectory and basis so the whole thing runs
    in seconds (CI / the perf-regression gate); full mode uses the
    committed-report workload (>= 8 frames at production-ish settings).
    """
    from repro.api import BatchConfig, SCFConfig, TDDFTConfig
    from repro.atoms import silicon_primitive_cell
    from repro.batch import perturbed_trajectory

    if smoke:
        n_frames = 4 if n_frames is None else n_frames
        repeats = 1 if repeats is None else repeats
        scf = SCFConfig(ecut=6.0, n_bands=8, tol=1e-6, seed=0)
        tddft = TDDFTConfig(n_excitations=3, seed=0)
    else:
        n_frames = 10 if n_frames is None else n_frames
        repeats = 3 if repeats is None else repeats
        scf = SCFConfig(ecut=10.0, n_bands=10, tol=1e-6, seed=0)
        tddft = TDDFTConfig(n_excitations=4, seed=0)

    cell = silicon_primitive_cell()
    frames = perturbed_trajectory(
        cell, n_frames, amplitude=amplitude, period=period, seed=seed
    )
    warm_config = BatchConfig(scf=scf, tddft=tddft, warm_start=True)
    cold_config = warm_config.replace(warm_start=False)

    best: dict[str, dict] = {}
    for _ in range(max(1, repeats)):
        for mode, config in (("cold", cold_config), ("warm", warm_config)):
            result, seconds = _run_pass(frames, config)
            if mode not in best or seconds < best[mode]["wall_seconds"]:
                best[mode] = {
                    "wall_seconds": seconds,
                    "result": result,
                }

    cold = best["cold"]["result"]
    warm = best["warm"]["result"]
    cold_s = best["cold"]["wall_seconds"]
    warm_s = best["warm"]["wall_seconds"]

    d_energy = float(np.abs(cold.total_energies - warm.total_energies).max())
    d_excite = float(
        np.abs(cold.excitation_energies - warm.excitation_energies).max()
    )
    frame0_bit_identical = bool(
        cold.records[0].total_energy == warm.records[0].total_energy
        and cold.records[0].excitation_energies
        == warm.records[0].excitation_energies
    )
    reselections = [r.index for r in warm.records if r.isdf_reselected]

    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
            "system": "si2",
            "n_frames": n_frames,
            "amplitude_bohr": amplitude,
            "period_frames": period,
            "trajectory_seed": seed,
            "repeats": repeats,
            "timing": "minimum over repeats (per pass)",
            "scf": scf.to_dict(),
            "tddft": tddft.to_dict(),
            "warm": {
                "density_extrapolation": warm_config.density_extrapolation,
                "isdf_drift_threshold": warm_config.isdf_drift_threshold,
            },
        },
        "cold": {
            "wall_seconds": cold_s,
            "frames": _records_payload(cold),
        },
        "warm": {
            "wall_seconds": warm_s,
            "frames": _records_payload(warm),
        },
        "speedup_end_to_end": cold_s / warm_s,
        "isdf_reselection_frames": sorted(reselections),
        "equivalence": {
            "max_total_energy_delta_ha": d_energy,
            "max_excitation_delta_ha": d_excite,
            "tolerance_bound_ha": 10.0 * scf.tol,
            "within_tolerance": bool(
                d_energy <= 10.0 * scf.tol and d_excite <= 10.0 * scf.tol
            ),
            "frame0_bit_identical": frame0_bit_identical,
        },
    }


def format_summary(report: dict) -> str:
    """Terse human-readable digest of :func:`run_batch_bench` output."""
    meta = report["meta"]
    lines = [
        f"batch bench ({meta['mode']} mode, {meta['n_frames']} frames, "
        f"{meta['cpu_count']} cpu(s), best of {meta['repeats']})",
        "  frame   cold[s]  warm[s]   scf c/w   km c/w  eig c/w  reuse",
    ]
    for c, w in zip(report["cold"]["frames"], report["warm"]["frames"]):
        reuse = "idx" if not w["isdf_reselected"] else "sel"
        lines.append(
            f"  {c['index']:5d}  {c['seconds_scf'] + c['seconds_tddft']:8.3f}"
            f" {w['seconds_scf'] + w['seconds_tddft']:8.3f}"
            f"   {c['scf_iterations']:3d}/{w['scf_iterations']:<3d}"
            f"  {c['kmeans_iterations']:3d}/{w['kmeans_iterations']:<3d}"
            f"  {c['eigensolver_iterations']:3d}/{w['eigensolver_iterations']:<3d}"
            f"   {reuse}"
        )
    eq = report["equivalence"]
    lines.append(
        f"  end-to-end: cold {report['cold']['wall_seconds']:.2f}s, "
        f"warm {report['warm']['wall_seconds']:.2f}s, "
        f"speedup {report['speedup_end_to_end']:.2f}x"
    )
    lines.append(
        f"  equivalence: dE={eq['max_total_energy_delta_ha']:.1e} Ha, "
        f"dW={eq['max_excitation_delta_ha']:.1e} Ha "
        f"(bound {eq['tolerance_bound_ha']:.0e}), "
        f"within={eq['within_tolerance']}, "
        f"frame0_bit_identical={eq['frame0_bit_identical']}"
    )
    return "\n".join(lines)


def write_report(report: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
