"""Weighted K-Means interpolation-point selection (Section 4.2).

The paper's replacement for QRCP: cluster the real-space grid points into
``N_mu`` groups under the weight ``w(r) = (sum_v |psi_v|^2)(sum_c |psi_c|^2)``
(Eq. 14 — the squared row norms of the pair matrix), then take one
representative point per cluster.  Three ingredients the paper calls out:

1. **weight pruning** — ``w`` is numerically sparse for plane-wave systems;
   points below ``prune_threshold * max(w)`` are removed before clustering,
   shrinking the working set from N_r to N_r' << N_r,
2. **weight-aware initialization** — centroids are seeded from
   high-weight points (greedy highest-weight with a minimum-separation
   rule, or weighted k-means++), never uniformly at random,
3. **weighted Lloyd iterations** — assignment by squared Euclidean
   distance (Eq. 12), centroid update by the weighted mean (Eq. 13).

Cost per iteration is ``O(N_mu N_r')`` and the loop is embarrassingly
data-parallel (see :mod:`repro.parallel.parallel_kmeans` for the
distributed version).

Two execution strategies share one code path (``algorithm=``):

* ``"lloyd"`` — the naive full-classification loop: every iteration
  evaluates all ``N_r' x N_mu`` distances (in memory-bounded tiles).
* ``"hamerly"`` (default) — bound-pruned Lloyd: each point carries an
  upper bound on its distance to its assigned centroid and a lower bound
  on the distance to every other centroid, maintained with per-iteration
  centroid drifts.  Points whose bounds prove the assignment cannot change
  skip the ``N_mu``-way classification entirely, collapsing the per-
  iteration cost to ``O(N_active N_mu)`` with ``N_active -> 0`` as the
  clustering converges.  Labels, centroids and inertia are bit-identical
  to ``"lloyd"`` (the bounds only ever *skip provably unchanged* work, and
  the committed distances are evaluated by the same expressions in the
  same order).

Either way the distance matrix is materialized at most one tile at a time
(``tile_bytes``), so the peak working set is bounded regardless of the
candidate count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pair_products import pair_weights
from repro.utils.rng import default_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of weighted K-Means point selection.

    Attributes
    ----------
    indices:
        ``(n_mu,)`` selected grid-point indices into the *full* grid
        (cluster representatives), sorted ascending.
    centroids:
        ``(n_mu, 3)`` final centroid coordinates.
    labels:
        Cluster assignment of every *pruned* candidate point.
    candidate_indices:
        Indices of the pruned candidate set into the full grid.
    inertia:
        Final weighted objective (Eq. 11).
    n_iter:
        Lloyd iterations performed.
    converged:
        Whether assignments stabilized before ``max_iter``.
    """

    indices: np.ndarray
    centroids: np.ndarray
    labels: np.ndarray
    candidate_indices: np.ndarray
    inertia: float
    n_iter: int
    converged: bool


def _pairwise_sq_dists(
    points: np.ndarray,
    centroids: np.ndarray,
    points_sq: np.ndarray | None = None,
) -> np.ndarray:
    """``(n_points, n_centroids)`` squared Euclidean distances.

    Uses the expanded form with clamping (the cross-term trick keeps this a
    GEMM — the classification step the paper identifies as dominant).  All
    updates are in-place on the GEMM output to avoid temporaries, and the
    per-point squared norms can be precomputed once per Lloyd loop.
    """
    if points_sq is None:
        points_sq = np.einsum("ij,ij->i", points, points)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    d2 = points @ centroids.T
    d2 *= -2.0
    d2 += points_sq[:, None]
    d2 += c2[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def _init_greedy_weight(
    points: np.ndarray, weights: np.ndarray, n_mu: int
) -> np.ndarray:
    """Greedy highest-weight seeding with a minimum-separation rule.

    Walk candidates in decreasing weight, accepting a point only if it is
    farther than ``r_min`` from every accepted seed, where ``r_min`` is set
    so ``n_mu`` spheres roughly tile the candidate bounding box.  If the
    separation rule exhausts candidates, it is relaxed geometrically.
    """
    order = np.argsort(weights)[::-1]
    span = np.ptp(points[order[: max(4 * n_mu, 64)]], axis=0)
    volume = float(np.prod(np.where(span > 0, span, 1.0)))
    r_min = 0.5 * (volume / max(n_mu, 1)) ** (1.0 / 3.0)

    while True:
        # Walk candidates in decreasing weight keeping a running distance to
        # the accepted set: O(1) test per candidate, one vectorized update
        # per acceptance.
        chosen: list[int] = []
        min_d2 = np.full(points.shape[0], np.inf)
        threshold = r_min * r_min
        for idx in order:
            if min_d2[idx] >= threshold:
                chosen.append(int(idx))
                if len(chosen) == n_mu:
                    return np.asarray(chosen)
                delta = points - points[idx]
                np.minimum(
                    min_d2, np.einsum("ij,ij->i", delta, delta), out=min_d2
                )
        r_min *= 0.7
        if r_min < 1e-8:
            # Degenerate geometry: just take the top-weight points.
            return order[:n_mu].copy()


def _init_plusplus(
    points: np.ndarray,
    weights: np.ndarray,
    n_mu: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Weighted k-means++ seeding (probability ∝ w(r) * dist^2)."""
    n = points.shape[0]
    chosen = np.empty(n_mu, dtype=np.int64)
    chosen[0] = int(np.argmax(weights))
    d2 = _pairwise_sq_dists(points, points[chosen[:1]])[:, 0]
    for k in range(1, n_mu):
        prob = weights * d2
        total = prob.sum()
        if total <= 0.0:
            # All remaining mass collapsed: pick the farthest point.
            chosen[k] = int(np.argmax(d2))
        else:
            chosen[k] = int(rng.choice(n, p=prob / total))
        d2 = np.minimum(d2, _pairwise_sq_dists(points, points[chosen[k : k + 1]])[:, 0])
    return chosen


#: Default cap on the materialized distance-tile size (bytes of float64).
DEFAULT_TILE_BYTES = 1 << 26  # 64 MiB

#: Relative slack applied to the Hamerly bound test so floating-point
#: rounding in the bound bookkeeping can never unsafely prune a point.
_BOUND_RTOL = 1e-12

#: Enlarged Hamerly slack for fp32 classification: must cover the relative
#: error of a single-precision expanded-form distance (~eps_fp32 * norm
#: scale, with headroom), so the bounds still only skip provably-unchanged
#: points *up to fp32 accuracy* — the fp64 final recheck catches the rest.
_BOUND_RTOL_FP32 = 1e-5


def _assigned_sq_dists(
    points: np.ndarray,
    points_sq: np.ndarray,
    centroids_sq: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
) -> np.ndarray:
    """Clamped squared distance of every point to its assigned centroid.

    Uses the same expanded form as :func:`_pairwise_sq_dists` so the
    committed per-point distances (and hence the inertia) are evaluated
    identically regardless of which points the bound pruning skipped.
    """
    cross = np.einsum("ij,ij->i", points, centroids[labels])
    d2 = points_sq + centroids_sq[labels] - 2.0 * cross
    np.maximum(d2, 0.0, out=d2)
    return d2


def _classify_tiled(
    points: np.ndarray,
    points_sq: np.ndarray,
    centroids: np.ndarray,
    active: np.ndarray | None,
    tile_bytes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nearest/second-nearest classification, one distance tile at a time.

    ``active=None`` classifies every point (the Lloyd path).  Returns
    ``(labels, d2_nearest, d2_second)`` for the classified rows only; the
    ``N x N_mu`` matrix never exists beyond one ``tile_bytes`` tile.
    """
    n_clusters = centroids.shape[0]
    n_rows = points.shape[0] if active is None else active.shape[0]
    labels = np.empty(n_rows, dtype=np.int64)
    d2_near = np.empty(n_rows)
    d2_second = np.empty(n_rows)
    tile_rows = max(1, int(tile_bytes) // (8 * max(n_clusters, 1)))
    for start in range(0, n_rows, tile_rows):
        stop = min(start + tile_rows, n_rows)
        if active is None:
            rows_pts = points[start:stop]
            rows_sq = points_sq[start:stop]
        else:
            idx = active[start:stop]
            rows_pts = points[idx]
            rows_sq = points_sq[idx]
        d2 = _pairwise_sq_dists(rows_pts, centroids, rows_sq)
        lab = np.argmin(d2, axis=1)
        rows = np.arange(stop - start)
        labels[start:stop] = lab
        d2_near[start:stop] = d2[rows, lab]
        if n_clusters > 1:
            d2[rows, lab] = np.inf
            d2_second[start:stop] = d2.min(axis=1)
        else:
            d2_second[start:stop] = np.inf
    return labels, d2_near, d2_second


def classify_points(
    points: np.ndarray,
    centroids: np.ndarray,
    *,
    tile_bytes: int = DEFAULT_TILE_BYTES,
) -> np.ndarray:
    """Nearest-centroid labels for ``points`` (one tiled classification).

    The assignment half of a single Lloyd iteration, exposed for drift
    checks: warm-start consumers compare these labels against the labels
    stored with a previous clustering to decide whether interpolation
    points must be re-selected.
    """
    require(points.ndim == 2, "points must be (n, d)")
    require(centroids.ndim == 2, "centroids must be (k, d)")
    points_sq = np.einsum("ij,ij->i", points, points)
    labels, _, _ = _classify_tiled(points, points_sq, centroids, None, tile_bytes)
    return labels


def weighted_kmeans(
    points: np.ndarray,
    weights: np.ndarray,
    n_clusters: int,
    *,
    init: str = "greedy-weight",
    initial_centroids: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 0.0,
    rng: np.random.Generator | None = None,
    algorithm: str = "hamerly",
    tile_bytes: int = DEFAULT_TILE_BYTES,
    precision=None,
) -> tuple[np.ndarray, np.ndarray, float, int, bool]:
    """Weighted Lloyd iterations (Eqs. 11-13), optionally bound-pruned.

    Returns ``(centroids, labels, inertia, n_iter, converged)``.
    Empty clusters are reseeded at the point with the largest weighted
    distance to its current centroid.

    Parameters
    ----------
    initial_centroids:
        ``(n_clusters, d)`` starting centroids (``init="warm"`` is implied
        when given).  This is the cross-calculation warm start: seeding from
        a nearby converged clustering collapses the iteration count to the
        few steps needed to track the perturbation, and the first iteration
        classifies every point, so the Hamerly bounds are re-seeded
        consistently.
    algorithm:
        ``"hamerly"`` (default) skips the ``N_mu``-way classification for
        points whose distance bounds prove the assignment is unchanged;
        ``"lloyd"`` classifies every point every iteration.  Results are
        bit-identical (see the module docstring).
    tile_bytes:
        Upper bound on the materialized distance-tile size; the full
        ``N x N_mu`` matrix is never allocated at once.
    precision:
        A precision mode string or :class:`repro.precision.PrecisionConfig`.
        With ``kmeans_fp32`` the per-iteration nearest/second-nearest
        classification runs against fp32 copies of points and centroids
        (the GEMM that dominates each iteration at double throughput) with
        an enlarged Hamerly slack; the *committed* per-point distances, the
        inertia and the weighted centroid accumulators stay fp64.  With
        ``kmeans_recheck`` the converged assignment is re-derived in fp64
        and, unless bit-identical, the whole clustering is re-run in fp64
        from the same initial centroids (recorded as a ``kmeans-classify``
        degradation event) — so the returned result is one a pure-fp64 run
        would accept.
    """
    require(points.ndim == 2, "points must be (n, d)")
    n = points.shape[0]
    require(0 < n_clusters <= n, f"n_clusters must be in [1, {n}]")
    weights = np.asarray(weights, dtype=float)
    require(weights.shape == (n,), "weights/points mismatch")
    require((weights >= 0).all(), "weights must be non-negative")
    require(algorithm in ("hamerly", "lloyd"), f"unknown algorithm {algorithm!r}")
    require(tile_bytes > 0, "tile_bytes must be positive")

    from repro.precision import resolve_precision

    precision = resolve_precision(precision)
    fp32 = precision.kmeans_fp32

    rng = rng or default_rng()
    if initial_centroids is not None or init == "warm":
        require(
            initial_centroids is not None,
            "init='warm' needs initial_centroids",
        )
        centroids = np.array(initial_centroids, dtype=float, copy=True)
        require(
            centroids.shape == (n_clusters, points.shape[1]),
            f"initial_centroids must be ({n_clusters}, {points.shape[1]}), "
            f"got {centroids.shape}",
        )
    elif init == "greedy-weight":
        centroids = points[_init_greedy_weight(points, weights, n_clusters)].copy()
    elif init == "plusplus":
        centroids = points[_init_plusplus(points, weights, n_clusters, rng)].copy()
    else:
        raise ValueError(f"unknown init {init!r}")

    initial_for_rerun = centroids.copy() if fp32 else None
    labels = np.full(n, -1, dtype=np.int64)
    inertia = np.inf
    converged = False
    iteration = 0
    points_sq = np.einsum("ij,ij->i", points, points)
    # fp32 classification operands: one cast of the points up front, one
    # 3 x n_clusters cast of the centroids per iteration.  Everything the
    # result depends on directly (committed distances, inertia, centroid
    # accumulation) stays on the fp64 arrays.
    if fp32:
        points_cls = np.asarray(points, dtype=np.float32)
        points_sq_cls = np.einsum("ij,ij->i", points_cls, points_cls)
    else:
        points_cls = points
        points_sq_cls = points_sq
    # Hamerly state: upper[i] bounds dist(point_i, assigned centroid) from
    # above, lower[i] bounds the distance to every *other* centroid from
    # below.  upper <= lower proves the assignment cannot change.
    upper = np.full(n, np.inf)
    lower = np.zeros(n)
    bound_rtol = _BOUND_RTOL_FP32 if fp32 else _BOUND_RTOL
    slack = bound_rtol * (float(np.sqrt(points_sq.max(initial=0.0))) + 1.0)

    for iteration in range(1, max_iter + 1):
        centroids_sq = np.einsum("ij,ij->i", centroids, centroids)
        centroids_cls = (
            centroids.astype(np.float32) if fp32 else centroids
        )
        new_labels = labels.copy()
        if algorithm == "lloyd" or iteration == 1:
            active = None  # classify everything
        else:
            # First filter on the stale bounds, then tighten the surviving
            # upper bounds with one exact distance and filter again — the
            # standard two-stage Hamerly test.
            maybe = np.flatnonzero(upper + slack >= lower)
            if maybe.size:
                d2a = _assigned_sq_dists(
                    points[maybe], points_sq[maybe], centroids_sq,
                    centroids, labels[maybe],
                )
                upper[maybe] = np.sqrt(d2a)
                active = maybe[upper[maybe] + slack >= lower[maybe]]
            else:
                active = maybe

        if active is None:
            lab, d2n, d2s = _classify_tiled(
                points_cls, points_sq_cls, centroids_cls, None, tile_bytes
            )
            new_labels = lab
            np.sqrt(d2n, out=upper)
            np.sqrt(d2s, out=lower)
        elif active.size:
            lab, d2n, d2s = _classify_tiled(
                points_cls, points_sq_cls, centroids_cls, active, tile_bytes
            )
            new_labels[active] = lab
            upper[active] = np.sqrt(d2n)
            lower[active] = np.sqrt(d2s)

        # Committed per-point distances (same expression in both modes, for
        # all points): the weighted objective of Eq. 11.
        min_d2 = _assigned_sq_dists(
            points, points_sq, centroids_sq, centroids, new_labels
        )
        new_inertia = float((weights * min_d2).sum())

        # Weighted centroid update (Eq. 13): one vectorized scatter-add of
        # the (n, dim) weighted coordinates into a (n_clusters, dim) buffer.
        w_sum = np.bincount(new_labels, weights=weights, minlength=n_clusters)
        accum = np.zeros((n_clusters, points.shape[1]))
        np.add.at(accum, new_labels, weights[:, None] * points)
        nonzero = w_sum > 0
        old_centroids = centroids.copy()
        centroids[nonzero] = accum[nonzero] / w_sum[nonzero, None]

        # Reseed empty clusters at the worst-served heavy point.
        empty = np.flatnonzero(w_sum == 0)
        if empty.size:
            penalty = weights * min_d2
            worst = np.argsort(penalty)[::-1]
            for slot, point_idx in zip(empty, worst[: empty.size]):
                centroids[slot] = points[point_idx]

        # Drift update keeps the bounds valid across the centroid motion.
        drift = np.linalg.norm(centroids - old_centroids, axis=1)
        upper += drift[new_labels]
        lower -= drift.max(initial=0.0)

        if np.array_equal(new_labels, labels) or (
            tol > 0.0 and abs(inertia - new_inertia) <= tol * max(inertia, 1e-300)
        ):
            labels = new_labels
            inertia = new_inertia
            converged = True
            break
        labels = new_labels
        inertia = new_inertia

    if fp32 and precision.kmeans_recheck:
        # Bit-identical assignment recheck: re-derive every label in fp64
        # against the converged centroids.  Any mismatch means the fp32
        # classification steered the iteration off the fp64 trajectory, so
        # the whole clustering re-runs in fp64 from the same initial
        # centroids — the returned result is then exactly the strict64 one.
        labels64, _, _ = _classify_tiled(
            points, points_sq, centroids, None, tile_bytes
        )
        if not np.array_equal(labels64, labels):
            from repro.resilience.events import resilience_log

            n_bad = int(np.count_nonzero(labels64 != labels))
            resilience_log().record(
                "kmeans-classify",
                "fallback-fp64",
                f"fp32 classification recheck: {n_bad}/{n} assignments "
                "differ from fp64; re-running clustering in fp64",
                mismatches=n_bad,
                n_points=int(n),
                n_clusters=int(n_clusters),
            )
            return weighted_kmeans(
                points,
                weights,
                n_clusters,
                initial_centroids=initial_for_rerun,
                max_iter=max_iter,
                tol=tol,
                rng=rng,
                algorithm=algorithm,
                tile_bytes=tile_bytes,
            )

    return centroids, labels, inertia, iteration, converged


def select_points_kmeans(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    n_mu: int,
    *,
    grid_points: np.ndarray,
    prune_threshold: float = 1e-6,
    init: str = "greedy-weight",
    initial_centroids: np.ndarray | None = None,
    max_iter: int = 100,
    rng: np.random.Generator | None = None,
    algorithm: str = "hamerly",
    tile_bytes: int = DEFAULT_TILE_BYTES,
    precision=None,
) -> KMeansResult:
    """Full paper recipe: weights -> prune -> weighted K-Means -> points.

    Parameters
    ----------
    psi_v, psi_c:
        Real-space orbital blocks.
    grid_points:
        ``(N_r, 3)`` Cartesian coordinates of the grid
        (:attr:`repro.pw.RealSpaceGrid.cartesian_points`).
    prune_threshold:
        Relative weight cutoff; points with ``w < threshold * max(w)`` are
        excluded from clustering (the paper's low-rank weight observation).
    initial_centroids:
        Warm-start centroids from a previous, nearby selection (see
        :func:`weighted_kmeans`); the pruning and representative-point
        extraction are unchanged.
    precision:
        Forwarded to :func:`weighted_kmeans` (fp32 classification with
        fp64 commits and recheck); the weight evaluation, pruning and
        representative extraction always run in fp64.
    """
    weights_full = pair_weights(psi_v, psi_c)
    w_max = float(weights_full.max())
    require(w_max > 0.0, "pair weights vanish everywhere; orbitals are zero?")

    keep = np.flatnonzero(weights_full >= prune_threshold * w_max)
    if keep.size < n_mu:
        # Pruning was too aggressive for the requested rank: fall back to
        # the n_mu * 4 heaviest points (still deterministic).
        keep = np.argsort(weights_full)[::-1][: max(4 * n_mu, 64)]
        keep = np.sort(keep)
    candidates = grid_points[keep]
    weights = weights_full[keep]

    centroids, labels, inertia, n_iter, converged = weighted_kmeans(
        candidates, weights, n_mu, init=init,
        initial_centroids=initial_centroids, max_iter=max_iter, rng=rng,
        algorithm=algorithm, tile_bytes=tile_bytes, precision=precision,
    )

    # Representative grid point per cluster: the member closest to the
    # centroid (ties broken toward larger weight via stable ordering).
    indices = np.empty(n_mu, dtype=np.int64)
    d2 = _pairwise_sq_dists(candidates, centroids)
    order = np.argsort(weights)[::-1]
    for k in range(n_mu):
        members = np.flatnonzero(labels == k)
        if members.size == 0:
            # Empty cluster survived reseeding: take the heaviest unclaimed
            # candidate as its representative.
            for idx in order:
                if idx not in indices[:k]:
                    members = np.array([idx])
                    break
        best = members[np.argmin(d2[members, k])]
        indices[k] = keep[best]
    indices = np.unique(indices)
    if indices.size < n_mu:
        # Duplicate representatives (possible for overlapping clusters):
        # top up with the heaviest unused candidates.
        used = set(indices.tolist())
        extra = [int(keep[i]) for i in order if int(keep[i]) not in used]
        indices = np.sort(
            np.concatenate([indices, np.asarray(extra[: n_mu - indices.size])])
        ).astype(np.int64)

    return KMeansResult(
        indices=np.sort(indices),
        centroids=centroids,
        labels=labels,
        candidate_indices=keep,
        inertia=inertia,
        n_iter=n_iter,
        converged=converged,
    )
