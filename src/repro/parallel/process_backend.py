"""Process-per-rank SPMD backend: real parallelism, shared-memory slabs.

``spmd_run(..., backend="process")`` runs every virtual rank in its own
forked OS process, so pure-Python sections of a rank program execute
concurrently instead of serializing on the GIL.  The communicator is a
drop-in for the thread backend's — same collectives, same deterministic
rank-ordered combine trees, same fault-injection hook points — so a rank
program produces **bit-identical** results under either backend.

Data movement:

* bulk numpy payloads travel through per-rank :class:`~repro.parallel.shm.SharedSlab`
  outboxes — a sender writes array bytes once, every receiver maps the
  same segment and reads through zero-copy views; only a tiny descriptor
  (generation, offset, shape, dtype) plus any non-array leaves are
  pickled into a fixed metadata board,
* reductions combine *directly from the peers' shared views* between the
  exchange barriers (no intermediate copy at all),
* :meth:`ireduce` contributions go into a grow-only
  :class:`~repro.parallel.shm.SlabArena`, so the owning rank can combine
  them long after the posting ranks moved on — genuine compute/comm
  overlap for the pipelined GEMM+Reduce,
* point-to-point ``send``/``recv`` use one ``multiprocessing.Queue`` per
  ordered rank pair, preserving the thread backend's tag semantics
  (including the fault injector's drop/delay hooks).

Rank programs and their arguments are inherited through ``fork`` — no
pickling of closures — which is why this backend requires a POSIX start
method.  ``sanitize=True`` runs every rank under the cross-process
:class:`~repro.parallel.process_sanitizer.ProcessSpmdSanitizer`, which
keeps its per-rank op records on a shared-memory board and gives this
backend the thread sanitizer's guarantees (matched collectives,
shared-slab write detection, deadlock diagnosis — see
``docs/parallelism.md``).

Failure handling: a rank that raises sets the shared abort event and
breaks the barrier; peers unwind with :class:`SpmdAbort`; every worker
(dying ones included) reports its traffic, fault-injector state and
result through the result queue and reaps its own shared-memory segments
in a ``finally`` block.  The parent then merges traffic/injector state,
re-raises the original exception, and runs :func:`~repro.parallel.shm.reap_run_segments`
as a leak guard of last resort — a rank killed mid-collective leaves no
``/dev/shm`` residue behind.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import struct
import threading
import time
import uuid
from typing import Callable

import numpy as np

from repro.parallel.comm import (
    CommTraffic,
    Communicator,
    ReduceHandle,
    SpmdAbort,
    _nbytes,
)
from repro.parallel import shm
from repro.utils.hot import array_contract
from repro.utils.validation import require

__all__ = ["ProcessCommunicator", "process_spmd_run"]

#: Fixed-size per-rank slot in the metadata board.
_META_SLOT = 64
_META = struct.Struct("<QQQ")  # outbox generation, descriptor offset, length

_ENV_TIMEOUT = "REPRO_SPMD_TIMEOUT"


def _run_timeout(value: float | None) -> float:
    if value is not None:
        return float(value)
    text = os.environ.get(_ENV_TIMEOUT, "").strip()
    return float(text) if text else 120.0


class _ArrayRef:
    """Descriptor placeholder for an array shipped through the outbox."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __getstate__(self) -> int:
        return self.index

    def __setstate__(self, state: int) -> None:
        self.index = state


def _strip_arrays(value, arrays: list):
    """Replace ndarray leaves (top level or inside list/tuple nests) with
    :class:`_ArrayRef` placeholders, collecting the arrays in order.

    Arrays buried inside other objects are left in place and travel with
    the pickled descriptor — correctness first, zero-copy for the common
    shapes the algorithms actually exchange.
    """
    if isinstance(value, np.ndarray) and not value.dtype.hasobject:
        ref = _ArrayRef(len(arrays))
        arrays.append(np.ascontiguousarray(value))
        return ref
    if isinstance(value, (list, tuple)):
        stripped = [_strip_arrays(v, arrays) for v in value]
        return tuple(stripped) if isinstance(value, tuple) else stripped
    return value


class _Runtime:
    """Fork-inherited handles shared by the parent and every worker."""

    def __init__(
        self,
        run_id: str,
        size: int,
        barrier,
        abort_event,
        queues: dict,
        inboxes: list,
        board: shm.SharedSlab,
        timeout: float,
    ) -> None:
        self.run_id = run_id
        self.size = size
        self.barrier = barrier
        self.abort_event = abort_event
        self.queues = queues
        self.inboxes = inboxes
        self.board = board
        self.timeout = timeout


class _ProcessLocalState:
    """Per-process stand-in for the thread backend's ``_SharedState``.

    Exposes the attributes the base :class:`Communicator` methods touch:
    ``size``, ``traffic``, ``queues``, ``fault_injector``, ``sanitizer``
    (a :class:`~repro.parallel.process_sanitizer.ProcessSpmdSanitizer`
    when the run is sanitized, else ``None``) and ``error``.
    """

    def __init__(self, runtime: _Runtime, fault_injector, sanitizer=None) -> None:
        self.size = runtime.size
        self.traffic = CommTraffic()
        self.queues = runtime.queues
        self.fault_injector = fault_injector
        self.sanitizer = sanitizer
        self.error: BaseException | None = None
        self.reduce_board = None  # thread-only; ProcessCommunicator overrides ireduce


class ProcessCommunicator(Communicator):
    """Drop-in :class:`Communicator` whose exchanges run over shared memory."""

    def __init__(
        self,
        rank: int,
        runtime: _Runtime,
        registry: shm.SlabRegistry,
        fault_injector=None,
        sanitizer=None,
    ) -> None:
        super().__init__(rank, _ProcessLocalState(runtime, fault_injector, sanitizer))
        self._runtime = runtime
        self._registry = registry
        self._arena = shm.SlabArena(registry, runtime.run_id, rank, "ird")
        self._outbox: shm.SharedSlab | None = None
        self._outbox_gen = -1
        self._published_local = None
        #: src -> (generation, attached slab) for peers' outboxes.
        self._peer_cache: dict[int, tuple[int, shm.SharedSlab]] = {}
        #: (src, seq) -> pending ireduce descriptor awaiting its wait().
        self._ired_pending: dict[tuple[int, int], tuple] = {}
        self._current_op = "collective"

    # -- hooks ---------------------------------------------------------------

    def _enter(self, op: str, value=None, detail: str = "", track: bool = True) -> None:
        self._current_op = op
        super()._enter(op, value, detail=detail, track=track)

    # -- synchronization -----------------------------------------------------

    def _barrier_wait(self) -> None:
        try:
            self._runtime.barrier.wait(timeout=self._runtime.timeout)
        except threading.BrokenBarrierError:
            raise SpmdAbort(
                f"rank {self._rank}: SPMD run aborted "
                "(another rank failed or timed out)"
            ) from None

    # -- shared-memory exchange ----------------------------------------------

    @array_contract(shapes={"value": "any"})
    def _publish(self, value) -> None:
        """Write ``value`` into this rank's outbox + metadata board slot.

        Array bytes land in the shared slab (zero-copy for readers); the
        structural descriptor and non-array leaves are pickled after
        them.  Reuses the outbox across epochs — the exchange barriers
        guarantee the previous epoch's readers are done.
        """
        arrays: list[np.ndarray] = []
        encoded = _strip_arrays(value, arrays)
        offsets, cursor = [], 0
        for arr in arrays:
            offsets.append(cursor)
            cursor = shm.align(cursor + arr.nbytes)
        metas = [
            (off, arr.shape, arr.dtype.str) for off, arr in zip(offsets, arrays)
        ]
        descriptor = pickle.dumps((encoded, metas), protocol=pickle.HIGHEST_PROTOCOL)
        desc_off = cursor
        total = desc_off + len(descriptor)
        if self._outbox is None or total > self._outbox.size:
            previous = self._outbox
            self._outbox_gen += 1
            name = shm.segment_name(
                self._runtime.run_id, self._rank, "out", self._outbox_gen
            )
            self._outbox = self._registry.create(name, max(1 << 20, 2 * total))
            if previous is not None:
                self._registry.release(previous.name)
        for off, arr in zip(offsets, arrays):
            if arr.nbytes:
                self._outbox.write(arr, off)
        self._outbox.write(descriptor, desc_off)
        _META.pack_into(
            self._runtime.board.buf,
            self._rank * _META_SLOT,
            self._outbox_gen,
            desc_off,
            len(descriptor),
        )
        self._published_local = value
        sanitizer = self._shared.sanitizer
        if sanitizer is not None:
            # Fingerprint the array region just written; rechecked at this
            # rank's next collective entry to catch writes through shared
            # views inside the exchange window.
            sanitizer.on_publish(self._outbox, desc_off)
        self.traffic.record_transport(
            self._current_op,
            shm_bytes=sum(a.nbytes for a in arrays),
            pickled_bytes=len(descriptor),
        )

    # Vacuous contracts on the descriptor/decode pair keep the whole
    # exchange path enrolled in the static pass (and its coverage report)
    # without constraining the duck-typed pickled payloads.
    @array_contract()
    def _peer_descriptor(self, src: int) -> tuple[object, list, shm.SharedSlab]:
        gen, desc_off, desc_len = _META.unpack_from(
            self._runtime.board.buf, src * _META_SLOT
        )
        cached = self._peer_cache.get(src)
        if cached is None or cached[0] != gen:
            if cached is not None:
                self._registry.release(cached[1].name)
            name = shm.segment_name(self._runtime.run_id, src, "out", gen)
            try:
                slab = self._registry.attach(name)
            except FileNotFoundError:
                if self._runtime.abort_event.is_set():
                    raise SpmdAbort(
                        f"rank {self._rank}: peer rank {src} vanished mid-exchange"
                    ) from None
                raise
            self._peer_cache[src] = (gen, slab)
        slab = self._peer_cache[src][1]
        encoded, metas = pickle.loads(bytes(slab.buf[desc_off : desc_off + desc_len]))
        return encoded, metas, slab

    @array_contract()
    def _materialize(self, node, metas, slab, copy: bool, depth: int = 0):
        if isinstance(node, _ArrayRef):
            offset, shape, dtype = metas[node.index]
            view = slab.view(shape, dtype, offset)
            if copy or depth > 0:
                return np.array(view)  # repro-lint: disable=no-alloc-in-hot -- deliberate copy-on-return: detaches results the caller retains past the exchange window from the reusable slab
            view.flags.writeable = False
            return view
        if isinstance(node, (list, tuple)):
            items = [
                self._materialize(v, metas, slab, copy, depth + 1) for v in node
            ]
            return tuple(items) if isinstance(node, tuple) else items
        return node

    def _peer_value(self, src: int, copy: bool):
        """Decode rank ``src``'s published payload.

        With ``copy=False`` a top-level array comes back as a read-only
        zero-copy view, valid until :meth:`_complete` — exactly the
        window the reducing collectives combine in.  The local rank's
        payload is returned by reference (thread-backend semantics).
        """
        if src == self._rank:
            return self._published_local
        encoded, metas, slab = self._peer_descriptor(src)
        return self._materialize(encoded, metas, slab, copy or self.size == 1)

    def _peer_item(self, src: int, index: int, copy: bool = True):
        """Decode only element ``index`` of a sequence payload from ``src``."""
        if src == self._rank:
            return self._published_local[index]
        encoded, metas, slab = self._peer_descriptor(src)
        return self._materialize(encoded[index], metas, slab, copy, depth=1)

    # -- exchange primitives (base collectives build on these) ---------------

    def _post(self, value):
        self._publish(value)
        self._barrier_wait()
        return [self._peer_value(src, copy=False) for src in range(self.size)]

    def _exchange(self, value):
        self._publish(value)
        self._barrier_wait()
        snapshot = [self._peer_value(src, copy=True) for src in range(self.size)]
        self._complete()
        return snapshot

    # -- collectives specialized for selective decoding ----------------------

    def bcast(self, value, root: int = 0):
        """Broadcast from ``root``; only the root's payload is decoded."""
        self._enter("bcast", value, detail=f"root={root}")
        self._publish(value if self._rank == root else None)
        self._barrier_wait()
        result = self._peer_value(root, copy=True)
        self._complete()
        if self._rank == root:
            self.traffic.record("bcast", _nbytes(value) * (self.size - 1))
        return result

    def gather(self, value, root: int = 0):
        self._enter("gather", value, detail=f"root={root}")
        self._publish(value)
        self._barrier_wait()
        snapshot = None
        if self._rank == root:
            snapshot = [self._peer_value(src, copy=True) for src in range(self.size)]
        self._complete()
        if self._rank == root:
            self.traffic.record(
                "gather", sum(_nbytes(v) for i, v in enumerate(snapshot) if i != root)
            )
        return snapshot

    def scatter(self, values, root: int = 0):
        self._enter("scatter", values, detail=f"root={root}")
        if self._rank == root:
            require(
                values is not None and len(values) == self.size,
                f"scatter needs {self.size} values at root",
            )
        self._publish(list(values) if self._rank == root else None)
        self._barrier_wait()
        chunk = self._peer_item(root, self._rank)
        self._complete()
        if self._rank == root:
            self.traffic.record(
                "scatter",
                sum(_nbytes(v) for i, v in enumerate(values) if i != root),
            )
        return chunk

    def alltoall(self, chunks):
        """Personalized all-to-all; each rank decodes only its own tiles."""
        self._enter("alltoall", chunks)
        require(
            len(chunks) == self.size,
            f"alltoall needs {self.size} chunks, got {len(chunks)}",
        )
        self._publish(list(chunks))
        self._barrier_wait()
        received = [self._peer_item(src, self._rank) for src in range(self.size)]
        self._complete()
        moved = sum(
            _nbytes(chunks[d]) for d in range(self.size) if d != self._rank
        )
        self.traffic.record("alltoall", moved)
        return received

    # -- nonblocking reduce --------------------------------------------------

    def ireduce(
        self,
        value: np.ndarray,
        root: int = 0,
        *,
        wire_dtype=None,
    ) -> ReduceHandle:
        """Nonblocking sum-reduce: contribution goes into the grow-only
        arena, a tiny descriptor into the root's inbox queue; the posting
        rank returns immediately (this is where the pipelined GEMM's
        overlap comes from — see :mod:`repro.parallel.pipeline`).

        ``wire_dtype`` (see :meth:`Communicator.ireduce`) casts the
        contribution before it enters the shared-memory arena, so the
        zero-copy byte counters (``traffic.shm_bytes_by_op``) record the
        genuinely halved wire volume; the root accumulates into the
        original dtype with the same rank-ordered expression as the
        thread backend."""
        require(
            isinstance(value, np.ndarray),
            f"ireduce payload must be an ndarray, got {type(value).__name__}",
        )
        self._enter("reduce", value, detail=f"root={root},op=sum,async", track=False)
        value = self._fault_corrupt("reduce", value)
        if wire_dtype is None:
            accumulate = None
            arr = np.ascontiguousarray(value)
        else:
            accumulate = value.dtype
            arr = np.ascontiguousarray(np.asarray(value, dtype=wire_dtype))
        seq = self._ireduce_seq.get(root, 0)
        self._ireduce_seq[root] = seq + 1
        segment, offset = self._arena.write_array(arr)
        self._runtime.inboxes[root].put(
            (self._rank, seq, segment, offset, arr.shape, arr.dtype.str)
        )
        self.traffic.record_transport("reduce", shm_bytes=arr.nbytes)
        if self._rank != root:
            return ReduceHandle(None)
        self.traffic.record("reduce", arr.nbytes * (self.size - 1))
        return ReduceHandle(
            waiter=lambda: self._ireduce_wait(seq, accumulate=accumulate)
        )

    def _ireduce_wait(self, seq: int, accumulate=None) -> np.ndarray:
        """Root side: collect every rank's contribution for ``seq`` from
        the inbox (buffering out-of-order arrivals) and combine them in
        rank order from zero-copy arena views (accumulating into
        ``accumulate`` dtype when the wire dtype was narrowed)."""
        deadline = time.monotonic() + self._runtime.timeout
        inbox = self._runtime.inboxes[self._rank]
        while any(
            (src, seq) not in self._ired_pending for src in range(self.size)
        ):
            if self._runtime.abort_event.is_set():
                raise SpmdAbort(
                    f"rank {self._rank}: ireduce aborted (another rank failed)"
                )
            if time.monotonic() > deadline:
                raise SpmdAbort(
                    f"rank {self._rank}: ireduce contributions for seq {seq} "
                    f"did not arrive within {self._runtime.timeout:g}s"
                )
            try:
                src, got_seq, segment, offset, shape, dtype = inbox.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            self._ired_pending[(src, got_seq)] = (segment, offset, shape, dtype)
        views = []
        for src in range(self.size):
            segment, offset, shape, dtype = self._ired_pending.pop((src, seq))
            slab = self._registry.attach(segment)
            view = slab.view(shape, dtype, offset)
            view.flags.writeable = False
            views.append(view)
        if accumulate is not None:
            # astype copies, so the result is already detached from shm.
            return self._combine_sum_accumulate(views, accumulate)
        result = self._combine(views, "sum")
        if self.size == 1:  # combine returned the lone view itself: detach
            result = np.array(result)
        return result

    # -- lifecycle -----------------------------------------------------------

    def _shutdown(self) -> None:
        """Close every attachment and unlink owned segments (idempotent)."""
        self._peer_cache.clear()
        self._outbox = None
        self._registry.cleanup()


# -- executor ----------------------------------------------------------------


def _encode_error(exc: BaseException) -> tuple:
    try:
        return ("pickle", pickle.dumps(exc))
    except Exception:  # repro-lint: disable=no-blind-except -- any pickling failure must degrade to repr, never mask the original error
        return ("repr", (type(exc).__name__, str(exc)))


def _decode_error(payload: tuple) -> BaseException:
    kind, data = payload
    if kind == "pickle":
        try:
            return pickle.loads(data)
        except Exception:  # repro-lint: disable=no-blind-except -- a truncated/unimportable pickle falls through to the repr form
            pass
        name, text = "<unpicklable>", repr(data[:80])
    else:
        name, text = data
    return RuntimeError(f"rank program failed with {name}: {text}")


def process_spmd_run(
    n_ranks: int,
    fn: Callable[..., object],
    *args,
    return_traffic: bool = False,
    fault_injector=None,
    timeout: float | None = None,
    sanitize: bool = False,
    sanitize_timeout: float | None = None,
):
    """Execute ``fn(comm, *args)`` on ``n_ranks`` forked OS processes.

    Drop-in for the thread backend's ``spmd_run`` (same results, same
    logical traffic totals); see the module docstring for the transport.
    Called through ``spmd_run(..., backend="process")``.
    """
    require(n_ranks >= 1, f"need at least one rank, got {n_ranks}")
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        raise RuntimeError(
            "the process SPMD backend requires the 'fork' start method "
            "(POSIX); use backend='thread' on this platform"
        ) from None
    run_id = uuid.uuid4().hex[:10]
    timeout = _run_timeout(timeout)
    barrier = ctx.Barrier(n_ranks)
    abort_event = ctx.Event()
    queues = {
        (src, dst): ctx.Queue()
        for src in range(n_ranks)
        for dst in range(n_ranks)
    }
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    results_queue = ctx.Queue()
    board = shm.SharedSlab.create(
        shm.segment_name(run_id, 0, "board"), n_ranks * _META_SLOT
    )
    sanitizer = None
    san_board = None
    if sanitize:
        from repro.parallel.process_sanitizer import (
            ProcessSpmdSanitizer,
            sanitizer_board_size,
        )

        san_board = shm.SharedSlab.create(
            shm.segment_name(run_id, 0, "san"), sanitizer_board_size(n_ranks)
        )
        sanitizer = ProcessSpmdSanitizer(
            n_ranks,
            san_board,
            ctx.Barrier(n_ranks),
            abort_event,
            timeout=sanitize_timeout,
        )
    runtime = _Runtime(
        run_id, n_ranks, barrier, abort_event, queues, inboxes, board, timeout
    )
    injector_base = fault_injector.state() if fault_injector is not None else None

    def worker(rank: int) -> None:
        registry = shm.SlabRegistry()
        comm = ProcessCommunicator(rank, runtime, registry, fault_injector, sanitizer)
        status, payload = "ok", None
        try:
            payload = fn(comm, *args)
            if sanitizer is not None:
                sanitizer.rank_done(rank)
        except SpmdAbort:
            status = "abort"  # secondary failure; the original is reported by its rank
        except BaseException as exc:  # repro-lint: disable=no-blind-except -- the worker must capture every failure to abort peers; the parent re-raises it
            status, payload = "error", _encode_error(exc)
            abort_event.set()
            barrier.abort()
            if sanitizer is not None:
                sanitizer.abort()
        # Final rendezvous: peers may still be reading this rank's arena
        # (ireduce) — do not unlink before everyone is done.  A broken
        # barrier just means the run is aborting; fall through to cleanup.
        try:
            barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            pass
        try:
            results_queue.put(
                {
                    "rank": rank,
                    "status": status,
                    "payload": payload,
                    "traffic": comm.traffic,
                    "injector": (
                        fault_injector.state() if fault_injector is not None else None
                    ),
                }
            )
            results_queue.close()
            results_queue.join_thread()
        finally:
            # Unread p2p items must not wedge interpreter shutdown.
            for q in list(queues.values()) + inboxes:
                q.cancel_join_thread()
            comm._shutdown()

    workers = [
        ctx.Process(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(n_ranks)
    ]
    reports: dict[int, dict] = {}
    try:
        for proc in workers:
            proc.start()
        deadline = time.monotonic() + timeout + 30.0
        while len(reports) < n_ranks:
            try:
                report = results_queue.get(timeout=1.0)
                reports[report["rank"]] = report
                continue
            except queue_mod.Empty:
                pass
            if time.monotonic() > deadline or not any(
                p.is_alive() for p in workers
            ):
                break
        for proc in workers:
            proc.join(timeout=10.0)
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        board.close()
        board.unlink()
        if san_board is not None:
            san_board.close()
            san_board.unlink()
        shm.reap_run_segments(run_id)  # leak guard: nothing survives the run
        for q in list(queues.values()) + inboxes + [results_queue]:
            q.cancel_join_thread()
            q.close()

    traffic = CommTraffic()
    for rank in range(n_ranks):
        report = reports.get(rank)
        if report is not None and report["traffic"] is not None:
            traffic.merge(report["traffic"])
        if (
            fault_injector is not None
            and report is not None
            and report["injector"] is not None
        ):
            fault_injector.merge_child_state(injector_base, report["injector"])

    for rank in range(n_ranks):
        report = reports.get(rank)
        if report is not None and report["status"] == "error":
            raise _decode_error(report["payload"])
    missing = [rank for rank in range(n_ranks) if rank not in reports]
    if missing:
        codes = {p.name: p.exitcode for p in workers}
        raise RuntimeError(
            f"SPMD ranks {missing} died without reporting a result "
            f"(exit codes: {codes}); shared segments were reaped"
        )

    results = [reports[rank]["payload"] for rank in range(n_ranks)]
    if return_traffic:
        return results, traffic
    return results
