"""Whole-program lint rules over the call graph and flow analyses.

Three rule families, each closing a hole the per-file rules in
:mod:`repro.lint.rules` cannot see:

* ``transitive-collective-in-branch`` — a collective hidden one or more
  calls deep inside a rank-dependent branch deadlocks exactly like a
  lexically visible one; the per-file rule only sees the latter.
* ``impure-cache-key`` — everything reachable from
  ``CalculationRequest.to_dict``/``canonical_json``/``cache_key`` must be
  bit-deterministic, or the content-addressed store in ``repro.serve``
  aliases distinct calculations / misses identical ones.
* ``lock-order-cycle`` / ``blocking-under-lock`` — the static lock graph
  of the serving layer: conflicting acquisition orders, re-acquiring a
  non-reentrant lock, and blocking operations (``join``, ``wait``,
  collectives, disk I/O, timed queue gets) while holding an unrelated
  lock.

Worked example findings live in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.engine import (
    Finding,
    ProjectRule,
    SourceModule,
    dotted_name,
    register_project_rule,
)
from repro.lint.flow import (
    LockAnalysis,
    collective_reachability,
    describe_chain,
    expr_is_rank_dependent,
    rank_tainted_names,
    reachable_with_paths,
)
from repro.lint.rules import _COLLECTIVES, _NUMPY_ALIASES, _SEEDED_RNG_FACTORIES

__all__ = [
    "BlockingUnderLock",
    "ImpureCacheKey",
    "LockOrderCycle",
    "TransitiveCollectiveInBranch",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEFERRED_NODES = (*_FUNC_NODES, ast.Lambda)


def _walk_executed(roots: Sequence[ast.AST] | ast.AST) -> Iterator[ast.AST]:
    """Walk nodes that *execute* when the roots do: skips the bodies of
    nested defs/lambdas (they only run when later called)."""
    stack = list(roots) if isinstance(roots, list) else [roots]
    while stack:
        node = stack.pop()
        if isinstance(node, _DEFERRED_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# transitive-collective-in-branch
# ---------------------------------------------------------------------------


@register_project_rule
class TransitiveCollectiveInBranch(ProjectRule):
    """Rank-guarded helper calls that *transitively* enter a collective.

    The per-file ``collective-in-branch`` rule flags collectives lexically
    inside a rank branch; this rule follows resolved call edges, so
    ``if rank == 0: finalize()`` is flagged when ``finalize`` (or anything
    it calls) enters a collective the other arm never reaches.  Branch
    tests count as rank-dependent through local dataflow too
    (``color = rank % 2; if color: ...``).
    """

    name = "transitive-collective-in-branch"
    description = "collective reachable through calls from a rank-dependent branch"

    def check(
        self, project: Project, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        reach = collective_reachability(project)
        for uid, info in list(project.functions.items()):
            calls_by_id: dict[int, list[str]] = {}
            for edge in project.edges_from.get(uid, []):
                if edge.kind == "call" and isinstance(edge.node, ast.Call):
                    calls_by_id.setdefault(id(edge.node), []).append(edge.callee)
            if not calls_by_id:
                continue
            tainted = rank_tainted_names(project, info)
            for node in project.scope_nodes(info):
                if isinstance(node, (ast.If, ast.IfExp)) and expr_is_rank_dependent(
                    node.test, tainted
                ):
                    yield from self._check_branch(
                        info, node, calls_by_id, reach
                    )
                elif isinstance(node, ast.While) and expr_is_rank_dependent(
                    node.test, tainted
                ):
                    yield from self._check_loop(info, node, calls_by_id, reach)

    def _arm_ops(
        self,
        arm: Sequence[ast.AST] | ast.AST,
        calls_by_id: dict[int, list[str]],
        reach: dict[str, dict[str, tuple[str, ...]]],
    ) -> tuple[set[str], dict[str, tuple[ast.Call, tuple[str, ...]]]]:
        """(direct ops, transitive op -> (call site, witness chain))."""
        direct: set[str] = set()
        transitive: dict[str, tuple[ast.Call, tuple[str, ...]]] = {}
        for node in _walk_executed(list(arm) if isinstance(arm, list) else arm):
            if not isinstance(node, ast.Call):
                continue
            leaf = dotted_name(node.func).rpartition(".")[2]
            if leaf in _COLLECTIVES:
                direct.add(leaf)
            for callee in calls_by_id.get(id(node), ()):
                for op, chain in reach.get(callee, {}).items():
                    transitive.setdefault(op, (node, chain))
        return direct, transitive

    def _check_branch(
        self,
        info: FunctionInfo,
        node: ast.If | ast.IfExp,
        calls_by_id: dict[int, list[str]],
        reach: dict[str, dict[str, tuple[str, ...]]],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.If):
            body: Sequence[ast.AST] | ast.AST = node.body
            orelse: Sequence[ast.AST] | ast.AST = node.orelse
        else:
            body, orelse = node.body, node.orelse
        body_direct, body_trans = self._arm_ops(body, calls_by_id, reach)
        else_direct, else_trans = self._arm_ops(orelse, calls_by_id, reach)
        for mine_direct, mine_trans, other_direct, other_trans in (
            (body_direct, body_trans, else_direct, else_trans),
            (else_direct, else_trans, body_direct, body_trans),
        ):
            for op, (call, chain) in mine_trans.items():
                if op in mine_direct:
                    continue  # the per-file rule already owns direct calls
                if op in other_direct or op in other_trans:
                    continue
                yield self.finding_at(
                    info.path,
                    call,
                    f"collective {op!r} is reachable from this rank-dependent "
                    f"branch via {describe_chain(chain)} with no matching "
                    "call on the other arm — ranks taking the other path "
                    "will deadlock",
                )

    def _check_loop(
        self,
        info: FunctionInfo,
        node: ast.While,
        calls_by_id: dict[int, list[str]],
        reach: dict[str, dict[str, tuple[str, ...]]],
    ) -> Iterator[Finding]:
        direct, transitive = self._arm_ops(node.body, calls_by_id, reach)
        for op, (call, chain) in transitive.items():
            if op in direct:
                continue
            yield self.finding_at(
                info.path,
                call,
                f"collective {op!r} is reachable via {describe_chain(chain)} "
                "inside a while loop whose condition depends on the rank — "
                "iteration counts can differ across ranks and desynchronize "
                "the collective schedule",
            )


# ---------------------------------------------------------------------------
# impure-cache-key
# ---------------------------------------------------------------------------

#: the request-serialization entry points whose closure must be pure.
_PURITY_ROOTS = (
    "CalculationRequest.to_dict",
    "CalculationRequest.canonical_json",
    "CalculationRequest.cache_key",
)
_IMPURE_OS_LEAVES = frozenset(
    {"getenv", "getpid", "urandom", "listdir", "uname", "getcwd"}
)
_IMPURE_UUID_LEAVES = frozenset({"uuid1", "uuid4"})
_DATETIME_NOW_LEAVES = frozenset({"now", "utcnow", "today"})


@register_project_rule
class ImpureCacheKey(ProjectRule):
    """Nothing nondeterministic may feed the content-addressed cache key.

    ``CalculationRequest.canonical_json`` is sha256-hashed into the key
    the entire ``repro.serve`` reuse hierarchy trusts: a ``time.time()``
    or hash-order set iteration anywhere in its call closure makes
    identical calculations miss the cache — or worse, lets distinct ones
    alias after an interpreter restart (``PYTHONHASHSEED``).  The rule
    walks everything reachable from the serialization roots over *both*
    call and reference edges (soundness over precision) and flags
    wall-clock reads, RNG draws, environment/PID reads, locale-dependent
    formatting, ``hash()``/``id()``, and iteration over sets.
    """

    name = "impure-cache-key"
    description = "nondeterministic construct reachable from the cache key"

    def check(
        self, project: Project, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        roots = [
            fn.uid
            for suffix in _PURITY_ROOTS
            for fn in project.find_functions(suffix)
        ]
        if not roots:
            return
        chains = reachable_with_paths(project, roots, kinds=("call", "ref"))
        for uid, chain in chains.items():
            info = project.functions.get(uid)
            if info is None:
                continue
            for node, desc in self._impure_constructs(project, info):
                yield self.finding_at(
                    info.path,
                    node,
                    f"{desc} in {info.qualname!r} is reachable from the "
                    f"cache key ({describe_chain(chain)}); request "
                    "serialization must be bit-deterministic",
                )

    def _impure_constructs(
        self, project: Project, info: FunctionInfo
    ) -> Iterator[tuple[ast.AST, str]]:
        for node in project.scope_nodes(info):
            if isinstance(node, ast.Call):
                desc = self._impure_call(dotted_name(node.func))
                if desc:
                    yield node, desc
            elif isinstance(node, ast.Attribute):
                if dotted_name(node) == "os.environ":
                    yield node, "os.environ read"
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if self._is_set_expr(target):
                    yield target, "iteration over a set (hash order)"

    @staticmethod
    def _is_set_expr(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and dotted_name(expr.func) in ("set", "frozenset")
        )

    @staticmethod
    def _impure_call(name: str) -> str | None:
        if not name:
            return None
        parts = name.split(".")
        head, _, leaf = name.rpartition(".")
        if parts[0] == "time":
            return f"wall-clock read {name}()"
        if leaf in _DATETIME_NOW_LEAVES and (
            "datetime" in parts or "date" in parts
        ):
            return f"wall-clock read {name}()"
        if parts[0] == "random":
            return f"RNG draw {name}()"
        if (
            parts[0] in _NUMPY_ALIASES
            and "random" in parts
            and leaf not in _SEEDED_RNG_FACTORIES
        ):
            return f"unseeded RNG draw {name}()"
        if parts[0] == "secrets":
            return f"RNG draw {name}()"
        if leaf in _IMPURE_UUID_LEAVES:
            return f"UUID generation {name}()"
        if parts[0] == "os" and leaf in _IMPURE_OS_LEAVES:
            return f"environment read {name}()"
        if name in ("hash", "id"):
            return f"per-process builtin {name}()"
        if parts[0] == "locale":
            return f"locale-dependent {name}()"
        if leaf == "strftime":
            return f"locale-dependent formatting {name}()"
        return None


# ---------------------------------------------------------------------------
# lock-order-cycle / blocking-under-lock
# ---------------------------------------------------------------------------


@register_project_rule
class LockOrderCycle(ProjectRule):
    """Conflicting lock-acquisition orders deadlock under contention.

    From the static lock graph (see :class:`repro.lint.flow.LockAnalysis`):
    if one code path acquires A then B while another acquires B then A —
    directly or through resolved calls — two threads can each hold one
    lock and wait forever for the other.  Re-acquiring a non-reentrant
    ``Lock`` already held deadlocks unconditionally and is flagged too.
    """

    name = "lock-order-cycle"
    description = "cyclic lock-acquisition order or non-reentrant re-acquire"

    def check(
        self, project: Project, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        analysis = LockAnalysis(project)
        for cycle in analysis.cycles():
            edges = [
                (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
            ]
            witnesses = [analysis.edge_witness(src, dst) for src, dst in edges]
            anchor = next((w for w in witnesses if w is not None), None)
            if anchor is None:
                continue
            order = " -> ".join((*cycle, cycle[0]))
            sites = "; ".join(
                f"{src} -> {dst} at {w.path}:{w.line}"
                for (src, dst), w in zip(edges, witnesses)
                if w is not None
            )
            yield Finding(
                rule=self.name,
                path=anchor.path,
                line=anchor.line,
                col=1,
                message=(
                    f"locks are acquired in a cyclic order {order} ({sites}); "
                    "pick one global order and stick to it"
                ),
            )
        seen: set[tuple[str, str, int]] = set()
        for lock_id, fn_uid, path, line in analysis.self_deadlocks:
            key = (lock_id, path, line)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                rule=self.name,
                path=path,
                line=line,
                col=1,
                message=(
                    f"non-reentrant lock {lock_id} is acquired while already "
                    f"held (in {fn_uid.rpartition(':')[2]}) — this "
                    "self-deadlocks; use an RLock or restructure"
                ),
            )


@register_project_rule
class BlockingUnderLock(ProjectRule):
    """Blocking while holding a lock serializes — or deadlocks — the server.

    ``join``/``wait``/collectives/disk I/O/timed queue gets made while a
    lock is held stall every other thread contending for it; the only
    exempt shape is the classic monitor pattern, ``cond.wait()`` while
    holding exactly the lock the condition releases.  Facts propagate
    through resolved calls, so ``with self._lock: self.store.put(...)``
    is flagged when ``put`` does disk I/O anywhere inside.  Call sites
    pinning a callee's ``timeout`` parameter to literal ``0`` (the
    non-blocking drain idiom) are exempt.
    """

    name = "blocking-under-lock"
    description = "blocking operation while holding a lock"

    def check(
        self, project: Project, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        analysis = LockAnalysis(project)
        seen: set[tuple[str, int, str, tuple[str, ...]]] = set()
        for item in analysis.held_blocking:
            key = (item.path, item.line, item.fact.desc, item.held)
            if key in seen:
                continue
            seen.add(key)
            held = ", ".join(item.held)
            origin = (
                ""
                if len(item.fact.chain) <= 1
                else f" (via {describe_chain(item.fact.chain)} at "
                f"{item.fact.path}:{item.fact.line})"
            )
            yield Finding(
                rule=self.name,
                path=item.path,
                line=item.line,
                col=1,
                message=(
                    f"blocking {item.fact.desc} while holding {held}"
                    f"{origin}; release the lock first or make the slow "
                    "work lock-free"
                ),
            )
