"""Band-distributed RT-TDDFT must reproduce the serial propagation."""

import numpy as np
import pytest

from repro.parallel import BlockDistribution1D, spmd_run
from repro.parallel.parallel_rt import distributed_rt_propagate
from repro.rt import RealTimeTDDFT


@pytest.fixture(scope="module")
def serial_reference(water_ground_state):
    rt = RealTimeTDDFT(water_ground_state, self_consistent=True)
    rt.kick(1e-3)
    # etrs=False matches the distributed propagator's plain stepping.
    return rt.propagate(dt=0.2, n_steps=12, etrs=False)


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_matches_serial(water_ground_state, serial_reference, n_ranks):
    def prog(comm):
        res = distributed_rt_propagate(
            comm, water_ground_state,
            kick_strength=1e-3, dt=0.2, n_steps=12,
        )
        return res.dipoles, res.norms

    for dipoles, norms in spmd_run(n_ranks, prog):
        np.testing.assert_allclose(
            dipoles, serial_reference.dipoles, atol=1e-9
        )
        np.testing.assert_allclose(norms, serial_reference.norms, atol=1e-10)


def test_results_replicated_across_ranks(water_ground_state):
    def prog(comm):
        res = distributed_rt_propagate(
            comm, water_ground_state,
            kick_strength=1e-3, dt=0.2, n_steps=5,
        )
        return res.dipole_along_kick()

    results = spmd_run(3, prog)
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


def test_norm_conserved(water_ground_state):
    def prog(comm):
        res = distributed_rt_propagate(
            comm, water_ground_state,
            kick_strength=2e-3, dt=0.2, n_steps=10,
        )
        return abs(res.norms[-1] - res.norms[0])

    drifts = spmd_run(2, prog)
    assert max(drifts) < 1e-9


def test_density_allreduce_per_step(water_ground_state):
    """Traffic check: one N_r density Allreduce per step (plus observables
    and setup) — band parallelism is cheap."""
    n_steps = 6

    def prog(comm):
        distributed_rt_propagate(
            comm, water_ground_state,
            kick_strength=1e-3, dt=0.2, n_steps=n_steps,
        )

    _, traffic = spmd_run(2, prog, return_traffic=True)
    n_r = water_ground_state.basis.n_r
    density_bytes = 8 * n_r
    # setup density + per-step density + per-step/initial observables.
    calls = traffic.calls_by_op["allreduce"]
    assert calls >= n_steps + 1
    assert traffic.bytes_by_op["allreduce"] < (n_steps + 2) * 2 * density_bytes * 2 * 2
