"""Reciprocal-space (G-vector) machinery.

For an FFT grid of shape ``(n1, n2, n3)`` over a cell with reciprocal
vectors ``b_i``, every grid frequency ``m = (m1, m2, m3)`` (numpy fftfreq
ordering) carries the plane wave ``exp(i G . r)`` with ``G = m1 b1 + m2 b2 +
m3 b3``.  Wavefunctions live on the sphere ``|G|^2 / 2 <= E_cut``; densities
and potentials use the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.pw.cell import UnitCell
from repro.pw.grid import RealSpaceGrid


def fft_integer_frequencies(n: int) -> np.ndarray:
    """Integer FFT frequencies ``0, 1, ..., -1`` matching numpy's layout."""
    return np.rint(np.fft.fftfreq(n) * n).astype(np.int64)


@dataclass(frozen=True)
class GVectors:
    """All G-vectors of an FFT grid plus the cutoff sphere.

    Attributes are flat over the grid in C order, matching
    :meth:`repro.pw.grid.RealSpaceGrid.fractional_points`.
    """

    grid: RealSpaceGrid
    ecut: float

    @property
    def cell(self) -> UnitCell:
        return self.grid.cell

    @cached_property
    def miller(self) -> np.ndarray:
        """``(N_r, 3)`` integer Miller indices in FFT ordering."""
        n1, n2, n3 = self.grid.shape
        m1 = fft_integer_frequencies(n1)
        m2 = fft_integer_frequencies(n2)
        m3 = fft_integer_frequencies(n3)
        mesh = np.stack(np.meshgrid(m1, m2, m3, indexing="ij"), axis=-1)
        return mesh.reshape(-1, 3)

    @cached_property
    def g(self) -> np.ndarray:
        """``(N_r, 3)`` Cartesian G-vectors in Bohr^-1."""
        return self.miller @ self.cell.reciprocal_lattice

    @cached_property
    def g2(self) -> np.ndarray:
        """``(N_r,)`` squared norms |G|^2."""
        return np.einsum("ij,ij->i", self.g, self.g)

    @cached_property
    def sphere(self) -> np.ndarray:
        """Indices (into the flat grid) of the sphere |G|^2/2 <= E_cut.

        Sorted by |G|^2 then lexicographically by Miller index so the basis
        ordering is deterministic across runs and platforms.
        """
        mask = self.g2 <= 2.0 * self.ecut + 1e-12
        idx = np.flatnonzero(mask)
        m = self.miller[idx]
        order = np.lexsort((m[:, 2], m[:, 1], m[:, 0], np.round(self.g2[idx], 10)))
        return idx[order]

    @property
    def n_pw(self) -> int:
        """Number of plane waves N_pw in the cutoff sphere."""
        return int(self.sphere.size)

    @cached_property
    def g2_sphere(self) -> np.ndarray:
        """|G|^2 restricted to the sphere (kinetic-energy diagonal x2)."""
        return self.g2[self.sphere]

    @cached_property
    def g_sphere(self) -> np.ndarray:
        """``(N_pw, 3)`` Cartesian G-vectors of the sphere."""
        return self.g[self.sphere]

    def structure_factor(self, fractional_position: np.ndarray) -> np.ndarray:
        """``exp(-i G . tau)`` over the full grid for one atom at ``tau``."""
        phase = self.miller @ np.asarray(fractional_position, dtype=float)
        return np.exp(-2j * np.pi * phase)

    def structure_factor_sphere(self, fractional_position: np.ndarray) -> np.ndarray:
        """``exp(-i G . tau)`` restricted to the cutoff sphere."""
        m = self.miller[self.sphere]
        phase = m @ np.asarray(fractional_position, dtype=float)
        return np.exp(-2j * np.pi * phase)
