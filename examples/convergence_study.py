#!/usr/bin/env python
"""Convergence study: the knobs that control LR-TDDFT accuracy.

Three sweeps on bulk silicon, each isolating one approximation layer:

1. **E_cut** — basis-set convergence of the KS gap and first excitation,
2. **N_c** — conduction-space truncation of the Casida problem,
3. **N_mu** — ISDF rank (the paper's c in N_mu = c N_e), using the saved
   ground state so only the cheap part re-runs.

Also demonstrates ground-state persistence (save once, sweep many).

    python examples/convergence_study.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import LRTDDFTSolver, run_scf, silicon_primitive_cell
from repro.constants import HARTREE_TO_EV
from repro.dft import load_ground_state, save_ground_state


def sweep_ecut() -> None:
    print("=== 1. Basis-set convergence (E_cut sweep) ===")
    print(f"{'Ecut (Ha)':>10s} {'N_pw':>7s} {'KS gap (eV)':>12s} "
          f"{'E_1 (eV)':>10s} {'SCF (s)':>8s}")
    cell = silicon_primitive_cell()
    for ecut in (6.0, 8.0, 10.0, 12.0, 14.0):
        t0 = time.perf_counter()
        gs = run_scf(cell, ecut=ecut, n_bands=10, tol=1e-7, seed=0)
        solver = LRTDDFTSolver(gs, seed=0)
        e1 = solver.solve("naive", n_excitations=1).energies[0]
        print(f"{ecut:10.1f} {gs.basis.n_pw:7d} "
              f"{gs.homo_lumo_gap() * HARTREE_TO_EV:12.4f} "
              f"{e1 * HARTREE_TO_EV:10.4f} {time.perf_counter() - t0:8.2f}")


def sweep_conduction() -> None:
    print("\n=== 2. Conduction-space truncation (N_c sweep) ===")
    cell = silicon_primitive_cell()
    gs = run_scf(cell, ecut=10.0, n_bands=20, tol=1e-8, seed=0)
    print(f"{'N_c':>5s} {'N_cv':>6s} {'E_1 (eV)':>10s} {'E_2 (eV)':>10s}")
    for n_c in (2, 4, 8, 12, 16):
        solver = LRTDDFTSolver(gs, n_conduction=n_c, seed=0)
        res = solver.solve("naive", n_excitations=2)
        print(f"{n_c:5d} {solver.n_pairs:6d} "
              f"{res.energies[0] * HARTREE_TO_EV:10.4f} "
              f"{res.energies[1] * HARTREE_TO_EV:10.4f}")
    print("(E_1 drifts down as the space opens — why Table 5 quotes its N_c)")


def sweep_rank() -> None:
    print("\n=== 3. ISDF rank (N_mu sweep on a saved ground state) ===")
    cell = silicon_primitive_cell()
    gs = run_scf(cell, ecut=10.0, n_bands=12, tol=1e-8, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_ground_state(gs, f"{tmp}/si2")
        print(f"ground state saved to {path.name} "
              f"({path.stat().st_size / 1e6:.1f} MB); sweeping rank...")
        gs = load_ground_state(path)
        solver = LRTDDFTSolver(gs, seed=0)
        reference = solver.solve("naive", n_excitations=3)
        print(f"{'N_mu/N_cv':>10s} {'N_mu':>6s} {'max rel err':>12s}")
        for fraction in (0.3, 0.5, 0.7, 0.9, 1.0):
            n_mu = max(4, int(fraction * solver.n_pairs))
            res = solver.solve(
                "implicit-kmeans-isdf-lobpcg",
                n_excitations=3, n_mu=n_mu, tol=1e-10,
            )
            err = np.abs(
                (res.energies - reference.energies[:3]) / reference.energies[:3]
            ).max()
            print(f"{fraction:10.2f} {n_mu:6d} {err:12.2e}")


if __name__ == "__main__":
    sweep_ecut()
    sweep_conduction()
    sweep_rank()
