#!/usr/bin/env python
"""Real-time vs linear-response TDDFT: two routes, one spectrum.

The paper's introduction describes the two ways to solve time-dependent
DFT: real-time propagation (RT-TDDFT) and the frequency-domain linear
response it implements (LR-TDDFT).  This example runs *both* on the same
H2 molecule and shows the punchline twice over:

1. physics — the RT dipole spectrum peaks where the full-Casida (Eq. 1)
   excitation energies sit;
2. cost — RT needs thousands of Hamiltonian applications to resolve one
   peak, LR one (implicit) eigensolve: the reason LR + low-rank wins for
   excited-state tables.

Runtime: ~1 minute.

    python examples/rt_vs_lr.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import LRTDDFTSolver, run_scf
from repro.constants import HARTREE_TO_EV
from repro.core import oscillator_strengths, transition_dipoles
from repro.pw import UnitCell
from repro.rt import RealTimeTDDFT, dipole_spectrum, find_peaks


def h2_cell(box: float = 12.0, bond: float = 1.4) -> UnitCell:
    return UnitCell(
        box * np.eye(3),
        ("H", "H"),
        np.array(
            [[0.5, 0.5, 0.5 - bond / 2 / box], [0.5, 0.5, 0.5 + bond / 2 / box]]
        ),
    )


def main() -> None:
    print("=== Ground state: H2 ===")
    gs = run_scf(h2_cell(), ecut=10.0, n_bands=24, tol=1e-8, seed=0)
    print(f"KS gap {gs.homo_lumo_gap() * HARTREE_TO_EV:.2f} eV")

    print("\n=== Route 1: LR-TDDFT (full Casida, implicit ISDF solver) ===")
    solver = LRTDDFTSolver(gs, seed=0)
    t0 = time.perf_counter()
    lr = solver.solve(
        "implicit-kmeans-isdf-lobpcg",
        n_excitations=min(10, solver.n_pairs), tda=False, tol=1e-9,
    )
    t_lr = time.perf_counter() - t0
    dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
    strengths = oscillator_strengths(lr.energies, lr.wavefunctions, dip)
    bright = lr.energies[np.argmax(strengths)]
    print(f"{'E (eV)':>8s} {'f':>8s}")
    for e, f in zip(lr.energies, strengths):
        marker = "  <- brightest" if e == bright else ""
        print(f"{e * HARTREE_TO_EV:8.3f} {f:8.4f}{marker}")
    print(f"LR solve: {t_lr:.2f} s")

    print("\n=== Route 2: RT-TDDFT (delta kick + Krylov propagation) ===")
    rt = RealTimeTDDFT(gs, self_consistent=True)
    rt.kick(1e-3, direction=(0, 0, 1))
    t0 = time.perf_counter()
    n_steps, dt = 2000, 0.1
    res = rt.propagate(dt=dt, n_steps=n_steps, krylov_dim=8, etrs=True)
    t_rt = time.perf_counter() - t0
    print(f"propagated T = {n_steps * dt:.0f} a.u. in {n_steps} steps, "
          f"{t_rt:.1f} s; norm drift {abs(res.norms[-1] - res.norms[0]):.1e}")

    omega, spectrum = dipole_spectrum(
        res.times, res.dipole_along_kick(), res.kick_strength,
        omega_max=1.0, damping=0.01,
    )
    peaks = find_peaks(omega, spectrum, threshold=0.25)
    print("RT spectrum peaks (eV):",
          ", ".join(f"{p * HARTREE_TO_EV:.2f}" for p in peaks))

    print("\n=== Cross-check ===")
    print(f"brightest LR excitation: {bright * HARTREE_TO_EV:.2f} eV "
          f"(z-polarized, f = {strengths.max():.3f})")
    if len(peaks):
        nearest = peaks[np.argmin(np.abs(peaks - bright))]
        print(f"nearest RT peak:         {nearest * HARTREE_TO_EV:.2f} eV "
              f"(difference {(nearest - bright) * HARTREE_TO_EV:+.2f} eV)")
    print(f"\ncost: RT {t_rt:.1f} s for one broadened spectrum vs "
          f"LR {t_lr:.2f} s for exact discrete energies "
          f"({t_rt / max(t_lr, 1e-9):.0f}x)")


if __name__ == "__main__":
    main()
