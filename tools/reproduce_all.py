#!/usr/bin/env python
"""One-shot reproduction driver.

Runs the full test-suite, then the complete benchmark harness (every paper
table/figure), and assembles the rendered comparison tables into a single
``benchmarks/results/SUMMARY.md`` next to the raw pytest outputs.

    python tools/reproduce_all.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

#: Order in which the result tables appear in the summary (paper order).
TABLE_ORDER = (
    "table1_survey",
    "table2_table4_complexity",
    "table3_interpolation",
    "table5_h2o",
    "table5_si",
    "table6_measured",
    "table6_modeled",
    "fig2_points",
    "fig7_strong_scaling",
    "fig7_real_spmd",
    "fig8_breakdown",
    "weak_scaling",
    "fig9a_dos",
    "fig9b_excitation_dos",
    "memory_model",
    "memory_measured",
    "rt_vs_lr",
    "phase_profile",
    "eigensolver_agreement",
    "ablation_prune",
    "ablation_rank",
    "ablation_preconditioner",
    "ablation_pipeline",
    "ablation_hybrid",
    "ablation_kmeans_init",
)


def run(cmd: list[str], log_name: str) -> int:
    print(f"\n$ {' '.join(cmd)}")
    t0 = time.perf_counter()
    result = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
    elapsed = time.perf_counter() - t0
    log_path = REPO / log_name
    log_path.write_text(result.stdout + result.stderr)
    tail = "\n".join(result.stdout.splitlines()[-3:])
    print(f"  -> exit {result.returncode} in {elapsed:.0f}s; log: {log_name}")
    print("  " + tail.replace("\n", "\n  "))
    return result.returncode


def assemble_summary() -> pathlib.Path:
    lines = [
        "# Reproduction summary",
        "",
        "Assembled by tools/reproduce_all.py from benchmarks/results/.",
        "See EXPERIMENTS.md for the paper-vs-reproduction discussion.",
    ]
    seen = set()
    for name in TABLE_ORDER:
        path = RESULTS / f"{name}.txt"
        if path.exists():
            seen.add(name)
            lines += ["", "---", "", "```", path.read_text().rstrip(), "```"]
    for path in sorted(RESULTS.glob("*.txt")):
        if path.stem not in seen:
            lines += ["", "---", "", "```", path.read_text().rstrip(), "```"]
    out = RESULTS / "SUMMARY.md"
    out.write_text("\n".join(lines) + "\n")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true")
    args = parser.parse_args()

    status = 0
    if not args.skip_tests:
        status |= run(
            [sys.executable, "-m", "pytest", "tests/"], "test_output.txt"
        )
    status |= run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only"],
        "bench_output.txt",
    )
    summary = assemble_summary()
    print(f"\nsummary written to {summary}")
    return status


if __name__ == "__main__":
    sys.exit(main())
