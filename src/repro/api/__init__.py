"""``repro.api`` — the stable, typed facade over the calculation pipeline.

Everything a downstream user needs lives here:

* config objects: :class:`SCFConfig`, :class:`TDDFTConfig`,
  :class:`BatchConfig`, :class:`ResilienceConfig` (frozen dataclasses with
  exact dict round-trip);
* entry points: :func:`run_scf`, :func:`solve_tddft`, :func:`run_batch`,
  :func:`run_rt`;
* result types: :class:`SCFResult` (= :class:`~repro.dft.GroundState`),
  :class:`LRTDDFTResult`, :class:`RTResult` — all with ``save``/``load`` —
  and the batch containers :class:`BatchResult` / :class:`FrameRecord`;
* :func:`load_result` — load any saved result by its embedded class tag.

The exported surface is snapshot-tested against
``tools/public_api_manifest.json`` (see ``tools/check_public_api.py``), so
accidental breaking changes fail CI instead of downstream users.
"""

from repro.api.config import BatchConfig, ResilienceConfig, SCFConfig, TDDFTConfig
from repro.api.facade import (
    SCFResult,
    install_fft_fallback,
    load_result,
    reset_deprecation_warnings,
    run_batch,
    run_rt,
    run_scf,
    solve_tddft,
)
from repro.batch.results import BatchResult, FrameRecord
from repro.core.driver import LRTDDFTResult
from repro.rt.tddft import RTResult

__all__ = [
    "BatchConfig",
    "BatchResult",
    "FrameRecord",
    "LRTDDFTResult",
    "ResilienceConfig",
    "RTResult",
    "SCFConfig",
    "SCFResult",
    "TDDFTConfig",
    "install_fft_fallback",
    "load_result",
    "reset_deprecation_warnings",
    "run_batch",
    "run_rt",
    "run_scf",
    "solve_tddft",
]
