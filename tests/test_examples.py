"""Smoke tests for the example scripts.

Every example must at least byte-compile; the quickstart (the one a new
user runs first) is executed end-to-end.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def test_examples_directory_has_at_least_three_scripts():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize(
    "script", sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "implicit-kmeans-isdf-lobpcg" in result.stdout
    assert "SCF converged: True" in result.stdout


def test_every_example_has_module_docstring():
    for script in EXAMPLES_DIR.glob("*.py"):
        first = script.read_text().lstrip()
        assert first.startswith(('"""', '#!')), script.name
