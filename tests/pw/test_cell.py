"""Tests for UnitCell geometry."""

import numpy as np
import pytest

from repro.pw import UnitCell
from repro.atoms import silicon_conventional_cell, silicon_primitive_cell


class TestConstruction:
    def test_cubic_volume(self):
        cell = UnitCell.cubic(3.0)
        assert cell.volume == pytest.approx(27.0)

    def test_species_position_count_mismatch(self):
        with pytest.raises(ValueError, match="species"):
            UnitCell(np.eye(3), ("Si",), np.zeros((2, 3)))

    def test_left_handed_lattice_rejected(self):
        lattice = np.eye(3)
        lattice[0, 0] = -1.0
        with pytest.raises(ValueError, match="right-handed"):
            UnitCell(lattice)

    def test_positions_wrapped_to_unit_interval(self):
        cell = UnitCell(np.eye(3), ("Si",), np.array([[1.25, -0.25, 0.5]]))
        np.testing.assert_allclose(cell.fractional_positions[0], [0.25, 0.75, 0.5])

    def test_bad_lattice_shape(self):
        with pytest.raises(ValueError, match="3x3"):
            UnitCell(np.eye(2))


class TestGeometry:
    def test_reciprocal_lattice_duality(self):
        cell = silicon_primitive_cell()
        product = cell.lattice @ cell.reciprocal_lattice.T
        np.testing.assert_allclose(product, 2 * np.pi * np.eye(3), atol=1e-12)

    def test_cartesian_positions(self):
        cell = UnitCell(2.0 * np.eye(3), ("Si",), np.array([[0.5, 0.5, 0.5]]))
        np.testing.assert_allclose(cell.cartesian_positions[0], [1.0, 1.0, 1.0])

    def test_lengths(self):
        cell = UnitCell.cubic(4.0)
        np.testing.assert_allclose(cell.lengths, [4.0, 4.0, 4.0])

    def test_primitive_volume_is_quarter_of_conventional(self):
        prim = silicon_primitive_cell()
        conv = silicon_conventional_cell()
        assert prim.volume == pytest.approx(conv.volume / 4.0)


class TestSupercell:
    def test_supercell_atom_count(self):
        cell = silicon_conventional_cell()
        sup = cell.supercell((2, 2, 2))
        assert sup.n_atoms == 64

    def test_supercell_volume(self):
        cell = silicon_conventional_cell()
        sup = cell.supercell((2, 1, 3))
        assert sup.volume == pytest.approx(6.0 * cell.volume)

    def test_supercell_preserves_density_of_atoms(self):
        cell = silicon_conventional_cell()
        sup = cell.supercell((2, 2, 2))
        assert sup.n_atoms / sup.volume == pytest.approx(cell.n_atoms / cell.volume)

    def test_invalid_reps_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            silicon_conventional_cell().supercell((0, 1, 1))

    def test_no_duplicate_positions(self):
        sup = silicon_conventional_cell().supercell((2, 2, 2))
        cart = sup.cartesian_positions
        dists = np.linalg.norm(cart[:, None, :] - cart[None, :, :], axis=2)
        dists[np.diag_indices_from(dists)] = np.inf
        assert dists.min() > 1.0  # Bohr


class TestFormula:
    def test_count_and_formula(self):
        cell = silicon_conventional_cell()
        assert cell.count("Si") == 8
        assert cell.formula() == "Si8"
