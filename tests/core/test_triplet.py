"""Triplet (spin-flip) LR-TDDFT tests."""

import numpy as np
import pytest

from repro.core import HxcKernel, LRTDDFTSolver
from repro.pw import PlaneWaveBasis, UnitCell
from repro.utils.rng import default_rng


class TestTripletKernelObject:
    def test_triplet_disables_hartree(self):
        basis = PlaneWaveBasis(UnitCell.cubic(8.0), ecut=5.0)
        rng = default_rng(0)
        density = rng.random(basis.n_r) + 0.1
        kernel = HxcKernel(basis, density, spin="triplet")
        assert not kernel.include_hartree
        assert kernel.fxc_diagonal is not None

    def test_triplet_apply_is_local(self):
        """Without Hartree the operator is diagonal in real space."""
        basis = PlaneWaveBasis(UnitCell.cubic(8.0), ecut=5.0)
        rng = default_rng(1)
        density = rng.random(basis.n_r) + 0.1
        kernel = HxcKernel(basis, density, spin="triplet")
        field = rng.standard_normal(basis.n_r)
        np.testing.assert_allclose(
            kernel.apply(field), kernel.fxc_diagonal * field
        )

    def test_invalid_spin_rejected(self):
        basis = PlaneWaveBasis(UnitCell.cubic(8.0), ecut=5.0)
        with pytest.raises(ValueError, match="spin"):
            HxcKernel(basis, np.ones(basis.n_r), spin="doublet")


class TestTripletExcitations:
    @pytest.fixture(scope="class")
    def solvers(self, water_ground_state):
        return (
            LRTDDFTSolver(water_ground_state, seed=1),
            LRTDDFTSolver(water_ground_state, spin="triplet", seed=1),
        )

    def test_triplets_below_singlets(self, solvers):
        """Hund-like ordering: every low triplet sits below its singlet."""
        singlet, triplet = solvers
        e_s = singlet.solve("naive", n_excitations=3).energies
        e_t = triplet.solve("naive", n_excitations=3).energies
        assert (e_t < e_s).all()

    def test_triplets_below_ks_transitions(self, solvers):
        """With an attractive-only kernel the excitations redshift from the
        bare KS transition energies."""
        _, triplet = solvers
        from repro.core.pair_products import pair_energies

        e_t = triplet.solve("naive", n_excitations=3).energies
        d = np.sort(pair_energies(triplet.eps_v, triplet.eps_c))
        assert (e_t <= d[:3] + 1e-10).all()

    def test_isdf_versions_work_for_triplet(self, solvers):
        _, triplet = solvers
        dense = triplet.solve("naive", n_excitations=3)
        implicit = triplet.solve(
            "implicit-kmeans-isdf-lobpcg", n_excitations=3, tol=1e-10
        )
        rel = np.abs((implicit.energies - dense.energies[:3]) / dense.energies[:3])
        assert rel.max() < 0.02

    def test_full_casida_triplet(self, solvers):
        _, triplet = solvers
        tda = triplet.solve("naive", n_excitations=3)
        full = triplet.solve("naive", n_excitations=3, tda=False)
        assert full.energies[0] <= tda.energies[0] + 1e-12
